#!/usr/bin/env python3
"""Precision-target mode: auto-calibrating the dispersion threshold.

§4.1: instead of hand-tuning the dispersion threshold, the user states
a minimum precision target.  The system samples live requests, re-runs
them unpruned while the device is idle to obtain ground truth, and
walks the threshold to the lowest (fastest) value that meets the
target.  This example runs the loop for several targets and shows the
resulting operating points.

Run:  python examples/threshold_autotune.py
"""

from repro import PrismConfig, get_model_config, get_profile
from repro.core.calibration import ThresholdCalibrator
from repro.data import get_dataset
from repro.data.workloads import build_batch
from repro.harness import run_system, shared_model, shared_tokenizer
from repro.harness.reporting import format_table, ms


def main() -> None:
    model_config = get_model_config("qwen3-reranker-0.6b")
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    queries = get_dataset("wikipedia").queries(4, num_candidates=20)
    sample_batches = [
        build_batch(q, tokenizer, model_config.max_seq_len) for q in queries
    ]

    rows = []
    for target in (0.80, 0.90, 0.99):
        calibrator = ThresholdCalibrator(
            model,
            get_profile("nvidia_5070"),
            precision_target=target,
            step=0.08,
        )
        result = calibrator.calibrate(
            sample_batches, k=10, base_config=PrismConfig(numerics=False)
        )
        stats = run_system(
            "prism",
            model_config,
            "nvidia_5070",
            queries,
            10,
            threshold=result.threshold,
        )
        rows.append(
            (
                f"{target:.2f}",
                f"{result.threshold:.2f}",
                result.rounds,
                ms(stats.mean_latency),
                f"{stats.mean_precision:.3f}",
            )
        )

    print(
        format_table(
            ("precision target", "tuned threshold", "rounds", "latency", "P@10"),
            rows,
            title="Threshold auto-calibration (paper §4.1, precision-target mode)",
        )
    )
    print(
        "\nLower targets license lower thresholds -> earlier pruning -> "
        "lower latency; the loop finds the fastest safe operating point."
    )


if __name__ == "__main__":
    main()
