#!/usr/bin/env python3
"""GUI-agent memory — the paper's second real-world scenario (§6.3).

A GUI agent caches successful action trajectories; before every action
it asks a reranker whether a cached flow matches the current task.  A
confident match replays the cached action and skips the remote VLM
call.  Because the accept decision thresholds the *score*, PRISM runs
in the exact-score mode of §7 (prune hopeless candidates only).

Run:  python examples/agent_memory_demo.py
"""

from repro import get_model_config
from repro.apps import AgentMemoryApp
from repro.harness.reporting import format_table, pct


def main() -> None:
    model = get_model_config("qwen3-reranker-0.6b")

    rows = []
    latencies = {}
    for workload in ("video", "community"):
        for system in ("disable", "hf", "prism"):
            app = AgentMemoryApp(model, "nvidia_5070", system=system)
            run = app.run_workload(workload)
            latencies[(workload, system)] = run
            stages = run.stage_means()
            rows.append(
                (
                    workload,
                    system,
                    f"{run.mean_latency:.1f}s",
                    f"{stages['env']:.1f}s",
                    f"{stages['inference']:.1f}s",
                    f"{stages['rerank']:.1f}s",
                    f"{run.success_rate:.3f}",
                    pct(run.hit_rate),
                    f"{run.peak_mib:.0f}",
                )
            )

    print(
        format_table(
            (
                "workload",
                "system",
                "task latency",
                "env",
                "VLM",
                "rerank",
                "success",
                "cache hits",
                "peak MiB",
            ),
            rows,
            title="Agent memory: task latency & footprint (paper Figures 12-13)",
        )
    )

    for workload in ("video", "community"):
        hf = latencies[(workload, "hf")]
        prism = latencies[(workload, "prism")]
        disable = latencies[(workload, "disable")]
        print(
            f"\n{workload}: PRISM cuts task latency "
            f"{pct(1 - prism.mean_latency / disable.mean_latency)} vs no-memory and "
            f"{pct(1 - prism.mean_latency / hf.mean_latency)} vs HF-based memory; "
            f"peak footprint {pct(1 - prism.peak_mib / hf.peak_mib)} below HF "
            f"(paper: 63.0%)."
        )


if __name__ == "__main__":
    main()
