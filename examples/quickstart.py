#!/usr/bin/env python3
"""Quickstart: rerank one candidate pool with PRISM vs the HF baseline.

Builds a Wikipedia-style reranking workload (top-10 of 20 candidates),
runs it through the vanilla HF engine and through PRISM on a simulated
Mac Mini M2, and prints the latency / memory / precision comparison —
a one-request version of the paper's headline result.

Run:  python examples/quickstart.py
"""

from repro import get_model_config
from repro.data import get_dataset
from repro.harness import run_system
from repro.harness.reporting import format_table, ms, pct


def main() -> None:
    model = get_model_config("qwen3-reranker-0.6b")
    queries = get_dataset("wikipedia").queries(4, num_candidates=20)

    print(f"Model     : {model.name} ({model.params_label}, {model.architecture}-only)")
    print(f"Workload  : {len(queries)} queries x 20 candidates, top-10, apple_m2\n")

    rows = []
    stats = {}
    for system in ("hf", "hf_offload", "hf_quant", "prism"):
        stats[system] = run_system(system, model, "apple_m2", queries, k=10)
        s = stats[system]
        rows.append(
            (
                system,
                ms(s.mean_latency),
                f"{s.peak_mib:.0f}",
                f"{s.avg_mib:.0f}",
                f"{s.mean_precision:.3f}",
                pct(s.pruned_fraction),
            )
        )
    print(
        format_table(
            ("system", "latency", "peak MiB", "avg MiB", "P@10", "work pruned"),
            rows,
        )
    )

    hf, prism = stats["hf"], stats["prism"]
    print(
        f"\nPRISM: {pct(1 - prism.mean_latency / hf.mean_latency)} lower latency, "
        f"{pct(1 - prism.peak_mib / hf.peak_mib)} lower peak memory, "
        f"precision delta {prism.mean_precision - hf.mean_precision:+.3f}."
    )


if __name__ == "__main__":
    main()
