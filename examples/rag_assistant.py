#!/usr/bin/env python3
"""RAG personal assistant — the paper's first real-world scenario (§6.3).

Personal data is indexed offline; each query runs hybrid search, the
reranker consolidates twenty candidates into the ten the Qwen3-32B
server sees, and the latency metric is time-to-first-token.  The
example compares HF and PRISM on both evaluation platforms, matching
Figure 11's model/platform pairing.

Run:  python examples/rag_assistant.py
"""

from repro import get_model_config
from repro.apps import RagPipeline
from repro.harness.reporting import format_table, ms, pct
from repro.retrieval import SyntheticCorpus

#: The paper pairs each platform with a different reranker (§6.3).
PLATFORM_MODELS = {
    "apple_m2": "qwen3-reranker-0.6b",
    "nvidia_5070": "bge-reranker-v2-minicpm",
}


def main() -> None:
    corpus = SyntheticCorpus(num_docs=250, num_topics=25)
    queries = corpus.make_queries(8)

    rows = []
    summary = {}
    for platform, model_name in PLATFORM_MODELS.items():
        for system in ("hf", "prism"):
            pipeline = RagPipeline(
                corpus, get_model_config(model_name), platform, system=system
            )
            run = pipeline.run(queries)
            summary[(platform, system)] = run
            stages = run.stage_means()
            rows.append(
                (
                    platform,
                    system,
                    ms(run.mean_latency),
                    ms(stages["rerank"]),
                    ms(stages["first_token"]),
                    f"{run.accuracy:.3f}",
                    f"{run.peak_mib:.0f}",
                    f"{run.avg_mib:.0f}",
                )
            )

    print(
        format_table(
            (
                "platform",
                "system",
                "total",
                "rerank",
                "first token",
                "accuracy",
                "peak MiB",
                "avg MiB",
            ),
            rows,
            title="RAG assistant: HF vs PRISM (paper Figure 11)",
        )
    )

    for platform in PLATFORM_MODELS:
        hf = summary[(platform, "hf")]
        prism = summary[(platform, "prism")]
        print(
            f"\n{platform}: latency {pct(1 - prism.mean_latency / hf.mean_latency)} lower, "
            f"peak memory {pct(1 - prism.peak_mib / hf.peak_mib)} lower, "
            f"avg memory {pct(1 - prism.avg_mib / hf.avg_mib)} lower "
            f"(paper: 31-51% latency, up to 77.8% peak, 92.3% avg)."
        )


if __name__ == "__main__":
    main()
