#!/usr/bin/env python3
"""Concurrent serving on one device: priority lanes vs FIFO.

DESIGN.md §6: every engine's ``rerank()`` is a drive-to-completion
loop over a resumable :class:`RerankTask`, and a
:class:`DeviceScheduler` time-multiplexes several in-flight tasks on
the device's single virtual clock, preempting at layer boundaries.
This example mixes a batch lane (heavy candidate pools, all due at
t=0) with an interactive lane (light requests trickling in) and shows
the scheduling policy moving tail latency while every selection stays
byte-identical.

Run:  python examples/concurrent_serving.py
"""

from repro.core.config import PrismConfig
from repro.core.scheduler import LANE_BATCH, LANE_INTERACTIVE
from repro.core.service import SemanticSelectionService
from repro.data import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness import shared_model, shared_tokenizer
from repro.harness.reporting import format_table, ms
from repro.model.zoo import QWEN3_0_6B

NUM_BATCH = 3  # heavy requests, 40 candidates each, due immediately
NUM_INTERACTIVE = 6  # light requests, 8 candidates, one every 300 ms


def main() -> None:
    model = shared_model(QWEN3_0_6B)
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    spec = get_dataset("wikipedia")
    heavy = [
        build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len)
        for q in spec.queries(NUM_BATCH, num_candidates=40)
    ]
    light = [
        build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len)
        for q in spec.queries(NUM_INTERACTIVE, num_candidates=8)
    ]

    requests = [(batch, 10) for batch in heavy] + [(batch, 3) for batch in light]
    arrivals = [0.0] * NUM_BATCH + [0.3 * i for i in range(NUM_INTERACTIVE)]
    priorities = [LANE_BATCH] * NUM_BATCH + [LANE_INTERACTIVE] * NUM_INTERACTIVE

    rows = []
    selections = {}
    for policy in ("fifo", "round_robin", "priority"):
        service = SemanticSelectionService(
            model,
            get_profile("nvidia_5070"),
            config=PrismConfig(numerics=False),
            max_concurrency=5,
        )
        outcomes = service.select_concurrent(
            requests, arrivals=arrivals, priorities=priorities, policy=policy
        )
        selections[policy] = [
            tuple(o.result.top_indices.tolist())
            for o in sorted(outcomes, key=lambda o: o.request_id)
        ]
        interactive = sorted(
            o.e2e_latency for o in outcomes if o.priority == LANE_INTERACTIVE
        )
        batch_lane = sorted(o.e2e_latency for o in outcomes if o.priority == LANE_BATCH)
        rows.append(
            (
                policy,
                ms(interactive[len(interactive) // 2]),
                ms(interactive[-1]),
                ms(batch_lane[-1]),
                sum(1 for o in outcomes if o.preempted),
            )
        )

    print(
        format_table(
            ("policy", "interactive p50", "interactive worst", "batch worst", "preempted"),
            rows,
            title="One device, mixed lanes: scheduling policy vs latency",
        )
    )
    identical = all(s == selections["fifo"] for s in selections.values())
    print(f"\nselections identical across policies: {'yes' if identical else 'NO'}")


if __name__ == "__main__":
    main()
