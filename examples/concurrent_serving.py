#!/usr/bin/env python3
"""Concurrent serving on one device: priority lanes vs FIFO.

DESIGN.md §6: every engine's ``rerank()`` is a drive-to-completion
loop over a resumable :class:`RerankTask`, and a
:class:`DeviceScheduler` time-multiplexes several in-flight tasks on
the device's single virtual clock, preempting at layer boundaries.
This example mixes a batch lane (heavy candidate pools, all due at
t=0) with an interactive lane (light requests trickling in) and shows
the scheduling policy moving tail latency while every selection stays
byte-identical.

Run:  python examples/concurrent_serving.py
"""

from repro.core.api import DeviceServer, SelectionRequest, serve_all
from repro.core.config import PrismConfig
from repro.core.scheduler import LANE_BATCH, LANE_INTERACTIVE
from repro.core.service import SemanticSelectionService
from repro.data import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness import shared_model, shared_tokenizer
from repro.harness.reporting import format_table, ms
from repro.model.zoo import QWEN3_0_6B

NUM_BATCH = 3  # heavy requests, 40 candidates each, due immediately
NUM_INTERACTIVE = 6  # light requests, 8 candidates, one every 300 ms


def main() -> None:
    model = shared_model(QWEN3_0_6B)
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    spec = get_dataset("wikipedia")
    heavy = [
        build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len)
        for q in spec.queries(NUM_BATCH, num_candidates=40)
    ]
    light = [
        build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len)
        for q in spec.queries(NUM_INTERACTIVE, num_candidates=8)
    ]

    requests = [
        SelectionRequest(
            batch=batch, k=10, request_id=i, priority=LANE_BATCH, arrival=0.0
        )
        for i, batch in enumerate(heavy)
    ] + [
        SelectionRequest(
            batch=batch,
            k=3,
            request_id=NUM_BATCH + i,
            priority=LANE_INTERACTIVE,
            arrival=0.3 * i,
        )
        for i, batch in enumerate(light)
    ]

    rows = []
    selections = {}
    for policy in ("fifo", "round_robin", "priority"):
        service = SemanticSelectionService(
            model,
            get_profile("nvidia_5070"),
            config=PrismConfig(numerics=False),
            max_concurrency=5,
        )
        responses = serve_all(DeviceServer(service, policy=policy), requests)
        selections[policy] = [
            tuple(r.result.top_indices.tolist())
            for r in sorted(responses, key=lambda r: r.request_id)
        ]
        interactive = sorted(
            r.e2e_seconds for r in responses if r.lane == LANE_INTERACTIVE
        )
        batch_lane = sorted(r.e2e_seconds for r in responses if r.lane == LANE_BATCH)
        preempted = sum(
            1 for o in service.last_scheduler.stats().outcomes if o.preempted
        )
        rows.append(
            (
                policy,
                ms(interactive[len(interactive) // 2]),
                ms(interactive[-1]),
                ms(batch_lane[-1]),
                preempted,
            )
        )

    print(
        format_table(
            ("policy", "interactive p50", "interactive worst", "batch worst", "preempted"),
            rows,
            title="One device, mixed lanes: scheduling policy vs latency",
        )
    )
    identical = all(s == selections["fifo"] for s in selections.values())
    print(f"\nselections identical across policies: {'yes' if identical else 'NO'}")


if __name__ == "__main__":
    main()
