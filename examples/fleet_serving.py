#!/usr/bin/env python3
"""Fleet serving: batched, sharded selection across device replicas.

DESIGN.md §5: a single :class:`SemanticSelectionService` serves one
request at a time on one device.  This example stands up a
heterogeneous 4-replica fleet (two RTX 5070s, two M2 Mac Minis) behind
a batched admission queue, replays an open-loop traffic wave under
each routing policy, then runs the coordinated idle-maintenance pass
that propagates the median self-calibrated threshold fleet-wide.

Run:  python examples/fleet_serving.py
"""

from repro.core.api import FleetServer, SelectionRequest, serve_all
from repro.core.config import PrismConfig
from repro.core.fleet import ROUTING_POLICIES, FleetConfig, FleetService
from repro.data import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness import shared_model, shared_tokenizer
from repro.harness.reporting import format_table, ms
from repro.model.zoo import QWEN3_0_6B

NUM_REQUESTS = 16
ARRIVAL_INTERVAL_S = 0.25  # open-loop: one request every 250 ms


def main() -> None:
    model = shared_model(QWEN3_0_6B)
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(NUM_REQUESTS, num_candidates=20)
    batches = [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]
    profiles = [
        get_profile("nvidia_5070"),
        get_profile("nvidia_5070"),
        get_profile("apple_m2"),
        get_profile("apple_m2"),
    ]

    rows = []
    for routing in sorted(ROUTING_POLICIES):
        fleet = FleetService(
            model,
            profiles,
            fleet_config=FleetConfig(max_batch=4, max_wait_ms=100.0, routing=routing),
            config=PrismConfig(numerics=False),
            sample_rate=0.5,
        )
        serve_all(
            FleetServer(fleet),
            [
                SelectionRequest(
                    batch=batch, k=10, request_id=index, arrival=index * ARRIVAL_INTERVAL_S
                )
                for index, batch in enumerate(batches)
            ],
        )
        stats = fleet.stats()
        per_replica = "/".join(
            str(replica.requests_served) for replica in fleet.replicas
        )
        rows.append(
            (
                routing,
                f"{stats.throughput_rps:.2f}/s",
                ms(stats.p50_latency),
                ms(stats.p99_latency),
                per_replica,
            )
        )
        report = fleet.idle_maintenance()
        if routing == "ewma" and report is not None:
            consensus = report.consensus_threshold
            print(
                f"[{routing}] idle maintenance: {report.replicas_adjusted} replicas "
                f"stepped, consensus threshold -> {consensus:.3f} "
                f"(from {['%.3f' % t for t in report.pre_consensus_thresholds]})\n"
            )

    print(
        format_table(
            ("routing", "throughput", "p50", "p99", "requests/replica"),
            rows,
            title="Heterogeneous fleet (2x RTX 5070 + 2x M2), 16-request wave",
        )
    )
    print(
        "\nThe EWMA policy learns the M2 replicas are ~6x slower and "
        "shifts traffic to the 5070s; round-robin splits evenly and "
        "pays the tail for it."
    )


if __name__ == "__main__":
    main()
