#!/usr/bin/env python3
"""Live telemetry: watch a fleet run over HTTP while it executes.

DESIGN.md §14: the event log fans out into bounded subscriptions, a
collector folds the stream into a Prometheus-style metrics registry,
and a stdlib HTTP server publishes `/metrics`, an SSE `/events` feed
and `/healthz` — all without perturbing the run (a slow scraper drops
its own events, counted, instead of stalling the virtual clock).

This example serves one small multi-tenant burst with a `LiveServer`
attached, scrapes the endpoints over real HTTP the way a dashboard
would, and then proves the plane's defining contract: the registry
derived live from the stream equals the post-hoc `FleetStats` rollup
*exactly* — counts, shed reasons, and p50/p95/p99.

Run:  python examples/live_telemetry.py
"""

import json
import urllib.request

from repro.core.config import PrismConfig
from repro.core.events import EventLog
from repro.core.fleet import FleetConfig, FleetService
from repro.core.telemetry import fleet_equivalence_report
from repro.core.tenancy import TenancyConfig, TenantPolicy
from repro.data import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness import shared_model, shared_tokenizer
from repro.harness.live import LiveServer
from repro.model.zoo import QWEN3_0_6B

NUM_REQUESTS = 10


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode()


def main() -> None:
    model = shared_model(QWEN3_0_6B)
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(NUM_REQUESTS, num_candidates=8)
    batches = [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]

    # Two tenant classes: "greedy" has an empty token bucket (rate 0,
    # burst 2), so its traffic beyond two requests sheds `rate_limit`.
    tenancy = TenancyConfig(policies={"greedy": TenantPolicy(rate=0.0, burst=2.0)})
    log = EventLog()
    fleet = FleetService.homogeneous(
        model,
        get_profile("nvidia_5070"),
        2,
        fleet_config=FleetConfig(max_batch=4),
        config=PrismConfig(numerics=False),
        tenancy=tenancy,
        event_log=log,
    )

    live = LiveServer(log, tenancy=tenancy).start()
    print(f"live telemetry at {live.url}\n")

    for index, batch in enumerate(batches):
        tenant = "greedy" if index % 2 else f"t{index % 3}"
        fleet.submit_request(batch, 2, at=index * 0.002, tenant=tenant)
    fleet.drain()

    # --- what a dashboard sees, over real HTTP ---------------------
    health = json.loads(scrape(live.url + "/healthz"))
    print(f"/healthz: {health['events']} events folded, "
          f"{health['dropped']} dropped, {health['subscribers']} subscriber(s)")

    metrics = scrape(live.url + "/metrics")
    print("/metrics (request counters):")
    for line in metrics.splitlines():
        if line.startswith(("repro_requests_", "repro_tenant_shed_total")):
            print(f"  {line}")

    print("\n/events?replay=1 (first three shed frames):")
    frames = scrape(live.url + "/events?replay=1&kind=shed&max=3")
    for line in frames.splitlines():
        if line.startswith("data: "):
            event = json.loads(line[len("data: "):])
            print(f"  {event['tenant']}/{event['request']} shed: "
                  f"{event['data']['detail']}")

    # --- the §14 contract: live registry == post-hoc rollup --------
    live.telemetry.drain()
    report = fleet_equivalence_report(
        live.telemetry.collector, fleet.stats(), fleet.dropped_requests
    )
    live.close()
    if report:
        raise SystemExit("registry diverged from FleetStats:\n" + "\n".join(report))
    print("\nequivalence: live registry == FleetStats "
          "(counts, shed reasons, p50/p95/p99 — exactly)")


if __name__ == "__main__":
    main()
