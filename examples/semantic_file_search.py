#!/usr/bin/env python3
"""Semantic file search — the motivating pipeline of Figure 1.

A corpus of "files" is indexed for keyword (BM25) and embedding
search; a query retrieves ten candidates from each arm, and a
cross-encoder reranker selects the final top-5.  The example prints
the per-stage cost breakdown under the vanilla engine (reproducing
the paper's 96 %-of-latency observation), then swaps in PRISM.

Run:  python examples/semantic_file_search.py
"""

from repro import get_model_config
from repro.apps import RagPipeline
from repro.harness.reporting import format_table, ms, pct
from repro.retrieval import SyntheticCorpus


def run_pipeline(system: str, corpus: SyntheticCorpus, queries) -> dict:
    pipeline = RagPipeline(
        corpus,
        get_model_config("qwen3-reranker-0.6b"),
        "apple_m2",
        system=system,
        k=5,
        answer_tokens=0,  # file search returns documents, not text
    )
    run = pipeline.run(queries)
    stages = run.stage_means()
    return {
        "system": system,
        "retrieval": stages["sparse"] + stages["dense"],
        "rerank": stages["rerank"],
        "peak_mib": run.peak_mib,
        "precision": run.mean_precision,
    }


def main() -> None:
    corpus = SyntheticCorpus(num_docs=300, num_topics=30)
    queries = corpus.make_queries(5)
    print(f"Corpus: {len(corpus)} files, {corpus.num_topics} topics")
    print("Pipeline: BM25 top-10 + vector top-10 -> rerank top-5 (apple_m2)\n")

    results = [run_pipeline(system, corpus, queries) for system in ("hf", "prism")]
    print(
        format_table(
            ("system", "retrieval", "rerank", "peak MiB", "P@5"),
            [
                (
                    r["system"],
                    ms(r["retrieval"]),
                    ms(r["rerank"]),
                    f"{r['peak_mib']:.0f}",
                    f"{r['precision']:.3f}",
                )
                for r in results
            ],
        )
    )

    vanilla = results[0]
    share = vanilla["rerank"] / (vanilla["retrieval"] + vanilla["rerank"])
    print(
        f"\nUnder the vanilla engine the reranker is {pct(share)} of pipeline "
        f"latency (paper: 96.3%) — the bottleneck PRISM attacks."
    )


if __name__ == "__main__":
    main()
