#!/usr/bin/env python3
"""Resilient fleet serving: crash a replica mid-burst, keep every request.

DESIGN.md §9: faults are scheduled on the same virtual clock as the
work, so a replica crash is a deterministic, replayable event.  This
example replays one near-saturating burst three ways — fault-free,
crash with failover only, and crash with the queue-depth autoscaler —
and prints what the resilience plane recorded: failover attempts,
scaling events, and the throughput recovered by the replacement
replica.  No run loses a single request.

Run:  python examples/resilient_fleet.py
"""

from repro.core.api import FleetServer, SelectionRequest, serve_all
from repro.core.config import PrismConfig
from repro.core.fleet import FleetConfig, FleetService
from repro.core.resilience import (
    FAULT_REPLICA_CRASH,
    AutoscalerConfig,
    FaultEvent,
    FaultPlan,
    ResilienceConfig,
)
from repro.data import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness import shared_model, shared_tokenizer
from repro.harness.reporting import format_table, ms, pct
from repro.model.zoo import QWEN3_0_6B

NUM_REQUESTS = 16
CRASH_AT_S = 0.5  # replica 0 dies half a second into the burst


def main() -> None:
    model = shared_model(QWEN3_0_6B)
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    queries = get_dataset("wikipedia").queries(NUM_REQUESTS, num_candidates=12)
    batches = [build_batch(q, tokenizer, QWEN3_0_6B.max_seq_len) for q in queries]

    crash = FaultPlan([FaultEvent(FAULT_REPLICA_CRASH, at=CRASH_AT_S, replica=0)])
    modes = {
        "fault-free": dict(),
        "crash + failover": dict(
            fault_plan=crash,
            resilience=ResilienceConfig(max_retries=2, cooldown_s=1e6),
        ),
        "crash + autoscaler": dict(
            fault_plan=crash,
            resilience=ResilienceConfig(max_retries=2, cooldown_s=1e6),
            autoscaler=AutoscalerConfig(
                max_replicas=3, scale_up_queue_depth=2, warmup_s=0.05,
                action_cooldown_s=0.1,
            ),
        ),
    }

    rows = []
    reference_throughput = None
    for mode, kwargs in modes.items():
        fleet = FleetService.homogeneous(
            model,
            get_profile("nvidia_5070"),
            2,
            fleet_config=FleetConfig(max_batch=2, max_wait_ms=0.0),
            config=PrismConfig(numerics=False),
            **kwargs,
        )
        responses = serve_all(
            FleetServer(fleet),
            [
                SelectionRequest(batch=batch, k=5, request_id=index)
                for index, batch in enumerate(batches)
            ],
        )
        stats = fleet.stats()
        completed = [r for r in responses if r.ok]
        if reference_throughput is None:
            reference_throughput = stats.throughput_rps
        rows.append(
            (
                mode,
                f"{len(completed)}/{NUM_REQUESTS}",
                stats.failed_over_requests,
                "/".join(
                    f"{e.action}@{ms(e.at)}" for e in stats.scaling_events
                ) or "-",
                f"{stats.throughput_rps:.2f}/s",
                pct(stats.throughput_rps / reference_throughput),
                ms(stats.p99_latency),
            )
        )
        for response in completed:
            if response.attempts > 1:
                print(
                    f"[{mode}] request {response.request_id}: replica "
                    f"{response.failed_over_from} failed it, attempt "
                    f"{response.attempts} completed on replica {response.replica}"
                )
    print()
    print(
        format_table(
            ("mode", "done", "failed over", "scaling", "throughput", "vs ref", "p99"),
            rows,
            title=f"Replica crash at {ms(CRASH_AT_S)}, {NUM_REQUESTS}-request burst",
        )
    )
    print(
        "\nFailover alone completes everything on the surviving replica "
        "at reduced throughput; the autoscaler spawns a replacement once "
        "the queue backs up and recovers most of the loss."
    )


if __name__ == "__main__":
    main()
