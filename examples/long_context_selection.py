#!/usr/bin/env python3
"""LLM long-context selection — the paper's third scenario (§6.3).

A question arrives with a 20k-token context of 40 segments, of which
only 2–4 matter.  Feeding everything to the on-device quantized
Qwen3-4B is slow and distracting; a reranker selects the top segments
first.  The example compares no-reranker / HF / PRISM, reproducing the
orderings of Figures 14 and 15.

Run:  python examples/long_context_selection.py
"""

from repro import get_model_config
from repro.apps import LongContextApp, generate_lcs_tasks
from repro.harness.reporting import format_table, pct


def main() -> None:
    model = get_model_config("qwen3-reranker-0.6b")
    tasks = generate_lcs_tasks(16)
    total_context = tasks[0].total_context_tokens
    print(
        f"Workload: {len(tasks)} LongBench-style tasks, "
        f"{tasks[0].num_segments} segments x {tasks[0].segment_tokens} tokens "
        f"(~{total_context // 1000}k-token contexts)\n"
    )

    rows = []
    runs = {}
    for system in ("baseline", "hf", "prism"):
        app = LongContextApp(model, "nvidia_5070", system=system)
        run = app.run(tasks)
        runs[system] = run
        rows.append(
            (
                {"baseline": "no reranker", "hf": "HF reranker", "prism": "PRISM"}[system],
                f"{run.mean_latency:.1f}s",
                f"{run.mean_rerank_seconds:.1f}s",
                f"{run.mean_inference_seconds:.1f}s",
                f"{run.accuracy:.3f}",
                f"{run.mean_coverage:.2f}",
                f"{run.peak_mib:.0f}",
            )
        )

    print(
        format_table(
            ("system", "total", "rerank", "inference", "accuracy", "coverage", "peak MiB"),
            rows,
            title="Long-context selection (paper Figures 14-15)",
        )
    )

    baseline, hf, prism = runs["baseline"], runs["hf"], runs["prism"]
    print(
        f"\nPRISM: {pct(1 - prism.mean_latency / hf.mean_latency)} lower latency than the "
        f"HF reranker and {pct(1 - prism.mean_latency / baseline.mean_latency)} lower than "
        f"no reranker (paper: 11.6% and 57.3%); peak memory "
        f"{hf.peak_mib - prism.peak_mib:.0f} MiB below HF (paper: ~1 GiB)."
    )


if __name__ == "__main__":
    main()
