"""Deterministic fault injection on the simulated device (DESIGN.md §9).

Every tier of the serving stack shares one discrete-event virtual
clock, so hardware faults can be *scheduled* the same way work is: a
:class:`FaultPlan` is a list of clock-stamped :class:`FaultEvent`\\ s,
and a :class:`FaultInjector` installed on a device fires each event
exactly once, at a deterministic instant, every replay.  Four fault
kinds model the failure modes the resilience plane must survive:

* ``ssd_read_error`` — the next SSD read completing at or after the
  event instant fails; the waiting caller sees a typed
  :class:`DeviceFault` instead of data.
* ``bandwidth_degradation`` — SSD transfer bandwidth drops to
  ``fraction`` of nominal for a ``duration`` window (thermal
  throttling, a competing tenant saturating the link).
* ``replica_stall`` — the device freezes for ``duration`` seconds at
  the next task step boundary (GC pause, power-state transition).
* ``replica_crash`` — the device dies at the next step boundary:
  every in-flight task on it fails with a :class:`DeviceFault`.

Faults surface only at layer boundaries — the same preemption points
the scheduler uses — so a failing pass releases its shared
weight-plane refcounts exactly like a cancelled one (DESIGN.md §8),
and the survivors keep serving.  An empty plan injects nothing and
changes *nothing*: execution under ``FaultPlan()`` is byte-identical
to execution without one (asserted in ``tests/test_resilience_plane.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: SSD read completes with an uncorrectable error.
FAULT_SSD_READ_ERROR = "ssd_read_error"
#: SSD bandwidth degraded to a fraction of nominal for a window.
FAULT_BANDWIDTH_DEGRADATION = "bandwidth_degradation"
#: Device freezes for a window at its next step boundary.
FAULT_REPLICA_STALL = "replica_stall"
#: Device dies at its next step boundary; in-flight work fails.
FAULT_REPLICA_CRASH = "replica_crash"

#: Every fault kind a :class:`FaultEvent` may carry.
FAULT_KINDS = (
    FAULT_SSD_READ_ERROR,
    FAULT_BANDWIDTH_DEGRADATION,
    FAULT_REPLICA_STALL,
    FAULT_REPLICA_CRASH,
)


class DeviceFault(RuntimeError):
    """A hardware fault surfaced to the execution layer.

    ``kind`` is one of :data:`FAULT_KINDS`, ``at`` the instant the
    fault surfaced on the raising device's clock, ``detail`` a
    human-readable hint (the failing transfer tag, the dying request).
    """

    def __init__(self, kind: str, at: float, detail: str = "") -> None:
        super().__init__(f"{kind} at t={at:.6f}" + (f" ({detail})" if detail else ""))
        self.kind = kind
        self.at = at
        self.detail = detail


@dataclass(frozen=True)
class FaultEvent:
    """One clock-scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Instant on the governing clock (the fleet clock when the event
        rides in a fleet-installed plan, the device clock when
        installed directly) at or after which the fault fires.
    replica:
        Fleet tier: index of the replica the event targets (``None``
        targets every replica).  Ignored on direct device installs.
    duration:
        Stall length / degradation-window length in seconds.
    fraction:
        ``bandwidth_degradation`` only: the degraded bandwidth as a
        fraction of nominal, in ``(0, 1)``.
    """

    kind: str
    at: float
    replica: int | None = None
    duration: float = 0.0
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {known}")
        if self.at < 0:
            raise ValueError("fault instants must be >= 0")
        if self.duration < 0:
            raise ValueError("fault duration must be >= 0")
        if self.kind in (FAULT_BANDWIDTH_DEGRADATION, FAULT_REPLICA_STALL):
            if self.duration <= 0:
                raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind == FAULT_BANDWIDTH_DEGRADATION and not 0 < self.fraction < 1:
            raise ValueError("degraded bandwidth fraction must lie in (0, 1)")


class FaultPlan:
    """A deterministic, replayable schedule of fault events.

    The plan is pure data — installing it on a device (or handing it
    to a :class:`~repro.core.fleet.FleetService`) compiles it into
    per-device :class:`FaultInjector`\\ s.  Replaying the same plan
    against the same workload reproduces the same failure history,
    byte for byte, which is what makes resilience behaviour testable.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(events)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.events)} events)"

    @property
    def empty(self) -> bool:
        return not self.events

    def for_replica(self, index: int) -> tuple[FaultEvent, ...]:
        """The events targeting replica ``index`` (or every replica)."""
        return tuple(
            event
            for event in self.events
            if event.replica is None or event.replica == index
        )


class FaultInjector:
    """Per-device runtime of a fault plan.

    Holds the device's share of the plan with every instant already
    rebased onto the device's own clock (``origin`` maps plan time to
    local time).  Point events (read error, stall, crash) fire once —
    the first consult at or after their instant consumes them — while
    degradation windows stay active for their whole duration.  Fired
    events are recorded in :attr:`fired` for observability.
    """

    def __init__(self, events: Sequence[FaultEvent], origin: float = 0.0) -> None:
        rebased = sorted(
            (
                FaultEvent(
                    kind=event.kind,
                    at=event.at + origin,
                    replica=event.replica,
                    duration=event.duration,
                    fraction=event.fraction,
                )
                for event in events
            ),
            key=lambda event: event.at,
        )
        self._point: dict[str, list[FaultEvent]] = {
            FAULT_SSD_READ_ERROR: [],
            FAULT_REPLICA_STALL: [],
            FAULT_REPLICA_CRASH: [],
        }
        self._windows: list[FaultEvent] = []
        for event in rebased:
            if event.kind == FAULT_BANDWIDTH_DEGRADATION:
                self._windows.append(event)
            else:
                self._point[event.kind].append(event)
        self.fired: list[FaultEvent] = []
        #: Observability sink (DESIGN.md §10); ``None`` observes nothing.
        self.events = None
        self.events_replica: int | None = None

    @property
    def pending_events(self) -> int:
        """Point events not yet fired (windows never count)."""
        return sum(len(queue) for queue in self._point.values())

    def bandwidth_fraction(self, at: float) -> float:
        """The SSD bandwidth multiplier in effect at instant ``at``.

        Overlapping windows compose multiplicatively — two tenants
        each halving the link leave a quarter.
        """
        fraction = 1.0
        for event in self._windows:
            if event.at <= at < event.at + event.duration:
                fraction *= event.fraction
        return fraction

    def _pop(self, kind: str, at: float) -> FaultEvent | None:
        queue = self._point[kind]
        if queue and queue[0].at <= at:
            event = queue.pop(0)
            self.fired.append(event)
            if self.events is not None:
                self.events.emit(
                    "fault",
                    at=at,
                    tier="device",
                    replica=self.events_replica,
                    fault=event.kind,
                    scheduled_at=event.at,
                    duration=event.duration,
                )
            return event
        return None

    def pop_read_error(self, at: float) -> FaultEvent | None:
        """Consume a due read-error event, if any (one-shot)."""
        return self._pop(FAULT_SSD_READ_ERROR, at)

    def pop_stall(self, at: float) -> FaultEvent | None:
        """Consume a due stall event, if any (one-shot)."""
        return self._pop(FAULT_REPLICA_STALL, at)

    def pop_crash(self, at: float) -> FaultEvent | None:
        """Consume a due crash event, if any (one-shot)."""
        return self._pop(FAULT_REPLICA_CRASH, at)
