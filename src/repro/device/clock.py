"""Virtual time for the device simulator.

All latency numbers in this reproduction come from a deterministic
resource model rather than wall-clock measurement.  ``VirtualClock`` is
the single source of simulated time: every component (compute stream,
I/O stream, memory tracker) reads and advances the same clock, so the
interleavings that matter for the paper — e.g. whether a layer's
compute window covers the next layer's weight load — are reproduced
exactly and reproducibly.

Time is kept in float seconds.  Sub-microsecond precision is more than
enough for the millisecond-scale effects the paper reports.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised on invalid clock manipulation (e.g. moving time backwards)."""


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    The clock supports two operations:

    * :meth:`advance` — move forward by a duration (used when the
      simulated device performs work on the critical path).
    * :meth:`advance_to` — move forward to an absolute time (used when
      the critical path must wait for an asynchronous event, such as a
      prefetch completing on the I/O stream).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, duration: float) -> float:
        """Advance the clock by ``duration`` seconds and return the new time."""
        if duration < 0:
            raise ClockError(f"cannot advance clock by negative duration {duration!r}")
        self._now += duration
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Advance the clock to ``deadline`` if it lies in the future.

        Advancing to a time that has already passed is a no-op; this is
        the natural semantics for "wait until event X has completed".
        """
        if deadline > self._now:
            self._now = deadline
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between independent experiment runs)."""
        if start < 0:
            raise ClockError(f"clock cannot reset to negative time {start!r}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f}s)"
