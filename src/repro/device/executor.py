"""Two-stream execution: compute/I-O overlap on the simulated device.

PRISM's implementation (§5) runs a computation process and an I/O
process that communicate over shared memory, so disk transfers proceed
while the GPU computes.  In the simulator this is a scheduling concern:
the compute stream is the critical path (the shared clock), while the
SSD owns its own stream (:class:`repro.device.ssd.SSDDevice`).

``DeviceExecutor`` adds the small amount of bookkeeping both PRISM and
the baselines need on top of the raw device:

* timed *spans* for per-stage latency breakdowns (Figures 11/12/14);
* a stall accounting channel, so experiments can report how much time
  the compute stream spent waiting on I/O (the 81 ms streaming overhead
  in Figure 16 is exactly this number).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .platforms import Device


@dataclass
class Span:
    """A named interval of simulated time."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class DeviceExecutor:
    """Thin orchestration layer over a :class:`Device`."""

    device: Device
    spans: list[Span] = field(default_factory=list)
    io_stall_seconds: float = 0.0

    @property
    def now(self) -> float:
        return self.device.clock.now

    # ------------------------------------------------------------------
    # compute stream
    # ------------------------------------------------------------------
    def compute(self, flops: float, bytes_moved: float = 0.0, quantized: bool = False) -> float:
        """Run one kernel on the compute stream; returns its duration."""
        return self.device.run_op(flops, bytes_moved, quantized=quantized)

    # ------------------------------------------------------------------
    # I/O stream
    # ------------------------------------------------------------------
    def prefetch(self, tag: str, nbytes: int) -> None:
        """Issue an asynchronous read (does not advance the clock)."""
        self.device.ssd.read_async(tag, nbytes)

    def offload_async(self, tag: str, nbytes: int) -> None:
        """Issue an asynchronous write (does not advance the clock)."""
        self.device.ssd.write_async(tag, nbytes)

    def wait_io(self, tag: str) -> float:
        """Wait for a pending transfer; the wait, if any, is a stall."""
        before = self.now
        end = self.device.ssd.wait(tag)
        self.io_stall_seconds += max(0.0, end - before)
        return end

    def wait_io_if_pending(self, tag: str) -> None:
        if self.device.ssd.is_pending(tag):
            self.wait_io(tag)

    def read_blocking(self, tag: str, nbytes: int) -> float:
        """Synchronous read; full duration counts as a stall."""
        before = self.now
        end = self.device.ssd.read_sync(tag, nbytes)
        self.io_stall_seconds += end - before
        return end

    def write_blocking(self, tag: str, nbytes: int) -> float:
        before = self.now
        end = self.device.ssd.write_sync(tag, nbytes)
        self.io_stall_seconds += end - before
        return end

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Record a named span of simulated time around a block."""
        start = self.now
        try:
            yield
        finally:
            self.spans.append(Span(name, start, self.now))

    def span_total(self, name: str) -> float:
        """Total simulated time spent in spans called ``name``."""
        return sum(span.duration for span in self.spans if span.name == name)
