"""Compute cost model: FLOPs and bytes → simulated seconds.

Cross-encoder reranking is a prefill-only workload (§2.3): latency is
dominated by dense matrix multiplies, so a roofline-style model — the
maximum of compute time and memory-traffic time — captures its
behaviour.  Each kernel invocation is described by its floating point
operations and the bytes it must move; the device profile supplies the
achievable throughput for each.

Quantized (W4A16) execution is modelled per the paper's observations
(§2.3 "Post-training Quantization", Figure 8): weights shrink 4×, which
helps loads and memory, but prefill is compute-bound and edge devices
lack fast INT4 matmul paths, so the quant engines carry a configurable
compute *overhead* factor (dequantization work), making HF-Quant
slightly slower than in-memory HF while using far less weight memory —
exactly the trade-off Figure 8/9 shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComputeModel:
    """Roofline cost model for one device.

    Parameters
    ----------
    flops_per_second:
        Achievable dense fp16 throughput (already derated from the
        marketing peak; the profiles in :mod:`repro.device.platforms`
        are calibrated against the paper's absolute latencies).
    mem_bandwidth:
        DRAM/VRAM bandwidth in bytes/second, used for the memory-bound
        side of the roofline.
    kernel_overhead:
        Fixed per-kernel launch overhead in seconds.
    quant_compute_overhead:
        Multiplier applied to compute time when executing W4A16
        kernels (dequantization cost on hardware without INT4 paths).
    """

    flops_per_second: float
    mem_bandwidth: float
    kernel_overhead: float = 5e-6
    quant_compute_overhead: float = 1.12

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")
        if self.kernel_overhead < 0:
            raise ValueError("kernel_overhead must be non-negative")
        if self.quant_compute_overhead < 1.0:
            raise ValueError("quant overhead models extra work; must be >= 1")

    def op_time(self, flops: float, bytes_moved: float = 0.0, quantized: bool = False) -> float:
        """Simulated seconds for one kernel.

        The kernel takes the max of its compute-limited and
        bandwidth-limited times plus a fixed launch overhead.
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        compute = flops / self.flops_per_second
        if quantized:
            compute *= self.quant_compute_overhead
        traffic = bytes_moved / self.mem_bandwidth
        return self.kernel_overhead + max(compute, traffic)
