"""Virtual device substrate: clock, memory, SSD, compute, platforms.

The paper's latency/memory claims require a native runtime and real
edge hardware; this package substitutes a deterministic resource
simulator (see DESIGN.md §1) that reproduces the resource arithmetic
those claims rest on: compute windows, I/O overlap, and byte-accurate
residency.
"""

from .clock import ClockError, VirtualClock
from .compute import ComputeModel
from .executor import DeviceExecutor, Span
from .faults import (
    FAULT_BANDWIDTH_DEGRADATION,
    FAULT_KINDS,
    FAULT_REPLICA_CRASH,
    FAULT_REPLICA_STALL,
    FAULT_SSD_READ_ERROR,
    DeviceFault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .memory import (
    CATEGORY_EMBEDDING,
    CATEGORY_HIDDEN,
    CATEGORY_INTERMEDIATE,
    CATEGORY_KV,
    CATEGORY_OTHER,
    CATEGORY_WEIGHTS,
    GiB,
    MemoryStats,
    MemoryTracker,
    MiB,
    OutOfMemoryError,
    TimelinePoint,
)
from .platforms import (
    APPLE_M2,
    EDGE_PLATFORMS,
    NVIDIA_5070,
    NVIDIA_A800,
    Device,
    DeviceProfile,
    get_profile,
    list_profiles,
    register_profile,
)
from .ssd import IORequest, SSDDevice, SSDModel

__all__ = [
    "APPLE_M2",
    "CATEGORY_EMBEDDING",
    "CATEGORY_HIDDEN",
    "CATEGORY_INTERMEDIATE",
    "CATEGORY_KV",
    "CATEGORY_OTHER",
    "CATEGORY_WEIGHTS",
    "ClockError",
    "ComputeModel",
    "Device",
    "DeviceExecutor",
    "DeviceFault",
    "DeviceProfile",
    "EDGE_PLATFORMS",
    "FAULT_BANDWIDTH_DEGRADATION",
    "FAULT_KINDS",
    "FAULT_REPLICA_CRASH",
    "FAULT_REPLICA_STALL",
    "FAULT_SSD_READ_ERROR",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GiB",
    "IORequest",
    "MemoryStats",
    "MemoryTracker",
    "MiB",
    "NVIDIA_5070",
    "NVIDIA_A800",
    "OutOfMemoryError",
    "SSDDevice",
    "SSDModel",
    "Span",
    "TimelinePoint",
    "VirtualClock",
    "get_profile",
    "list_profiles",
    "register_profile",
]
