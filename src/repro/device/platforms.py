"""Device profiles for the platforms evaluated in the paper.

The paper measures on three machines:

* **NVIDIA platform** — laptop, Intel Ultra9-275HX, RTX 5070 Laptop GPU
  (8 GiB VRAM), 1 TiB PCIe-4 SSD.
* **Apple platform** — Mac Mini, M2 SoC, 16 GiB unified memory,
  256 GiB PCIe-4 SSD.
* **NVIDIA A800** — a datacenter GPU used only to measure the memory
  footprint of configurations that OOM on the edge devices (Figure 9).

Profiles are calibrated so the *anchor* numbers from the paper come out
at the right scale: e.g. Qwen3-Reranker-0.6B scoring 20 candidates of
512 tokens costs ≈2·P·T ≈ 12.3 TFLOP, which the paper reports as
≈5.75 s on the M2 (Figure 1) — giving ≈2.1 TFLOPS achieved — and
≈1 s-scale on the RTX 5070 (Figure 8) — giving ≈12 TFLOPS achieved.
Everything else (offload penalties, overlap windows, OOM boundaries)
then *emerges* from the execution policies rather than being dialled in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Sequence

from .clock import VirtualClock
from .compute import ComputeModel
from .faults import FaultEvent, FaultInjector, FaultPlan
from .memory import GiB, MemoryTracker
from .ssd import SSDDevice, SSDModel


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one evaluation platform."""

    name: str
    compute: ComputeModel
    ssd: SSDModel
    memory_budget_bytes: int | None
    description: str = ""

    def create(self) -> "Device":
        """Instantiate a fresh simulated device (own clock/trackers).

        Each device keeps its own :class:`VirtualClock`; a coordinator
        running several devices in parallel (the fleet layer, DESIGN.md
        §5) aligns their timelines with ``advance_to`` synchronisation
        points rather than sharing a clock.
        """
        return Device(self)


@dataclass
class Device:
    """A live simulated device: clock + memory tracker + SSD instance."""

    profile: DeviceProfile
    clock: VirtualClock = field(init=False)
    memory: MemoryTracker = field(init=False)
    ssd: SSDDevice = field(init=False)

    def __post_init__(self) -> None:
        self.clock = VirtualClock()
        self.memory = MemoryTracker(self.clock, budget_bytes=self.profile.memory_budget_bytes)
        self.ssd = SSDDevice(self.clock, self.profile.ssd)
        #: Deterministic fault runtime (DESIGN.md §9), shared with the
        #: SSD stream; ``None`` until a plan is installed.
        self.faults: FaultInjector | None = None
        #: Observability sink (DESIGN.md §10); ``None`` observes nothing
        #: and leaves the hot path untouched.
        self.events = None
        self.events_replica: int | None = None

    def attach_event_log(self, log, replica: int | None = None) -> None:
        """Attach an :class:`~repro.core.events.EventLog` (DESIGN.md §10).

        Propagates the sink to the SSD stream and any already-installed
        fault injector; ``replica`` labels this device's time axis in
        the shared log.  Attaching is purely observational — no clock,
        tracker or queue is touched.
        """
        self.events = log
        self.events_replica = replica
        self.ssd.events = log
        self.ssd.events_replica = replica
        if self.faults is not None:
            self.faults.events = log
            self.faults.events_replica = replica

    def install_faults(
        self, plan: "FaultPlan | Sequence[FaultEvent]", origin: float = 0.0
    ) -> FaultInjector:
        """Compile a fault plan onto this device (DESIGN.md §9).

        ``origin`` rebases the plan's instants onto this device's
        clock — the fleet layer passes each replica's clock origin so
        one fleet-time plan lands coherently on every replica.  The
        injector is shared between the step-boundary hooks (stall,
        crash) and the SSD stream (read errors, degraded bandwidth).
        """
        events = plan.events if isinstance(plan, FaultPlan) else tuple(plan)
        injector = FaultInjector(events, origin=origin)
        injector.events = self.events
        injector.events_replica = self.events_replica
        self.faults = injector
        self.ssd.faults = injector
        return injector

    @property
    def compute(self) -> ComputeModel:
        return self.profile.compute

    def run_op(self, flops: float, bytes_moved: float = 0.0, quantized: bool = False) -> float:
        """Execute one kernel on the compute stream (advances the clock)."""
        duration = self.compute.op_time(flops, bytes_moved, quantized=quantized)
        self.clock.advance(duration)
        return duration


#: Usable fraction of the edge devices' nominal 8 GiB: the driver,
#: display pipeline and framework allocator pools reserve the rest.
#: This is what makes Qwen3-4B (7.5 GiB of fp16 weights) OOM under
#: vanilla HF on both edge platforms, as Table 3 / Figure 9 report.
EDGE_USABLE_BYTES = int(7.25 * GiB)

NVIDIA_5070 = DeviceProfile(
    name="nvidia_5070",
    compute=ComputeModel(flops_per_second=12.3e12, mem_bandwidth=384e9),
    ssd=SSDModel(read_bandwidth=3.5e9, write_bandwidth=2.8e9),
    memory_budget_bytes=EDGE_USABLE_BYTES,
    description="Laptop RTX 5070 (8 GiB VRAM, ~7.25 GiB usable), PCIe-4 SSD",
)

APPLE_M2 = DeviceProfile(
    name="apple_m2",
    compute=ComputeModel(flops_per_second=2.15e12, mem_bandwidth=100e9),
    ssd=SSDModel(read_bandwidth=3.0e9, write_bandwidth=2.4e9),
    # 16 GiB unified memory shared with the OS and co-resident apps;
    # the reranker process sees roughly the same usable budget as the
    # discrete-GPU platform.
    memory_budget_bytes=EDGE_USABLE_BYTES,
    description="Mac Mini M2 (16 GiB unified, ~7.25 GiB usable), PCIe-4 SSD",
)

NVIDIA_A800 = DeviceProfile(
    name="nvidia_a800",
    compute=ComputeModel(flops_per_second=150e12, mem_bandwidth=2000e9),
    ssd=SSDModel(read_bandwidth=6.0e9, write_bandwidth=5.0e9),
    memory_budget_bytes=80 * GiB,
    description="Datacenter A800 80 GiB (memory-measurement fallback)",
)

_PROFILES: dict[str, DeviceProfile] = {
    profile.name: profile for profile in (NVIDIA_5070, APPLE_M2, NVIDIA_A800)
}

#: The two edge platforms used throughout the evaluation.
EDGE_PLATFORMS = ("nvidia_5070", "apple_m2")


def get_profile(name: str) -> DeviceProfile:
    """Look up a registered device profile by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown device profile {name!r}; known: {known}") from None


def register_profile(profile: DeviceProfile) -> None:
    """Register a custom device profile (e.g. for what-if studies)."""
    _PROFILES[profile.name] = profile


def list_profiles() -> list[str]:
    return sorted(_PROFILES)
