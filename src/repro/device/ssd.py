"""SSD model: the storage side of the overlap window.

The paper's key memory insight (§3.2) is that a PCIe-4 SSD's sustained
read bandwidth is high enough that loading layer *i+1*'s weights can hide
entirely under layer *i*'s compute.  This module provides:

* :class:`SSDModel` — a bandwidth/latency cost model for reads.
* :class:`SSDDevice` — a simulated device that owns an I/O timeline and
  supports both synchronous reads (blocking the caller's clock, used by
  the HF-Offload baseline and embedding-cache misses) and asynchronous
  reads (scheduled on the I/O stream, used by overlapped layer
  streaming and hidden-state offloading).

The I/O stream is a single queue: requests are serviced in issue order,
each taking ``latency + nbytes / bandwidth`` of stream time.  This
captures the first-order behaviour of a request-queue SSD without
modelling channel-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import VirtualClock
from .faults import FAULT_SSD_READ_ERROR, DeviceFault, FaultInjector


@dataclass(frozen=True)
class SSDModel:
    """Cost model for a storage device.

    Parameters
    ----------
    read_bandwidth:
        Sustained sequential read bandwidth in bytes/second.
    write_bandwidth:
        Sustained write bandwidth in bytes/second.
    latency:
        Fixed per-request latency (seconds): queueing + command overhead.
    """

    read_bandwidth: float
    write_bandwidth: float
    latency: float = 50e-6

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("SSD bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("SSD latency must be non-negative")

    def read_time(self, nbytes: int) -> float:
        """Seconds of device time to service a read of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        return self.latency + nbytes / self.read_bandwidth

    def write_time(self, nbytes: int) -> float:
        """Seconds of device time to service a write of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        return self.latency + nbytes / self.write_bandwidth


@dataclass
class IORequest:
    """A scheduled transfer on the SSD's I/O stream."""

    tag: str
    nbytes: int
    issue_time: float
    start_time: float
    complete_time: float
    kind: str  # "read" or "write"


class SSDDevice:
    """A simulated SSD with a serialized I/O stream.

    Asynchronous requests do not advance the caller's clock; they
    reserve time on the SSD's own stream.  A caller that later *needs*
    the data waits via :meth:`wait`, which advances the shared clock to
    the request's completion time (if it has not already passed).
    """

    def __init__(self, clock: VirtualClock, model: SSDModel) -> None:
        self.clock = clock
        self.model = model
        self._stream_free = clock.now
        self._pending: dict[str, IORequest] = {}
        self.total_read_bytes = 0
        self.total_write_bytes = 0
        self.request_log: list[IORequest] = []
        #: Deterministic fault runtime (DESIGN.md §9); ``None`` injects
        #: nothing and leaves every timing byte-identical.
        self.faults: FaultInjector | None = None
        #: Observability sink (DESIGN.md §10); ``None`` observes nothing.
        self.events = None
        self.events_replica: int | None = None

    # ------------------------------------------------------------------
    # synchronous API
    # ------------------------------------------------------------------
    def read_sync(self, tag: str, nbytes: int) -> float:
        """Blocking read: advances the shared clock; returns completion time."""
        request = self._schedule(tag, nbytes, kind="read")
        return self._complete(request)

    def write_sync(self, tag: str, nbytes: int) -> float:
        """Blocking write: advances the shared clock; returns completion time."""
        request = self._schedule(tag, nbytes, kind="write")
        self.clock.advance_to(request.complete_time)
        return request.complete_time

    # ------------------------------------------------------------------
    # asynchronous API
    # ------------------------------------------------------------------
    def read_async(self, tag: str, nbytes: int) -> IORequest:
        """Issue a non-blocking read on the I/O stream."""
        request = self._schedule(tag, nbytes, kind="read")
        self._pending[tag] = request
        return request

    def write_async(self, tag: str, nbytes: int) -> IORequest:
        """Issue a non-blocking write on the I/O stream."""
        request = self._schedule(tag, nbytes, kind="write")
        self._pending[tag] = request
        return request

    def wait(self, tag: str) -> float:
        """Block the caller until the pending request ``tag`` completes.

        A read carrying an injected fault (DESIGN.md §9) raises a
        typed :class:`~repro.device.faults.DeviceFault` *after* the
        clock has advanced to the completion instant — the time was
        spent even though the data never arrived.
        """
        request = self._pending.pop(tag, None)
        if request is None:
            raise KeyError(f"no pending I/O request tagged {tag!r}")
        return self._complete(request)

    def is_pending(self, tag: str) -> bool:
        return tag in self._pending

    def drain(self, prefix: str | None = None) -> float:
        """Wait for outstanding requests; returns the final clock time.

        With ``prefix``, only requests whose tag starts with it are
        waited — how a finishing task joins its own write-backs without
        serialising behind a concurrent task's prefetches (DESIGN.md §6).
        """
        for tag in list(self._pending):
            if prefix is None or tag.startswith(prefix):
                self.wait(tag)
        return self.clock.now

    @property
    def stream_free_at(self) -> float:
        """Time at which the I/O stream next becomes idle."""
        return self._stream_free

    # ------------------------------------------------------------------
    def _complete(self, request: IORequest) -> float:
        """Advance the caller to a request's completion; surface faults."""
        self.clock.advance_to(request.complete_time)
        if request.kind == "read" and self.faults is not None:
            fault = self.faults.pop_read_error(request.complete_time)
            if fault is not None:
                raise DeviceFault(
                    FAULT_SSD_READ_ERROR, at=self.clock.now, detail=request.tag
                )
        return request.complete_time

    def _schedule(self, tag: str, nbytes: int, kind: str) -> IORequest:
        duration = (
            self.model.read_time(nbytes) if kind == "read" else self.model.write_time(nbytes)
        )
        start = max(self.clock.now, self._stream_free)
        if self.faults is not None:
            # Degraded-bandwidth windows (DESIGN.md §9) stretch the
            # transfer component; the fixed command latency stands.
            fraction = self.faults.bandwidth_fraction(start)
            if fraction < 1.0:
                duration = self.model.latency + (duration - self.model.latency) / fraction
        complete = start + duration
        self._stream_free = complete
        request = IORequest(
            tag=tag,
            nbytes=nbytes,
            issue_time=self.clock.now,
            start_time=start,
            complete_time=complete,
            kind=kind,
        )
        if kind == "read":
            self.total_read_bytes += nbytes
        else:
            self.total_write_bytes += nbytes
        self.request_log.append(request)
        if self.events is not None:
            self.events.emit(
                "fetch",
                at=request.issue_time,
                tier="ssd",
                replica=self.events_replica,
                tag=tag,
                io=kind,
                nbytes=nbytes,
                start=start,
                complete=complete,
            )
        return request
