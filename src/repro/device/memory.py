"""Byte-accurate memory accounting for the device simulator.

The paper's memory claims (Figures 9, 11b/c, 13, 15, 16) are statements
about *which buffers are resident when*: full weight sets vs. two
streamed layers, full embedding tables vs. an LRU slice, monolithic
intermediate tensors vs. one chunk's worth.  ``MemoryTracker`` records
named allocations and frees against the shared :class:`~repro.device.clock.VirtualClock`
and exposes exactly the statistics the paper plots — a usage timeline,
the peak, and the time-weighted average.

Categories let experiments break the footprint down the way Figure 16
does (weights / embedding / intermediate / hidden-state / other).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import VirtualClock

MiB = 1024 * 1024
GiB = 1024 * MiB

#: Canonical allocation categories used across the repo.
CATEGORY_WEIGHTS = "weights"
CATEGORY_EMBEDDING = "embedding"
CATEGORY_INTERMEDIATE = "intermediate"
CATEGORY_HIDDEN = "hidden"
CATEGORY_KV = "kv"
CATEGORY_OTHER = "other"


class MemoryError_(RuntimeError):
    """Raised on invalid allocation activity (double free, unknown name)."""


class OutOfMemoryError(MemoryError_):
    """Raised when an allocation would exceed the device's memory budget."""

    def __init__(self, requested: int, in_use: int, budget: int, name: str) -> None:
        self.requested = requested
        self.in_use = in_use
        self.budget = budget
        self.name = name
        super().__init__(
            f"OOM allocating {requested / MiB:.1f} MiB for {name!r}: "
            f"{in_use / MiB:.1f} MiB already in use of {budget / MiB:.1f} MiB budget"
        )


@dataclass
class Allocation:
    """A single live allocation."""

    name: str
    nbytes: int
    category: str
    alloc_time: float


@dataclass
class TimelinePoint:
    """One step of the memory-usage staircase."""

    time: float
    in_use: int


@dataclass
class MemoryStats:
    """Summary statistics over a tracked run."""

    peak_bytes: int
    avg_bytes: float
    final_bytes: int
    peak_by_category: dict[str, int] = field(default_factory=dict)

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / MiB

    @property
    def avg_mib(self) -> float:
        return self.avg_bytes / MiB


class MemoryTracker:
    """Tracks named allocations against a virtual clock.

    Parameters
    ----------
    clock:
        The shared simulation clock; allocation events are stamped with
        ``clock.now``.
    budget_bytes:
        Optional hard memory budget.  When set, an allocation pushing
        usage past the budget raises :class:`OutOfMemoryError` — this is
        how the reproduction recreates the paper's OOM entries for
        Qwen3-4B/8B under vanilla HF on 8 GiB devices.
    """

    def __init__(self, clock: VirtualClock, budget_bytes: int | None = None) -> None:
        self.clock = clock
        self.budget_bytes = budget_bytes
        self._live: dict[str, Allocation] = {}
        self._in_use = 0
        self._per_category: dict[str, int] = {}
        self._peak_by_category: dict[str, int] = {}
        self._timeline: list[TimelinePoint] = [TimelinePoint(clock.now, 0)]
        self._category_timelines: dict[str, list[TimelinePoint]] = {}
        self._peak = 0

    # ------------------------------------------------------------------
    # allocation API
    # ------------------------------------------------------------------
    def alloc(self, name: str, nbytes: int, category: str = CATEGORY_OTHER) -> None:
        """Record an allocation of ``nbytes`` under ``name``."""
        if nbytes < 0:
            raise MemoryError_(f"negative allocation size {nbytes} for {name!r}")
        if name in self._live:
            raise MemoryError_(f"allocation name {name!r} already live")
        if self.budget_bytes is not None and self._in_use + nbytes > self.budget_bytes:
            raise OutOfMemoryError(nbytes, self._in_use, self.budget_bytes, name)
        self._live[name] = Allocation(name, nbytes, category, self.clock.now)
        self._in_use += nbytes
        self._per_category[category] = self._per_category.get(category, 0) + nbytes
        self._peak_by_category[category] = max(
            self._peak_by_category.get(category, 0), self._per_category[category]
        )
        self._peak = max(self._peak, self._in_use)
        self._record()
        self._record_category(category)

    def free(self, name: str) -> None:
        """Release the allocation registered under ``name``."""
        alloc = self._live.pop(name, None)
        if alloc is None:
            raise MemoryError_(f"free of unknown allocation {name!r}")
        self._in_use -= alloc.nbytes
        self._per_category[alloc.category] -= alloc.nbytes
        self._record()
        self._record_category(alloc.category)

    def free_if_live(self, name: str) -> bool:
        """Free ``name`` if it is live; return whether anything was freed."""
        if name in self._live:
            self.free(name)
            return True
        return False

    def is_live(self, name: str) -> bool:
        return name in self._live

    def live_bytes(self, name: str) -> int:
        """Size of the live allocation ``name`` (0 when absent)."""
        alloc = self._live.get(name)
        return alloc.nbytes if alloc else 0

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def peak(self) -> int:
        return self._peak

    def in_use_by_category(self, category: str) -> int:
        return self._per_category.get(category, 0)

    def timeline(self) -> list[TimelinePoint]:
        """The memory staircase: (time, bytes-in-use) after each event."""
        return list(self._timeline)

    def category_timeline(self, category: str) -> list[TimelinePoint]:
        """Per-category staircase (the stacked curves of Figures 9/16).

        Returns an empty list for categories never allocated.
        """
        return list(self._category_timelines.get(category, ()))

    def stats(self) -> MemoryStats:
        """Peak / time-weighted average / final usage over the run."""
        return MemoryStats(
            peak_bytes=self._peak,
            avg_bytes=self._time_weighted_average(),
            final_bytes=self._in_use,
            peak_by_category=dict(self._peak_by_category),
        )

    def _time_weighted_average(self) -> float:
        points = self._timeline
        if len(points) < 2:
            return float(points[-1].in_use if points else 0)
        total = 0.0
        span = points[-1].time - points[0].time
        if span <= 0:
            return float(points[-1].in_use)
        for prev, nxt in zip(points, points[1:]):
            total += prev.in_use * (nxt.time - prev.time)
        return total / span

    def _record(self) -> None:
        point = TimelinePoint(self.clock.now, self._in_use)
        # Collapse events at identical timestamps into the final state so
        # the timeline stays a function of time.
        if self._timeline and self._timeline[-1].time == point.time:
            self._timeline[-1] = point
        else:
            self._timeline.append(point)

    def _record_category(self, category: str) -> None:
        series = self._category_timelines.setdefault(category, [])
        point = TimelinePoint(self.clock.now, self._per_category.get(category, 0))
        if series and series[-1].time == point.time:
            series[-1] = point
        else:
            series.append(point)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryTracker(in_use={self._in_use / MiB:.1f} MiB, "
            f"peak={self._peak / MiB:.1f} MiB, live={len(self._live)})"
        )
