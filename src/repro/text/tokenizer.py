"""Deterministic tokenizer over the Zipfian vocabulary.

The reproduction does not need linguistic tokenization — it needs
token-id sequences whose *statistics* (length, skew, query/document
structure) match what the cross-encoders see.  ``Tokenizer`` maps text
to ids two ways:

* real strings are hashed word-by-word onto vocabulary ranks, so the
  same word always produces the same id (important for the embedding
  cache: repeated words across candidates hit the cache);
* synthetic documents are drawn directly from the Zipf model via a
  seed, which is how the dataset generators mint corpora at scale
  without storing text.

The cross-encoder input convention follows the paper's models:
``[BOS] query [SEP] document [EOS]`` truncated/padded to ``max_len``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .vocab import Vocabulary


def _stable_hash(text: str) -> int:
    """A platform-stable 64-bit hash (Python's ``hash`` is salted)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


#: The fixed relevance-judgement instruction wrapped around every
#: query-document pair.  Qwen3-Reranker-style models are prompted with
#: a system instruction plus a yes/no judgement template; the ~80
#: boilerplate tokens it adds to every pair are part of the workload
#: (they lengthen the compute window of §3.2 and, being identical
#: across candidates, they are the embedding cache's hottest rows).
INSTRUCTION_TEMPLATE = (
    "judge whether the document meets the requirements of the query "
    "and answer only yes or no . you are a helpful relevance grader . "
    "given a web search query and a retrieved document , your task is "
    "to decide if the document contains the information the query asks "
    "for . consider partial matches , paraphrases and implied answers "
    "when grading . respond strictly with a single token . query and "
    "document follow after this instruction in that order . note that "
    "documents may be truncated and formatting may have been removed ."
)


class Tokenizer:
    """Maps text or synthetic seeds to token-id arrays."""

    def __init__(self, vocab: Vocabulary) -> None:
        self.vocab = vocab
        self._template_ids: np.ndarray | None = None

    def template_ids(self) -> np.ndarray:
        """Token ids of the fixed instruction template (cached)."""
        if self._template_ids is None:
            self._template_ids = self.encode_text(INSTRUCTION_TEMPLATE)
            self._template_ids.flags.writeable = False
        return self._template_ids

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode_text(self, text: str) -> np.ndarray:
        """Encode a real string; same word → same token id."""
        words = text.split()
        if not words:
            return np.empty(0, dtype=np.int64)
        ids = np.empty(len(words), dtype=np.int64)
        n = self.vocab.num_regular
        for i, word in enumerate(words):
            # Map the word hash onto a Zipf rank so that common words in
            # synthetic corpora overlap with hashed words statistically.
            ids[i] = self.vocab.num_special + (_stable_hash(word) % n)
        return ids

    def encode_synthetic(self, seed: int, length: int) -> np.ndarray:
        """Mint a deterministic synthetic token sequence from a seed."""
        rng = np.random.default_rng(seed)
        return self.vocab.sample(rng, length)

    # ------------------------------------------------------------------
    # cross-encoder packing
    # ------------------------------------------------------------------
    def build_pair(
        self,
        query_ids: np.ndarray,
        doc_ids: np.ndarray,
        max_len: int,
        with_template: bool = True,
    ) -> np.ndarray:
        """Pack ``[BOS] template query [SEP] doc [EOS]`` to ``max_len`` ids.

        The instruction template (see :data:`INSTRUCTION_TEMPLATE`)
        precedes the query, as in the Qwen3-Reranker prompt format.
        The document is truncated first (instructions and queries are
        short and fully informative); the sequence is padded with PAD
        at the tail, matching right-padding in HF reranker stacks.
        """
        if max_len < 4:
            raise ValueError("max_len must leave room for special tokens")
        template = self.template_ids() if with_template else np.empty(0, dtype=np.int64)
        budget = max_len - 3  # BOS, SEP, EOS
        head = np.concatenate([template, query_ids])[:budget]
        doc = doc_ids[: max(0, budget - len(head))]
        seq = np.concatenate(
            [
                [self.vocab.BOS],
                head,
                [self.vocab.SEP],
                doc,
                [self.vocab.EOS],
            ]
        ).astype(np.int64)
        if len(seq) < max_len:
            seq = np.concatenate([seq, np.full(max_len - len(seq), self.vocab.PAD, np.int64)])
        return seq

    def batch_pairs(
        self,
        query_ids: np.ndarray,
        docs: list[np.ndarray],
        max_len: int,
        with_template: bool = True,
    ) -> np.ndarray:
        """Pack one query against many documents → (N, max_len) int64."""
        return np.stack(
            [self.build_pair(query_ids, doc, max_len, with_template) for doc in docs]
        )

    def attention_lengths(self, batch: np.ndarray) -> np.ndarray:
        """Non-PAD length of every row in a packed batch."""
        return (batch != self.vocab.PAD).sum(axis=1).astype(np.int64)
