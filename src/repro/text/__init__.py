"""Tokenizer substrate: Zipfian vocabulary + deterministic tokenizer."""

from .tokenizer import Tokenizer
from .vocab import Vocabulary

__all__ = ["Tokenizer", "Vocabulary"]
