"""Zipfian vocabulary model.

Embedding table caching (§4.4) works because natural-language token
usage is highly skewed (the paper cites Zipf's law): a 20-document
reranking batch touches at most ~6.75 % of a 151 k vocabulary, and an
LRU cache sized at 10 % of the vocabulary sustains a high hit rate.

``Vocabulary`` provides a rank-frequency model over token ids:
token id *r* (0-based rank) has probability ∝ 1/(r+1)^s.  Sampling is
done via the inverse-CDF over the precomputed cumulative weights, which
keeps draws deterministic under a seeded generator.
"""

from __future__ import annotations

import numpy as np


class Vocabulary:
    """A vocabulary whose token frequencies follow a Zipf distribution.

    Parameters
    ----------
    size:
        Number of tokens in the vocabulary.
    zipf_s:
        Zipf exponent; ``1.0`` matches classic natural-language skew.
    num_special:
        Number of reserved special tokens at the front of the id space
        (pad/bos/eos/sep...); these are never produced by sampling.
    """

    PAD, BOS, EOS, SEP = 0, 1, 2, 3

    def __init__(self, size: int, zipf_s: float = 1.0, num_special: int = 4) -> None:
        if size <= num_special:
            raise ValueError(f"vocab size {size} must exceed num_special {num_special}")
        if zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        self.size = int(size)
        self.zipf_s = float(zipf_s)
        self.num_special = int(num_special)
        n_regular = self.size - self.num_special
        ranks = np.arange(1, n_regular + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    @property
    def num_regular(self) -> int:
        return self.size - self.num_special

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` token ids (int64) from the Zipf distribution."""
        if count < 0:
            raise ValueError("count must be non-negative")
        u = rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return (ranks + self.num_special).astype(np.int64)

    def token_probability(self, token_id: int) -> float:
        """Stationary probability of a regular token id (0 for specials)."""
        if token_id < self.num_special or token_id >= self.size:
            return 0.0
        rank = token_id - self.num_special
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)

    def expected_unique_fraction(self, num_draws: int) -> float:
        """Expected fraction of the vocabulary touched by ``num_draws`` draws.

        Used by tests to confirm the sparsity premise of §4.4: even tens
        of thousands of draws touch a small slice of a Zipfian vocab.
        """
        if num_draws < 0:
            raise ValueError("num_draws must be non-negative")
        probs = np.diff(self._cdf, prepend=0.0)
        touched = 1.0 - (1.0 - probs) ** num_draws
        return float(touched.sum() / self.size)
