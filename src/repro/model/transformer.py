"""CrossEncoderModel: the per-layer forward API engines drive.

The execution *policy* (what is batched, what is resident, what is
pruned) lives in the engines (``repro.core.engine`` and
``repro.baselines``); this class owns the model itself:

* packing token batches down to the reduced numerics dimensions;
* the embedding → layers → classifier numerics;
* the semantic channel: after every layer, the provisional score from
  :class:`~repro.model.semantics.ScoreDynamics` is written into channel
  0 of each candidate's readout token, which is exactly what the
  classifier head reads (see ``repro.model.classifier``).

Engines can run with ``numerics=False`` for large parameter sweeps; the
model then skips the numpy tensor work and serves scores directly from
the semantic process.  Both paths produce *identical scores* (asserted
in tests) and engines charge identical simulated costs either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .classifier import Classifier
from .layers import TransformerLayer
from .semantics import ScoreDynamics
from .weights import WeightStore
from .zoo import ModelConfig


@dataclass
class CandidateBatch:
    """A monolithic batch of query-candidate pairs ready to forward.

    ``tokens`` are paper-scale packed sequences (N, max_seq_len);
    ``relevance``/``uids`` drive the semantic score process and come
    from the workload's hidden ground truth — engines never read them
    directly, only through classifier scores.
    """

    tokens: np.ndarray
    lengths: np.ndarray
    relevance: np.ndarray
    uids: np.ndarray

    def __post_init__(self) -> None:
        n = self.tokens.shape[0]
        for name in ("lengths", "relevance", "uids"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(f"{name} length {arr.shape[0]} != batch size {n}")

    @property
    def size(self) -> int:
        return int(self.tokens.shape[0])

    def select(self, index: np.ndarray) -> "CandidateBatch":
        """Sub-batch view for chunking / pruning."""
        return CandidateBatch(
            tokens=self.tokens[index],
            lengths=self.lengths[index],
            relevance=self.relevance[index],
            uids=self.uids[index],
        )


@dataclass
class ForwardState:
    """Mutable per-candidate state while a batch advances through layers."""

    batch: CandidateBatch
    layer_done: int = -1  # index of the last executed layer (-1 = embedding only)
    hidden: np.ndarray | None = None  # (N, sim_seq, sim_hidden) when numerics on
    sim_lengths: np.ndarray | None = None
    scores: np.ndarray | None = None  # provisional scores at layer_done
    extra: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.batch.size


class CrossEncoderModel:
    """A reranker: embedding + L transformer layers + scoring head."""

    def __init__(self, config: ModelConfig, store: WeightStore | None = None) -> None:
        self.config = config
        self.store = store if store is not None else WeightStore(config)
        self.classifier = Classifier(config)
        self.dynamics = ScoreDynamics(config.semantics, config.num_layers, config.model_seed)

    # ------------------------------------------------------------------
    # numerics-dimension packing
    # ------------------------------------------------------------------
    def sim_tokens(self, batch: CandidateBatch) -> tuple[np.ndarray, np.ndarray]:
        """Stride paper-length token rows down to the numerics length."""
        cfg = self.config
        stride = max(1, cfg.max_seq_len // cfg.sim_seq_len)
        tokens = batch.tokens[:, ::stride][:, : cfg.sim_seq_len]
        if tokens.shape[1] < cfg.sim_seq_len:
            pad = np.zeros((tokens.shape[0], cfg.sim_seq_len - tokens.shape[1]), dtype=np.int64)
            tokens = np.concatenate([tokens, pad], axis=1)
        sim_lengths = np.clip(
            np.ceil(batch.lengths / stride).astype(np.int64), 1, cfg.sim_seq_len
        )
        return tokens, sim_lengths

    # ------------------------------------------------------------------
    # forward stages
    # ------------------------------------------------------------------
    def embed(self, batch: CandidateBatch, numerics: bool = True) -> ForwardState:
        """Embedding stage → a fresh :class:`ForwardState` (layer_done = -1)."""
        state = ForwardState(batch=batch)
        if numerics:
            tokens, sim_lengths = self.sim_tokens(batch)
            state.hidden = self.store.embedding_rows(tokens)
            state.sim_lengths = sim_lengths
            self._inject(state)
        return state

    def forward_layer(self, state: ForwardState, layer_idx: int) -> ForwardState:
        """Run one layer in place (numerics if the state carries hidden)."""
        expected = state.layer_done + 1
        if layer_idx != expected:
            raise ValueError(f"layer {layer_idx} out of order; expected {expected}")
        if state.hidden is not None:
            assert state.sim_lengths is not None
            layer = TransformerLayer(self.config, self.store.load_layer(layer_idx))
            state.hidden = layer.forward(state.hidden, state.sim_lengths)
        state.layer_done = layer_idx
        if state.hidden is not None:
            self._inject(state)
        state.scores = None  # invalidate: scores belong to a specific depth
        return state

    def score(self, state: ForwardState) -> np.ndarray:
        """Apply the classifier head at the state's current depth."""
        if state.layer_done < 0:
            raise ValueError("cannot score before any transformer layer has run")
        if state.hidden is not None:
            assert state.sim_lengths is not None
            scores = self.classifier.score(state.hidden, state.sim_lengths)
        else:
            scores = self.dynamics.scores_at(
                state.layer_done, state.batch.relevance, state.batch.uids
            )
        state.scores = scores
        return scores

    def full_forward(self, batch: CandidateBatch, numerics: bool = True) -> np.ndarray:
        """Reference unpruned forward pass → final scores."""
        state = self.embed(batch, numerics=numerics)
        for layer_idx in range(self.config.num_layers):
            self.forward_layer(state, layer_idx)
        return self.score(state)

    # ------------------------------------------------------------------
    def _inject(self, state: ForwardState) -> None:
        """Write the semantic channel into the readout token, channel 0."""
        assert state.hidden is not None and state.sim_lengths is not None
        if state.layer_done < 0:
            values = np.full(state.size, self.config.semantics.anchor)
        else:
            values = self.dynamics.scores_at(
                state.layer_done, state.batch.relevance, state.batch.uids
            )
        positions = self.classifier.readout_positions(state.sim_lengths)
        state.hidden[np.arange(state.size), positions, 0] = values
