"""CrossEncoderModel: the per-layer forward API engines drive.

The execution *policy* (what is batched, what is resident, what is
pruned) lives in the engines (``repro.core.engine`` and
``repro.baselines``); this class owns the model itself:

* packing token batches down to the reduced numerics dimensions;
* the embedding → layers → classifier numerics;
* the semantic channel: after every layer, the provisional score from
  :class:`~repro.model.semantics.ScoreDynamics` is written into channel
  0 of each candidate's readout token, which is exactly what the
  classifier head reads (see ``repro.model.classifier``).

Engines can run with ``numerics=False`` for large parameter sweeps; the
model then skips the numpy tensor work and serves scores directly from
the semantic process.  Both paths produce *identical scores* (asserted
in tests) and engines charge identical simulated costs either way.

Batched gang kernels (DESIGN.md §11): under group stepping a layer
crossing may be *deferred* — ``forward_layer(..., defer=True)`` records
the pending layer instead of running it, and the next read of any
deferred state's hidden batch (a score, a subset, the following layer)
flushes every deferred state in one stacked forward per layer
(:class:`GangBatch` + :meth:`CrossEncoderModel.forward_layer_batched`).
Per-candidate rows are independent in every layer op, so packing by
concatenation is exact; the fused kernel additionally computes in
reduced precision (:data:`GANG_KERNEL_DTYPE`), which leaves hidden
states equal to the sequential path only to float32 tolerance — but
*selections are byte-identical by construction*: every observable
(classifier score, pruning decision) reads the semantic channel, which
:meth:`CrossEncoderModel._inject` writes exactly, at full precision,
after every crossing on both paths (equivalence-tested per engine
family in ``tests/test_gang_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .classifier import Classifier
from .layers import TransformerLayer
from .semantics import ScoreDynamics
from .tensor_ops import pack_ragged, unpack_ragged
from .weights import WeightStore
from .zoo import ModelConfig

#: Precision of the fused gang kernel (DESIGN.md §11).  Reduced
#: precision halves the memory traffic of the packed score tensors;
#: selections are unaffected because observables ride the semantic
#: channel, which is injected exactly after every crossing.
GANG_KERNEL_DTYPE = np.float32


@dataclass
class CandidateBatch:
    """A monolithic batch of query-candidate pairs ready to forward.

    ``tokens`` are paper-scale packed sequences (N, max_seq_len);
    ``relevance``/``uids`` drive the semantic score process and come
    from the workload's hidden ground truth — engines never read them
    directly, only through classifier scores.
    """

    tokens: np.ndarray
    lengths: np.ndarray
    relevance: np.ndarray
    uids: np.ndarray

    def __post_init__(self) -> None:
        n = self.tokens.shape[0]
        for name in ("lengths", "relevance", "uids"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(f"{name} length {arr.shape[0]} != batch size {n}")

    @property
    def size(self) -> int:
        return int(self.tokens.shape[0])

    def select(self, index: np.ndarray) -> "CandidateBatch":
        """Sub-batch view for chunking / pruning."""
        return CandidateBatch(
            tokens=self.tokens[index],
            lengths=self.lengths[index],
            relevance=self.relevance[index],
            uids=self.uids[index],
        )


@dataclass
class ForwardState:
    """Mutable per-candidate state while a batch advances through layers."""

    batch: CandidateBatch
    layer_done: int = -1  # index of the last executed layer (-1 = embedding only)
    hidden: np.ndarray | None = None  # (N, sim_seq, sim_hidden) when numerics on
    sim_lengths: np.ndarray | None = None
    scores: np.ndarray | None = None  # provisional scores at layer_done
    #: Layer index whose numerics were deferred into the model's gang
    #: pool (DESIGN.md §11): ``layer_done`` already counts it, but
    #: ``hidden`` is stale until the pool flushes.  ``None`` = current.
    pending_layer: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.batch.size


@dataclass
class GangBatch:
    """Several members' hidden batches packed for one fused crossing.

    Heterogeneous candidate counts are handled by concatenation along
    the candidate axis (rows are independent in every layer op — see
    :func:`~repro.model.tensor_ops.pack_ragged`); ragged sequence
    lengths flow through the packed ``sim_lengths`` into the existing
    ``padding_mask``, exactly as they do member-by-member.
    """

    hidden: np.ndarray  # (ΣN_i, L, D)
    sim_lengths: np.ndarray  # (ΣN_i,)
    sizes: tuple[int, ...]  # per-member candidate counts, pack order

    @classmethod
    def pack(cls, states: list["ForwardState"], dtype=None) -> "GangBatch":
        """Stack the members' hidden batches, casting to ``dtype``.

        Zero-copy when solo and no cast is needed; the gang path packs
        straight into :data:`GANG_KERNEL_DTYPE` in one pass.
        """
        for state in states:
            if state.hidden is None or state.sim_lengths is None:
                raise ValueError("GangBatch.pack needs numerics-mode states")
        hidden, sizes = pack_ragged([state.hidden for state in states], dtype=dtype)
        lengths, _ = pack_ragged([state.sim_lengths for state in states])
        return cls(hidden=hidden, sim_lengths=lengths, sizes=sizes)

    def unpack_into(self, forwarded: np.ndarray, states: list["ForwardState"]) -> None:
        """Hand each member its slice of the forwarded tensor (views)."""
        for state, piece in zip(states, unpack_ragged(forwarded, self.sizes)):
            state.hidden = piece


class CrossEncoderModel:
    """A reranker: embedding + L transformer layers + scoring head."""

    def __init__(self, config: ModelConfig, store: WeightStore | None = None) -> None:
        self.config = config
        self.store = store if store is not None else WeightStore(config)
        self.classifier = Classifier(config)
        self.dynamics = ScoreDynamics(config.semantics, config.num_layers, config.model_seed)
        #: Gang pool (DESIGN.md §11): states whose last layer crossing
        #: was deferred; flushed in one batched kernel per layer.
        self._deferred: list[ForwardState] = []
        #: Per-layer :class:`TransformerLayer` over reduced-precision
        #: weights, with fused projections — the kernel the batched
        #: gang path runs.  Built lazily, one entry per layer.
        self._fused_layers: dict[int, TransformerLayer] = {}

    # ------------------------------------------------------------------
    # numerics-dimension packing
    # ------------------------------------------------------------------
    def sim_tokens(self, batch: CandidateBatch) -> tuple[np.ndarray, np.ndarray]:
        """Stride paper-length token rows down to the numerics length."""
        cfg = self.config
        stride = max(1, cfg.max_seq_len // cfg.sim_seq_len)
        tokens = batch.tokens[:, ::stride][:, : cfg.sim_seq_len]
        if tokens.shape[1] < cfg.sim_seq_len:
            pad = np.zeros((tokens.shape[0], cfg.sim_seq_len - tokens.shape[1]), dtype=np.int64)
            tokens = np.concatenate([tokens, pad], axis=1)
        sim_lengths = np.clip(
            np.ceil(batch.lengths / stride).astype(np.int64), 1, cfg.sim_seq_len
        )
        return tokens, sim_lengths

    # ------------------------------------------------------------------
    # forward stages
    # ------------------------------------------------------------------
    def embed(self, batch: CandidateBatch, numerics: bool = True) -> ForwardState:
        """Embedding stage → a fresh :class:`ForwardState` (layer_done = -1)."""
        state = ForwardState(batch=batch)
        if numerics:
            tokens, sim_lengths = self.sim_tokens(batch)
            state.hidden = self.store.embedding_rows(tokens)
            state.sim_lengths = sim_lengths
            self._inject(state)
        return state

    def forward_layer(
        self, state: ForwardState, layer_idx: int, *, defer: bool = False
    ) -> ForwardState:
        """Run one layer in place (numerics if the state carries hidden).

        With ``defer=True`` (group stepping, DESIGN.md §11) the layer's
        numerics are *recorded* instead of executed: the state joins
        the model's gang pool and the crossing runs — batched with
        every other pooled state at the same layer — when any pooled
        hidden batch is next read (:meth:`materialize`).  Simulated
        costs are unaffected either way; engines charge them
        separately.
        """
        self.materialize(state)  # a still-pending previous crossing
        expected = state.layer_done + 1
        if layer_idx != expected:
            raise ValueError(f"layer {layer_idx} out of order; expected {expected}")
        if state.hidden is not None:
            if defer:
                state.pending_layer = layer_idx
                self._deferred.append(state)
            else:
                assert state.sim_lengths is not None
                layer = TransformerLayer(self.config, self.store.load_layer(layer_idx))
                state.hidden = layer.forward(state.hidden, state.sim_lengths)
        state.layer_done = layer_idx
        if state.hidden is not None and state.pending_layer is None:
            self._inject(state)
        state.scores = None  # invalidate: scores belong to a specific depth
        return state

    def forward_layer_batched(self, states: list[ForwardState], layer_idx: int) -> None:
        """One stacked forward over several members crossing ``layer_idx``.

        The batched-gang kernel (DESIGN.md §11): pack the members'
        hidden batches along the candidate axis — casting to
        :data:`GANG_KERNEL_DTYPE` in the same pass — run the layer's
        fused matmul set once over the packed tensor, hand each member
        its slice and inject its semantic channel exactly.  Selections
        are byte-identical to forwarding each member alone; hidden
        states agree to reduced-precision tolerance (equivalence-tested
        per engine family in ``tests/test_gang_kernels.py``).
        """
        layer = self._fused_layers.get(layer_idx)
        if layer is None:
            layer = TransformerLayer(
                self.config, self.store.load_layer(layer_idx).cast(GANG_KERNEL_DTYPE)
            )
            self._fused_layers[layer_idx] = layer
        gang = GangBatch.pack(states, dtype=GANG_KERNEL_DTYPE)
        forwarded = layer.forward_fused(gang.hidden, gang.sim_lengths)
        packed = forwarded.astype(np.float64)
        # Inject the whole gang's semantic channel in one call: the score
        # process is element-wise in (relevance, uid), so the batched
        # values are bitwise those of per-member injection.
        if len(states) == 1:
            relevance, uids = states[0].batch.relevance, states[0].batch.uids
        else:
            relevance = np.concatenate([s.batch.relevance for s in states])
            uids = np.concatenate([s.batch.uids for s in states])
        values = self.dynamics.scores_at(layer_idx, relevance, uids)
        positions = self.classifier.readout_positions(gang.sim_lengths)
        packed[np.arange(packed.shape[0]), positions, 0] = values
        gang.unpack_into(packed, states)
        for state in states:
            state.pending_layer = None

    def materialize(self, state: ForwardState) -> None:
        """Ensure ``state.hidden`` reflects ``layer_done`` (flushes the pool)."""
        if state.pending_layer is not None:
            self.flush_deferred()

    def flush_deferred(self) -> None:
        """Run every deferred crossing — one batched kernel per layer.

        Pool order is defer order, so grouping is deterministic; a
        lockstep gang lands in a single group and pays one stacked
        forward where the sequential path paid N.
        """
        if not self._deferred:
            return
        pool, self._deferred = self._deferred, []
        groups: dict[int, list[ForwardState]] = {}
        for state in pool:
            if state.pending_layer is not None:  # discards leave stale entries
                groups.setdefault(state.pending_layer, []).append(state)
        for layer_idx, members in groups.items():
            self.forward_layer_batched(members, layer_idx)

    def discard_deferred(self, state: ForwardState) -> None:
        """Forget a deferred crossing whose hidden will never be read.

        For abandoned states only (a finished pass that scored before
        the last crossing flushed, a cancelled task): the state leaves
        the pool without paying for numerics nobody will observe.
        """
        if state.pending_layer is None:
            return
        state.pending_layer = None
        self._deferred = [s for s in self._deferred if s is not state]

    def score(self, state: ForwardState) -> np.ndarray:
        """Apply the classifier head at the state's current depth."""
        self.materialize(state)
        if state.layer_done < 0:
            raise ValueError("cannot score before any transformer layer has run")
        if state.hidden is not None:
            assert state.sim_lengths is not None
            scores = self.classifier.score(state.hidden, state.sim_lengths)
        else:
            scores = self.dynamics.scores_at(
                state.layer_done, state.batch.relevance, state.batch.uids
            )
        state.scores = scores
        return scores

    def full_forward(self, batch: CandidateBatch, numerics: bool = True) -> np.ndarray:
        """Reference unpruned forward pass → final scores."""
        state = self.embed(batch, numerics=numerics)
        for layer_idx in range(self.config.num_layers):
            self.forward_layer(state, layer_idx)
        return self.score(state)

    # ------------------------------------------------------------------
    def _inject(self, state: ForwardState) -> None:
        """Write the semantic channel into the readout token, channel 0."""
        assert state.hidden is not None and state.sim_lengths is not None
        if state.layer_done < 0:
            values = np.full(state.size, self.config.semantics.anchor)
        else:
            values = self.dynamics.scores_at(
                state.layer_done, state.batch.relevance, state.batch.uids
            )
        positions = self.classifier.readout_positions(state.sim_lengths)
        state.hidden[np.arange(state.size), positions, 0] = values
