"""The scoring head.

Cross-encoder rerankers finish with a lightweight classifier applied to
the final hidden states (§2.1).  PRISM re-uses the *same* head on
intermediate hidden states to obtain provisional scores (§4.1).

The head reads the model's relevance channel: after every layer the
semantic process (``repro.model.semantics``) writes the provisional
score into channel 0 of the readout token — the last non-pad position
for decoders (causal models accumulate sequence meaning at the end) or
the BOS/CLS position for encoders.  The classifier's weight vector is
the corresponding basis vector, so scoring is a genuine numpy dot
product whose result equals the semantic process's value.
"""

from __future__ import annotations

import numpy as np

from .zoo import ModelConfig


class Classifier:
    """Hidden-state → scalar relevance score head."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        weight = np.zeros(config.sim_hidden)
        weight[0] = 1.0
        self.weight = weight

    def readout_positions(self, lengths: np.ndarray) -> np.ndarray:
        """Index of the readout token for each sequence in a batch."""
        lengths = np.asarray(lengths)
        if self.config.is_decoder:
            return np.maximum(lengths - 1, 0)
        return np.zeros_like(lengths)

    def score(self, hidden: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Apply the head to a hidden batch (N, L, D_sim) → scores (N,)."""
        positions = self.readout_positions(lengths)
        readout = hidden[np.arange(hidden.shape[0]), positions]  # (N, D)
        return readout @ self.weight
