"""Cross-encoder transformer substrate (paper-scale accounting, reduced numerics)."""

from . import costs
from .classifier import Classifier
from .layers import TransformerLayer, TransformerLayerWeights, init_layer_weights
from .semantics import ScoreDynamics, SemanticsConfig
from .transformer import CandidateBatch, CrossEncoderModel, ForwardState
from .weights import WeightStore
from .zoo import (
    BGE_M3,
    BGE_MINICPM,
    PAPER_MODELS,
    QWEN3_0_6B,
    QWEN3_4B,
    QWEN3_8B,
    ModelConfig,
    get_model_config,
    list_models,
    register_model,
)

__all__ = [
    "BGE_M3",
    "BGE_MINICPM",
    "CandidateBatch",
    "Classifier",
    "CrossEncoderModel",
    "ForwardState",
    "ModelConfig",
    "PAPER_MODELS",
    "QWEN3_0_6B",
    "QWEN3_4B",
    "QWEN3_8B",
    "ScoreDynamics",
    "SemanticsConfig",
    "TransformerLayer",
    "TransformerLayerWeights",
    "WeightStore",
    "costs",
    "get_model_config",
    "init_layer_weights",
    "list_models",
    "register_model",
]
