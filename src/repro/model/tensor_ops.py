"""Numpy kernels used by the reduced-width transformer numerics.

These are straightforward, well-tested reference implementations: the
simulator charges *paper-scale* costs separately (``repro.model.costs``),
so these kernels only need to be correct — but they sit on the harness
hot path (every simulated layer crossing runs them), so the formulations
avoid temporary allocations and the attention masks are memoized by
shape (DESIGN.md §11).  Every optimisation here is pinned bitwise to the
original formulation by ``tests/test_tensor_ops.py``.
"""

from __future__ import annotations

import numpy as np

#: tanh-GELU inner coefficient, hoisted off the per-call path.
_GELU_COEF = np.sqrt(2.0 / np.pi)

#: Memoized additive masks.  Entries are immutable (writeable=False) so
#: a cached array can be handed to every caller; the caches are cleared
#: wholesale past a generous cap to bound memory on adversarial inputs.
_CAUSAL_MASK_CACHE: dict[tuple[int, str], np.ndarray] = {}
_PADDING_MASK_CACHE: dict[tuple[int, str, bytes], np.ndarray] = {}
_MASK_CACHE_CAP = 512


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    In-place-friendly: one temporary for the shifted logits which is
    then exponentiated and normalised in place — bit-identical to the
    naive three-temporary formulation.
    """
    out = x - np.max(x, axis=axis, keepdims=True)
    np.exp(out, out=out)
    out /= np.sum(out, axis=axis, keepdims=True)
    return out


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """RMSNorm as used by the Qwen/MiniCPM decoder family.

    In-place-friendly: the quotient buffer is rescaled in place —
    bit-identical to ``x / scale * weight``.
    """
    scale = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    out = x / scale
    out *= weight
    return out


def layer_norm(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """LayerNorm as used by the BGE-M3 encoder family.

    In-place-friendly chain over the centred buffer — bit-identical to
    ``(x - mean) / np.sqrt(var + eps) * weight + bias``.
    """
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    out = x - mean
    out /= np.sqrt(var + eps)
    out *= weight
    out += bias
    return out


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GELU (the variant BERT-family models use).

    In-place-friendly chain over one temporary; bit-identical to
    ``0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 * x**3)))``
    (commutations and the exact-by-construction final halving preserve
    every rounding).
    """
    x = np.asarray(x)
    out = np.empty(x.shape, dtype=x.dtype if x.dtype.kind == "f" else np.float64)
    np.power(x, 3, out=out)
    out *= 0.044715
    out += x
    out *= _GELU_COEF
    np.tanh(out, out=out)
    out += 1.0
    out *= x
    out *= 0.5
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU/Swish, the gate activation in SwiGLU FFNs.

    One temporary for the denominator, exponentiated in place —
    bit-identical to ``x / (1 + exp(-x))``.
    """
    x = np.asarray(x)
    denom = np.empty(x.shape, dtype=x.dtype if x.dtype.kind == "f" else np.float64)
    np.negative(x, out=denom)
    np.exp(denom, out=denom)
    denom += 1.0
    return np.divide(x, denom, out=denom)


def causal_mask(seq_len: int, dtype=np.float64) -> np.ndarray:
    """Additive causal attention mask: 0 on/below diagonal, -inf above.

    Memoized by ``(seq_len, dtype)`` — every layer crossing of every
    decoder task needs the same array, so it is built once and returned
    as an immutable view (callers only ever add it to score tensors).
    The ``dtype`` parameter lets the reduced-precision fused gang
    kernel (DESIGN.md §11) add the mask without promoting its scores.
    """
    dtype = np.dtype(dtype)
    key = (seq_len, dtype.str)
    cached = _CAUSAL_MASK_CACHE.get(key)
    if cached is None:
        if len(_CAUSAL_MASK_CACHE) >= _MASK_CACHE_CAP:
            _CAUSAL_MASK_CACHE.clear()
        mask = np.zeros((seq_len, seq_len), dtype=dtype)
        mask[np.triu_indices(seq_len, k=1)] = -np.inf
        mask.flags.writeable = False
        _CAUSAL_MASK_CACHE[key] = mask
        cached = mask
    return cached


def padding_mask(lengths: np.ndarray, seq_len: int, dtype=np.float64) -> np.ndarray:
    """Additive padding mask (N, 1, 1, L): -inf at padded key positions.

    Memoized by ``(seq_len, dtype, lengths)`` — a task re-presents the
    same length vector at every layer crossing, so the mask is built
    once per distinct shape and returned as an immutable view.
    """
    lengths = np.asarray(lengths)
    dtype = np.dtype(dtype)
    key = (seq_len, dtype.str, lengths.tobytes())
    cached = _PADDING_MASK_CACHE.get(key)
    if cached is None:
        if len(_PADDING_MASK_CACHE) >= _MASK_CACHE_CAP:
            _PADDING_MASK_CACHE.clear()
        positions = np.arange(seq_len)
        blocked = positions[None, :] >= lengths[:, None]  # (N, L)
        mask = np.where(blocked, -np.inf, 0.0)[:, None, None, :].astype(dtype)
        mask.flags.writeable = False
        _PADDING_MASK_CACHE[key] = mask
        cached = mask
    return cached


def pack_ragged(
    arrays: list[np.ndarray], dtype=None
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Stack per-member arrays along the leading (candidate) axis.

    The batched gang kernels (DESIGN.md §11) handle heterogeneous
    candidate counts by concatenation: every per-candidate row is
    independent of its neighbours in all layer ops (matmuls broadcast
    over the leading axis; norms, activations and attention softmax
    reduce over trailing axes only), so packing is exact — no padding
    rows are needed, and ragged *sequence* lengths keep flowing through
    :func:`padding_mask` unchanged.  ``dtype`` casts while packing (the
    fused gang kernel packs into its reduced precision in one pass).
    Returns the packed array and the per-member sizes used by
    :func:`unpack_ragged`.
    """
    if len(arrays) == 1:  # solo: no copy unless a cast is needed
        solo = arrays[0]
        if dtype is not None and solo.dtype != dtype:
            solo = solo.astype(dtype)
        return solo, (arrays[0].shape[0],)
    sizes = tuple(a.shape[0] for a in arrays)
    if dtype is None:
        return np.concatenate(arrays, axis=0), sizes
    packed = np.empty((sum(sizes), *arrays[0].shape[1:]), dtype=dtype)
    offset = 0
    for array, size in zip(arrays, sizes):
        packed[offset : offset + size] = array  # casts during the copy
        offset += size
    return packed, sizes


def unpack_ragged(packed: np.ndarray, sizes: tuple[int, ...]) -> list[np.ndarray]:
    """Split a packed array back into per-member views (zero-copy)."""
    out: list[np.ndarray] = []
    offset = 0
    for size in sizes:
        out.append(packed[offset : offset + size])
        offset += size
    return out


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(N, L, D) → (N, H, L, D/H)."""
    n, length, dim = x.shape
    if dim % num_heads:
        raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
    return x.reshape(n, length, num_heads, dim // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(N, H, L, D/H) → (N, L, D)."""
    n, heads, length, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(n, length, heads * head_dim)
