"""Numpy kernels used by the reduced-width transformer numerics.

These are straightforward, well-tested reference implementations: the
simulator charges *paper-scale* costs separately (``repro.model.costs``),
so these kernels only need to be correct, not fast.
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """RMSNorm as used by the Qwen/MiniCPM decoder family."""
    scale = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x / scale * weight


def layer_norm(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """LayerNorm as used by the BGE-M3 encoder family."""
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * weight + bias


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GELU (the variant BERT-family models use)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU/Swish, the gate activation in SwiGLU FFNs."""
    return x / (1.0 + np.exp(-x))


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive causal attention mask: 0 on/below diagonal, -inf above."""
    mask = np.zeros((seq_len, seq_len), dtype=np.float64)
    mask[np.triu_indices(seq_len, k=1)] = -np.inf
    return mask


def padding_mask(lengths: np.ndarray, seq_len: int) -> np.ndarray:
    """Additive padding mask (N, 1, 1, L): -inf at padded key positions."""
    lengths = np.asarray(lengths)
    positions = np.arange(seq_len)
    blocked = positions[None, :] >= lengths[:, None]  # (N, L)
    mask = np.where(blocked, -np.inf, 0.0)
    return mask[:, None, None, :]


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(N, L, D) → (N, H, L, D/H)."""
    n, length, dim = x.shape
    if dim % num_heads:
        raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
    return x.reshape(n, length, num_heads, dim // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(N, H, L, D/H) → (N, L, D)."""
    n, heads, length, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(n, length, heads * head_dim)
