"""Layerwise score dynamics: the generative form of sequence-level sparsity.

Figure 2 of the paper is an *empirical observation* about real reranker
checkpoints: provisional candidate scores, read off with the model's own
classifier at intermediate layers, (a) fan out from an undifferentiated
blob into statistically distinct clusters as depth increases, and
(b) stabilise their **inter-cluster** relative order early, while the
order *within* a cluster keeps fluctuating until late layers.  The paper
attributes this to the coarse-to-fine refinement of transformer
representations.

Real checkpoints are unavailable offline, so this module encodes the
measured phenomenon as a deterministic generative process (DESIGN.md §2):

    score_ℓ(c) = anchor + (relevance(c) − anchor) · fanout(ℓ/L)
                 + noise_scale(ℓ/L) · ε(c, ℓ)

* ``fanout`` is a logistic ramp: scores start compressed around the
  anchor (low dispersion → the CV trigger of §4.1 stays quiet) and fan
  out toward each candidate's true relevance in intermediate layers —
  exactly the divergence Figure 2(a) shows.
* ``noise_scale`` decays with depth: early provisional scores are noisy
  (within-cluster flux) and the final layer retains a small residual
  (so even the unpruned baseline makes occasional top-K mistakes, as
  real rerankers do).
* ``ε`` is a deterministic unit-normal draw keyed by (model seed,
  candidate uid, layer) — a candidate's trajectory is independent of
  which other candidates share its batch, as cross-encoder scores must
  be, and identical across engines, so PRISM and the baselines disagree
  only through pruning.

Because dataset relevance is generated in *tiers* (``repro.data``), the
fanned-out scores form genuine clusters, and cluster-γ ≈ 1 emerges
rather than being asserted (validated in ``benchmarks/test_fig2``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser (vectorised) — a high-quality integer mixer."""
    with np.errstate(over="ignore"):
        z = (x + _SPLITMIX_GAMMA).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def _unit_normals(model_seed: int, candidate_uids: np.ndarray, layer: int) -> np.ndarray:
    """Deterministic standard-normal draws keyed by (seed, candidate, layer).

    Counter-based (SplitMix64 → Box–Muller) so a candidate's draw is
    independent of batch composition and identical across engines.
    """
    uids = np.asarray(candidate_uids, dtype=np.uint64)
    with np.errstate(over="ignore"):
        base = _splitmix64(
            uids * np.uint64(0x100000001B3)
            + np.uint64(model_seed & 0xFFFFFFFF) * np.uint64(0x1000193)
            + np.uint64(layer)
        )
        other = _splitmix64(base)
    # Map to (0, 1]; guard the log against exactly-zero mantissas.
    u1 = (base >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    u2 = (other >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    u1 = np.maximum(u1, 1e-12)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def _unit_normal(model_seed: int, candidate_uid: int, layer: int) -> float:
    """Scalar convenience wrapper over :func:`_unit_normals`."""
    return float(_unit_normals(model_seed, np.array([candidate_uid]), layer)[0])


@dataclass(frozen=True)
class SemanticsConfig:
    """Shape parameters of the layerwise convergence process.

    Tuned per model family (see :mod:`repro.model.zoo`): e.g. the paper's
    Figure 10 sweeps dispersion thresholds over 0.1–0.9 for the Qwen
    family but only 0.1–0.4 for the BGE family, reflecting different
    score scales; and Qwen3-8B is flagged as over-fit (late layers can
    *hurt* ranking), which ``late_overfit_noise`` reproduces.
    """

    anchor: float = 0.5
    fanout_midpoint: float = 0.40
    fanout_sharpness: float = 9.0
    noise_initial: float = 0.16
    noise_final: float = 0.012
    noise_decay: float = 2.5
    #: Extra final-layers noise modelling the Qwen3-8B over-fitting the
    #: paper reports (its official benchmark shows the same anomaly);
    #: zero for well-behaved models.
    late_overfit_noise: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fanout_midpoint < 1.0:
            raise ValueError("fanout_midpoint must lie in (0, 1)")
        if self.fanout_sharpness <= 0:
            raise ValueError("fanout_sharpness must be positive")
        if self.noise_initial < self.noise_final or self.noise_final < 0:
            raise ValueError("need noise_initial >= noise_final >= 0")
        if self.noise_decay <= 0:
            raise ValueError("noise_decay must be positive")

    # ------------------------------------------------------------------
    def fanout(self, progress: float) -> float:
        """Fraction of the relevance gap expressed at depth ``progress``.

        A logistic ramp rescaled so fanout(0) = 0 and fanout(1) = 1.
        """
        if not 0.0 <= progress <= 1.0:
            raise ValueError(f"progress {progress!r} outside [0, 1]")

        def raw(p: float) -> float:
            return 1.0 / (1.0 + np.exp(-self.fanout_sharpness * (p - self.fanout_midpoint)))

        lo, hi = raw(0.0), raw(1.0)
        return float((raw(progress) - lo) / (hi - lo))

    def noise_scale(self, progress: float) -> float:
        """Provisional-score noise at depth ``progress`` (decays with depth)."""
        base = self.noise_final + (self.noise_initial - self.noise_final) * (
            (1.0 - progress) ** self.noise_decay
        )
        if self.late_overfit_noise > 0 and progress > 0.75:
            base += self.late_overfit_noise * (progress - 0.75) / 0.25
        return float(base)


class ScoreDynamics:
    """Evaluates provisional scores for candidates at any layer depth."""

    def __init__(self, config: SemanticsConfig, num_layers: int, model_seed: int) -> None:
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.config = config
        self.num_layers = num_layers
        self.model_seed = model_seed

    def progress(self, layer: int) -> float:
        """Depth fraction after executing layer ``layer`` (0-based)."""
        if not 0 <= layer < self.num_layers:
            raise ValueError(f"layer {layer} outside [0, {self.num_layers})")
        return (layer + 1) / self.num_layers

    def score_at(self, layer: int, relevance: float, candidate_uid: int) -> float:
        """Provisional classifier score for one candidate after ``layer``."""
        return float(
            self.scores_at(layer, np.array([relevance]), np.array([candidate_uid]))[0]
        )

    def scores_at(
        self, layer: int, relevance: np.ndarray, candidate_uids: np.ndarray
    ) -> np.ndarray:
        """Provisional classifier scores for a candidate batch after ``layer``."""
        relevance = np.asarray(relevance, dtype=np.float64)
        candidate_uids = np.asarray(candidate_uids)
        if relevance.shape != candidate_uids.shape:
            raise ValueError("relevance and candidate_uids must align")
        p = self.progress(layer)
        cfg = self.config
        eps = _unit_normals(self.model_seed, candidate_uids, layer)
        return cfg.anchor + (relevance - cfg.anchor) * cfg.fanout(p) + cfg.noise_scale(p) * eps

    def final_scores(self, relevance: np.ndarray, candidate_uids: np.ndarray) -> np.ndarray:
        """Scores after the last layer — what an unpruned engine reports."""
        return self.scores_at(self.num_layers - 1, relevance, candidate_uids)

    def trajectory(self, relevance: float, candidate_uid: int) -> np.ndarray:
        """Full per-layer score trajectory for one candidate (Figure 2a)."""
        return np.array(
            [self.score_at(layer, relevance, candidate_uid) for layer in range(self.num_layers)]
        )
