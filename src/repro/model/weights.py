"""WeightStore: the model's on-disk representation.

Engines never own weight arrays directly — they ask the store for
(a) the *paper-scale byte size* of each blob, used for memory
accounting and SSD transfer times, and (b) the reduced-width numpy
arrays, deterministically re-materialised on load so that a layer
"read from disk" is bit-identical across engines and loads.

Blob layout mirrors the checkpoints the paper streams (§4.2/§4.4):
one blob per transformer layer, one embedding table (row-addressable,
for the embedding cache), and one classifier head.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from . import costs
from .layers import TransformerLayerWeights, init_layer_weights
from .zoo import ModelConfig


class WeightStore:
    """Addressable weight blobs for one model, at fp16 or W4A16."""

    def __init__(self, config: ModelConfig, quantized: bool = False) -> None:
        self.config = config
        self.quantized = quantized
        self._layer_cache: dict[int, TransformerLayerWeights] = {}
        self._row_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # blob sizes (paper scale)
    # ------------------------------------------------------------------
    def layer_nbytes(self, layer_idx: int) -> int:
        self._check_layer(layer_idx)
        return costs.layer_weight_bytes(self.config, self.quantized)

    def embedding_nbytes(self) -> int:
        return costs.embedding_table_bytes(self.config, self.quantized)

    def embedding_row_nbytes(self) -> int:
        return costs.embedding_row_bytes(self.config)

    def classifier_nbytes(self) -> int:
        return costs.classifier_weight_bytes(self.config)

    def total_nbytes(self) -> int:
        return costs.total_weight_bytes(self.config, self.quantized)

    # ------------------------------------------------------------------
    # blob tags (for SSD requests / memory allocations)
    # ------------------------------------------------------------------
    def layer_tag(self, layer_idx: int) -> str:
        self._check_layer(layer_idx)
        return f"{self.config.name}/layer{layer_idx:03d}"

    def embedding_tag(self) -> str:
        return f"{self.config.name}/embedding"

    def classifier_tag(self) -> str:
        return f"{self.config.name}/classifier"

    # ------------------------------------------------------------------
    # numerics materialisation
    # ------------------------------------------------------------------
    def load_layer(self, layer_idx: int) -> TransformerLayerWeights:
        """Materialise one layer's reduced-width weights (deterministic)."""
        self._check_layer(layer_idx)
        cached = self._layer_cache.get(layer_idx)
        if cached is None:
            cached = init_layer_weights(self.config, layer_idx)
            self._layer_cache[layer_idx] = cached
        return cached

    def embedding_row(self, token_id: int) -> np.ndarray:
        """Reduced-width embedding row for one token (deterministic)."""
        if not 0 <= token_id < self.config.vocab_size:
            raise ValueError(f"token id {token_id} outside vocab")
        row = self._row_cache.get(token_id)
        if row is None:
            row = _make_row(self.config.model_seed, token_id, self.config.sim_hidden)
            self._row_cache[token_id] = row
        return row

    def embedding_rows(self, token_ids: np.ndarray) -> np.ndarray:
        """Rows for a flat array of token ids → (len, sim_hidden)."""
        flat = np.asarray(token_ids).ravel()
        out = np.empty((flat.size, self.config.sim_hidden))
        for i, token in enumerate(flat):
            out[i] = self.embedding_row(int(token))
        return out.reshape(*np.asarray(token_ids).shape, self.config.sim_hidden)

    # ------------------------------------------------------------------
    def _check_layer(self, layer_idx: int) -> None:
        if not 0 <= layer_idx < self.config.num_layers:
            raise IndexError(
                f"layer {layer_idx} outside [0, {self.config.num_layers}) for {self.config.name}"
            )


@lru_cache(maxsize=200_000)
def _make_row(model_seed: int, token_id: int, dim: int) -> np.ndarray:
    rng = np.random.default_rng(np.random.SeedSequence([model_seed, 0xE0B, token_id]))
    row = rng.standard_normal(dim) * 0.02
    row.flags.writeable = False
    return row
