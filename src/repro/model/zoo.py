"""Model registry: the five rerankers evaluated in the paper (Table 1).

| Name                     | Size  | Architecture |
|--------------------------|-------|--------------|
| Qwen3-Reranker-0.6B      | 0.6 B | decoder-only |
| Qwen3-Reranker-4B        | 4 B   | decoder-only |
| Qwen3-Reranker-8B        | 8 B   | decoder-only |
| Bge-Reranker-v2-MiniCPM  | 2 B   | decoder-only |
| Bge-Reranker-v2-M3       | 0.6 B | encoder-only |

Paper-scale dimensions (layers, hidden width, FFN width, head count,
vocabulary) drive all cost/memory accounting; ``sim_*`` dimensions
drive the actual numpy numerics (DESIGN.md §2).  Sanity anchors from
the paper hold by construction and are asserted in tests:

* Qwen3-0.6B: 28 layers at ≈15 M weights/layer (>70 % of weights, §2.2);
* its fp16 embedding table is ≈296 MB over a 151,669-token vocab (§4.4);
* two streamed layers cost ≈60 MB (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .semantics import SemanticsConfig


@dataclass(frozen=True)
class ModelConfig:
    """Static description of one cross-encoder reranker."""

    name: str
    params_label: str
    num_layers: int
    hidden_dim: int
    num_heads: int
    ffn_dim: int
    vocab_size: int
    architecture: str  # "decoder" or "encoder"
    semantics: SemanticsConfig = field(default_factory=SemanticsConfig)
    #: Dispersion-threshold sweep range used by Figure 10 for this model.
    threshold_range: tuple[float, float] = (0.1, 0.9)
    dtype_bytes: int = 2  # fp16
    max_seq_len: int = 512
    model_seed: int = 7
    # --- reduced numerics dimensions (cost accounting never uses these) ---
    sim_hidden: int = 48
    sim_heads: int = 4
    sim_ffn: int = 96
    sim_seq_len: int = 64

    def __post_init__(self) -> None:
        if self.architecture not in ("decoder", "encoder"):
            raise ValueError(f"unknown architecture {self.architecture!r}")
        if self.hidden_dim % self.num_heads:
            raise ValueError("hidden_dim must divide evenly across heads")
        if self.sim_hidden % self.sim_heads:
            raise ValueError("sim_hidden must divide evenly across sim heads")
        if self.num_layers <= 0 or self.vocab_size <= 0:
            raise ValueError("num_layers and vocab_size must be positive")

    @property
    def is_decoder(self) -> bool:
        return self.architecture == "decoder"


QWEN3_0_6B = ModelConfig(
    name="qwen3-reranker-0.6b",
    params_label="0.6B",
    num_layers=28,
    hidden_dim=1024,
    num_heads=16,
    ffn_dim=3072,
    vocab_size=151_669,
    architecture="decoder",
    semantics=SemanticsConfig(
        anchor=0.5,
        fanout_midpoint=0.38,
        fanout_sharpness=9.0,
        noise_initial=0.055,
        noise_final=0.012,
    ),
    threshold_range=(0.1, 0.9),
    model_seed=601,
)

QWEN3_4B = ModelConfig(
    name="qwen3-reranker-4b",
    params_label="4B",
    num_layers=36,
    hidden_dim=2560,
    num_heads=32,
    ffn_dim=9728,
    vocab_size=151_669,
    architecture="decoder",
    semantics=SemanticsConfig(
        anchor=0.5,
        fanout_midpoint=0.36,
        fanout_sharpness=10.0,
        noise_initial=0.050,
        noise_final=0.010,
    ),
    threshold_range=(0.1, 0.9),
    model_seed=604,
)

QWEN3_8B = ModelConfig(
    name="qwen3-reranker-8b",
    params_label="8B",
    num_layers=36,
    hidden_dim=4096,
    num_heads=32,
    ffn_dim=12288,
    vocab_size=151_669,
    architecture="decoder",
    semantics=SemanticsConfig(
        anchor=0.5,
        fanout_midpoint=0.34,
        fanout_sharpness=10.0,
        noise_initial=0.048,
        noise_final=0.010,
        # The paper (§6.2, Figure 10) attributes Qwen3-8B's inverse
        # threshold/precision trend to over-fitting: bypassing late
        # layers *improves* ranking.  Modelled as rising late noise.
        late_overfit_noise=0.030,
    ),
    threshold_range=(0.1, 0.9),
    model_seed=608,
)

BGE_MINICPM = ModelConfig(
    name="bge-reranker-v2-minicpm",
    params_label="2B",
    num_layers=40,
    hidden_dim=2304,
    num_heads=36,
    ffn_dim=5760,
    vocab_size=122_753,
    architecture="decoder",
    semantics=SemanticsConfig(
        anchor=0.5,
        fanout_midpoint=0.30,
        fanout_sharpness=8.0,
        noise_initial=0.042,
        noise_final=0.010,
    ),
    threshold_range=(0.05, 0.4),
    model_seed=620,
)

BGE_M3 = ModelConfig(
    name="bge-reranker-v2-m3",
    params_label="0.6B",
    num_layers=24,
    hidden_dim=1024,
    num_heads=16,
    ffn_dim=4096,
    vocab_size=250_002,
    architecture="encoder",
    semantics=SemanticsConfig(
        anchor=0.5,
        fanout_midpoint=0.32,
        fanout_sharpness=8.0,
        noise_initial=0.045,
        noise_final=0.012,
    ),
    threshold_range=(0.05, 0.4),
    model_seed=630,
)

#: Evaluation order used by the paper's tables/figures.
PAPER_MODELS = (QWEN3_0_6B, QWEN3_4B, QWEN3_8B, BGE_MINICPM, BGE_M3)

_REGISTRY: dict[str, ModelConfig] = {config.name: config for config in PAPER_MODELS}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model config by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None


def register_model(config: ModelConfig) -> None:
    """Register a custom model configuration."""
    _REGISTRY[config.name] = config


def list_models() -> list[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Extension models (§7 "Generality beyond evaluated models")
# ----------------------------------------------------------------------
#: Qwen3-4B-Instruct prompted as a reranker — the paper's preliminary
#: generality experiment (§7): an instruction-tuned LLM, not a trained
#: reranker, still exhibits sequence-level sparsity.  Modelled with the
#: 4B geometry but noisier, later-converging score dynamics (no
#: reranking fine-tune) — so pruning fires later and final precision
#: trails the dedicated reranker.
QWEN3_4B_INSTRUCT_AS_RERANKER = ModelConfig(
    name="qwen3-4b-instruct-as-reranker",
    params_label="4B",
    num_layers=36,
    hidden_dim=2560,
    num_heads=32,
    ffn_dim=9728,
    vocab_size=151_669,
    architecture="decoder",
    semantics=SemanticsConfig(
        anchor=0.5,
        fanout_midpoint=0.46,  # converges later than the fine-tuned 4B
        fanout_sharpness=7.0,
        noise_initial=0.065,
        noise_final=0.028,  # noisier final judgements
    ),
    threshold_range=(0.1, 0.9),
    model_seed=640,
)

register_model(QWEN3_4B_INSTRUCT_AS_RERANKER)
