"""Transformer layer numerics at reduced width.

``TransformerLayerWeights`` holds the numpy arrays for one layer;
``TransformerLayer`` applies pre-norm attention + FFN with residual
connections.  Decoder-family models (Qwen3, MiniCPM) use RMSNorm,
causal attention and SwiGLU; encoder-family models (BGE-M3) use
LayerNorm, bidirectional attention and GELU — mirroring the two
cross-encoder architectures the paper evaluates (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tensor_ops import (
    causal_mask,
    gelu,
    layer_norm,
    merge_heads,
    padding_mask,
    rms_norm,
    silu,
    softmax,
    split_heads,
)
from .zoo import ModelConfig


@dataclass
class TransformerLayerWeights:
    """Numpy weights for one reduced-width layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray | None  # decoder (SwiGLU) only
    w_up: np.ndarray
    w_down: np.ndarray
    norm1: np.ndarray
    norm2: np.ndarray
    norm1_bias: np.ndarray | None  # encoder (LayerNorm) only
    norm2_bias: np.ndarray | None

    def nbytes_actual(self) -> int:
        """Actual numpy bytes (diagnostics only; accounting is paper-scale)."""
        total = 0
        for value in vars(self).values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total

    def cast(self, dtype) -> "TransformerLayerWeights":
        """A copy of these weights in ``dtype`` (fused gang kernel)."""
        return TransformerLayerWeights(
            **{
                name: None if value is None else value.astype(dtype)
                for name, value in vars(self).items()
            }
        )


def init_layer_weights(config: ModelConfig, layer_idx: int) -> TransformerLayerWeights:
    """Deterministically initialise one layer's reduced-width weights.

    Seeded by (model seed, layer index) so that a layer loaded from the
    simulated SSD is bit-identical no matter which engine loads it.
    """
    rng = np.random.default_rng(np.random.SeedSequence([config.model_seed, layer_idx]))
    d, f = config.sim_hidden, config.sim_ffn
    scale = 1.0 / np.sqrt(d)

    def mat(rows: int, cols: int) -> np.ndarray:
        return rng.standard_normal((rows, cols)) * scale

    decoder = config.is_decoder
    return TransformerLayerWeights(
        wq=mat(d, d),
        wk=mat(d, d),
        wv=mat(d, d),
        wo=mat(d, d),
        w_gate=mat(d, f) if decoder else None,
        w_up=mat(d, f),
        w_down=mat(f, d),
        norm1=np.ones(d),
        norm2=np.ones(d),
        norm1_bias=None if decoder else np.zeros(d),
        norm2_bias=None if decoder else np.zeros(d),
    )


class TransformerLayer:
    """Applies one layer's numerics to a hidden-state batch."""

    def __init__(self, config: ModelConfig, weights: TransformerLayerWeights) -> None:
        self.config = config
        self.weights = weights
        #: Lazily fused projection matrices (QKV / gate+up stacked
        #: column-wise) for :meth:`forward_fused`; built once per layer
        #: instance, so only the model's cached fused layers pay for it.
        self._wqkv: np.ndarray | None = None
        self._w_gate_up: np.ndarray | None = None

    def forward(self, hidden: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Run the layer over ``hidden`` (N, L, D_sim); returns a new array."""
        if hidden.ndim != 3:
            raise ValueError(f"hidden must be (N, L, D); got {hidden.shape}")
        normed = self._norm(hidden, self.weights.norm1, self.weights.norm1_bias)
        hidden = hidden + self._attention(normed, lengths)
        normed = self._norm(hidden, self.weights.norm2, self.weights.norm2_bias)
        hidden = hidden + self._ffn(normed)
        return hidden

    # ------------------------------------------------------------------
    def _norm(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
    ) -> np.ndarray:
        if self.config.is_decoder:
            return rms_norm(x, weight)
        assert bias is not None
        return layer_norm(x, weight, bias)

    def _attention(self, x: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        w = self.weights
        heads = self.config.sim_heads
        seq_len = x.shape[1]
        q = split_heads(x @ w.wq, heads)
        k = split_heads(x @ w.wk, heads)
        v = split_heads(x @ w.wv, heads)
        head_dim = q.shape[-1]
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(head_dim)
        scores = scores + padding_mask(lengths, seq_len)
        if self.config.is_decoder:
            scores = scores + causal_mask(seq_len)[None, None]
        attn = softmax(scores, axis=-1)
        out = merge_heads(attn @ v)
        return out @ w.wo

    def _ffn(self, x: np.ndarray) -> np.ndarray:
        w = self.weights
        if self.config.is_decoder:
            assert w.w_gate is not None
            return (silu(x @ w.w_gate) * (x @ w.w_up)) @ w.w_down
        return gelu(x @ w.w_up) @ w.w_down

    # ------------------------------------------------------------------
    # fused gang kernel (DESIGN.md §11)
    # ------------------------------------------------------------------
    def forward_fused(self, hidden: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """One fused forward over a packed gang batch.

        The batched-gang variant of :meth:`forward`: same layer
        semantics, reorganised for harness wall-clock — projections run
        as single stacked matmuls (QKV fused, SwiGLU gate+up fused) and
        the attention-score pipeline mutates one buffer in place
        instead of allocating a temporary per op.  It computes in
        whatever dtype ``hidden`` and the weights carry; the gang path
        feeds it reduced precision (``repro.model.transformer.
        GANG_KERNEL_DTYPE``), which halves the memory traffic of the
        (N, H, L, L) score tensors.  Selections are unaffected by
        construction — observables ride the semantic channel, injected
        exactly after every crossing — and the numerics agree with
        :meth:`forward` to reduced-precision tolerance
        (``tests/test_gang_kernels.py``).
        """
        w = self.weights
        normed = self._norm(hidden, w.norm1, w.norm1_bias)
        attn = self._attention_fused(normed, lengths)
        attn += hidden  # in place: ``attn`` is fresh off the matmul chain
        hidden = attn
        normed = self._norm(hidden, w.norm2, w.norm2_bias)
        hidden += self._ffn_fused(normed)  # in place: residual owns the buffer
        return hidden

    def _attention_fused(self, x: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        w = self.weights
        heads = self.config.sim_heads
        if self._wqkv is None:
            # Fold the 1/sqrt(head_dim) softmax scale into the Q columns
            # at build time: scaling the (D, D) weight once replaces a
            # full pass over every (N, H, L, L) score tensor.
            head_dim = w.wq.shape[0] // heads
            wq = w.wq * (1.0 / float(np.sqrt(head_dim)))
            self._wqkv = np.concatenate([wq, w.wk, w.wv], axis=1)
        seq_len, dim = x.shape[1], x.shape[2]
        qkv = x @ self._wqkv  # one stacked projection
        q = split_heads(qkv[..., :dim], heads)  # pre-scaled (see above)
        k = split_heads(qkv[..., dim : 2 * dim], heads)
        v = split_heads(qkv[..., 2 * dim :], heads)
        scores = q @ k.transpose(0, 1, 3, 2)
        if np.min(lengths) < seq_len:  # all-full batches need no padding mask
            scores += padding_mask(lengths, seq_len, dtype=scores.dtype)
        if self.config.is_decoder:
            scores += causal_mask(seq_len, dtype=scores.dtype)
        # In-place softmax over the score buffer.  Instead of the usual
        # subtract-the-row-max shift (numpy's NaN-propagating max
        # reduction costs more than every other pass combined), overflow
        # is prevented by clamping at 80: exp(80) is far below the
        # float32 ceiling even summed over a row, the clamp never
        # activates for normalised inputs (|scores| stays in the tens),
        # and masked -inf entries still exponentiate to exactly 0.  The
        # normalisation divides the post-contraction context tensor —
        # exact by linearity, and H·L/head_dim times less traffic than
        # dividing the scores.
        np.minimum(scores, 80.0, out=scores)
        np.exp(scores, out=scores)
        denom = np.sum(scores, axis=-1, keepdims=True)
        context = scores @ v
        context /= denom
        return merge_heads(context) @ w.wo

    def _ffn_fused(self, x: np.ndarray) -> np.ndarray:
        w = self.weights
        if not self.config.is_decoder:
            return gelu(x @ w.w_up) @ w.w_down
        assert w.w_gate is not None
        if self._w_gate_up is None:
            self._w_gate_up = np.concatenate([w.w_gate, w.w_up], axis=1)
        gate_up = x @ self._w_gate_up  # one stacked projection
        ffn = gate_up.shape[-1] // 2
        activated = silu(gate_up[..., :ffn])
        activated *= gate_up[..., ffn:]
        return activated @ w.w_down
