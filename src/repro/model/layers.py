"""Transformer layer numerics at reduced width.

``TransformerLayerWeights`` holds the numpy arrays for one layer;
``TransformerLayer`` applies pre-norm attention + FFN with residual
connections.  Decoder-family models (Qwen3, MiniCPM) use RMSNorm,
causal attention and SwiGLU; encoder-family models (BGE-M3) use
LayerNorm, bidirectional attention and GELU — mirroring the two
cross-encoder architectures the paper evaluates (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tensor_ops import (
    causal_mask,
    gelu,
    layer_norm,
    merge_heads,
    padding_mask,
    rms_norm,
    silu,
    softmax,
    split_heads,
)
from .zoo import ModelConfig


@dataclass
class TransformerLayerWeights:
    """Numpy weights for one reduced-width layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray | None  # decoder (SwiGLU) only
    w_up: np.ndarray
    w_down: np.ndarray
    norm1: np.ndarray
    norm2: np.ndarray
    norm1_bias: np.ndarray | None  # encoder (LayerNorm) only
    norm2_bias: np.ndarray | None

    def nbytes_actual(self) -> int:
        """Actual numpy bytes (diagnostics only; accounting is paper-scale)."""
        total = 0
        for value in vars(self).values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total


def init_layer_weights(config: ModelConfig, layer_idx: int) -> TransformerLayerWeights:
    """Deterministically initialise one layer's reduced-width weights.

    Seeded by (model seed, layer index) so that a layer loaded from the
    simulated SSD is bit-identical no matter which engine loads it.
    """
    rng = np.random.default_rng(np.random.SeedSequence([config.model_seed, layer_idx]))
    d, f = config.sim_hidden, config.sim_ffn
    scale = 1.0 / np.sqrt(d)

    def mat(rows: int, cols: int) -> np.ndarray:
        return rng.standard_normal((rows, cols)) * scale

    decoder = config.is_decoder
    return TransformerLayerWeights(
        wq=mat(d, d),
        wk=mat(d, d),
        wv=mat(d, d),
        wo=mat(d, d),
        w_gate=mat(d, f) if decoder else None,
        w_up=mat(d, f),
        w_down=mat(f, d),
        norm1=np.ones(d),
        norm2=np.ones(d),
        norm1_bias=None if decoder else np.zeros(d),
        norm2_bias=None if decoder else np.zeros(d),
    )


class TransformerLayer:
    """Applies one layer's numerics to a hidden-state batch."""

    def __init__(self, config: ModelConfig, weights: TransformerLayerWeights) -> None:
        self.config = config
        self.weights = weights

    def forward(self, hidden: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Run the layer over ``hidden`` (N, L, D_sim); returns a new array."""
        if hidden.ndim != 3:
            raise ValueError(f"hidden must be (N, L, D); got {hidden.shape}")
        normed = self._norm(hidden, self.weights.norm1, self.weights.norm1_bias)
        hidden = hidden + self._attention(normed, lengths)
        normed = self._norm(hidden, self.weights.norm2, self.weights.norm2_bias)
        hidden = hidden + self._ffn(normed)
        return hidden

    # ------------------------------------------------------------------
    def _norm(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
    ) -> np.ndarray:
        if self.config.is_decoder:
            return rms_norm(x, weight)
        assert bias is not None
        return layer_norm(x, weight, bias)

    def _attention(self, x: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        w = self.weights
        heads = self.config.sim_heads
        seq_len = x.shape[1]
        q = split_heads(x @ w.wq, heads)
        k = split_heads(x @ w.wk, heads)
        v = split_heads(x @ w.wv, heads)
        head_dim = q.shape[-1]
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(head_dim)
        scores = scores + padding_mask(lengths, seq_len)
        if self.config.is_decoder:
            scores = scores + causal_mask(seq_len)[None, None]
        attn = softmax(scores, axis=-1)
        out = merge_heads(attn @ v)
        return out @ w.wo

    def _ffn(self, x: np.ndarray) -> np.ndarray:
        w = self.weights
        if self.config.is_decoder:
            assert w.w_gate is not None
            return (silu(x @ w.w_gate) * (x @ w.w_up)) @ w.w_down
        return gelu(x @ w.w_up) @ w.w_down
