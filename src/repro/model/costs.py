"""Paper-scale FLOPs and byte accounting for cross-encoder layers.

The simulator executes numerics at reduced width/length so a full
28–40-layer forward pass is tractable in pure Python, but **all cost
and memory accounting happens at the model's paper-scale dimensions**
(hidden width, FFN width, head count, vocabulary, fp16 weights).

The formulas below follow §2.2 of the paper:

* self-attention is ``O(L² · D)`` and projections/FFN are ``O(L · D²)``
  per candidate;
* layer weights are dominated by the four attention projections plus
  the FFN matrices — e.g. Qwen3-Reranker-0.6B has ≈15 M weights/layer
  across 28 layers (>70 % of weight memory), matching §2.2;
* the embedding table is ``vocab × D`` (296 MB for the 0.6 B model at
  fp16, §4.4);
* transient intermediate tensors scale with the number of in-flight
  candidates (§4.3: 60 candidates × 512 tokens on the 0.6 B model add
  ≈473 MB per layer).

Attention-score buffers are charged block-wise (block 128) rather than
as a full ``L×L`` map, matching the tiled SDPA kernels the HF stack
dispatches to on modern hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .zoo import ModelConfig

#: Tile width of the SDPA kernels (score tiles of this width live in
#: on-chip SRAM and never reach DRAM — see intermediate_bytes_per_candidate).
ATTENTION_BLOCK = 128

#: Per-tensor overhead of W4A16 storage (scales + zero points), as a
#: fraction of the fp16 size on top of the 4-bit payload.
QUANT_SCALE_OVERHEAD = 0.03


@dataclass(frozen=True)
class LayerCost:
    """Costs of running one transformer layer over one candidate batch."""

    flops: float
    weight_bytes: int
    intermediate_bytes: int
    hidden_bytes: int


def layer_param_count(config: "ModelConfig") -> int:
    """Weights in one transformer layer at paper scale.

    Attention contributes the Q/K/V/O projections (4·D²); the FFN
    contributes three matrices for SwiGLU decoders (gate/up/down) or
    two for GELU encoders (up/down).  Norm parameters are negligible
    but included for fidelity.
    """
    d, f = config.hidden_dim, config.ffn_dim
    attn = 4 * d * d
    ffn = (3 if config.is_decoder else 2) * d * f
    norms = 2 * d
    return attn + ffn + norms


def layer_weight_bytes(config: "ModelConfig", quantized: bool = False) -> int:
    """Resident bytes for one layer's weights (fp16 or W4A16)."""
    params = layer_param_count(config)
    if quantized:
        payload = params // 2  # 4 bits/weight
        overhead = int(params * config.dtype_bytes * QUANT_SCALE_OVERHEAD)
        return payload + overhead
    return params * config.dtype_bytes


def all_layer_weight_bytes(config: "ModelConfig", quantized: bool = False) -> int:
    return config.num_layers * layer_weight_bytes(config, quantized)


def embedding_table_bytes(config: "ModelConfig", quantized: bool = False) -> int:
    """Resident bytes of the full embedding table.

    Embedding rows stay fp16 even under W4A16 (standard GPTQ practice:
    only linear layers are quantized), so the quantized footprint is
    unchanged — which is why §4.4's cache matters even for quant runs.
    """
    del quantized
    return config.vocab_size * config.hidden_dim * config.dtype_bytes


def embedding_row_bytes(config: "ModelConfig") -> int:
    return config.hidden_dim * config.dtype_bytes


def classifier_weight_bytes(config: "ModelConfig") -> int:
    """The lightweight scoring head (hidden → scalar)."""
    return config.hidden_dim * config.dtype_bytes


def layer_flops_per_candidate(config: "ModelConfig", seq_len: int) -> float:
    """Dense FLOPs for one candidate through one layer at paper scale.

    2 FLOPs per MAC.  Projections + FFN: ``2 · params · L``; attention
    score/value matmuls: ``4 · L² · D``.
    """
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    d = config.hidden_dim
    matmul = 2.0 * layer_param_count(config) * seq_len
    attention = 4.0 * seq_len * seq_len * d
    return matmul + attention


def classifier_flops_per_candidate(config: "ModelConfig") -> float:
    """Scoring-head FLOPs: one D-wide dot product per candidate."""
    return 2.0 * config.hidden_dim


def embedding_flops_per_candidate(config: "ModelConfig", seq_len: int) -> float:
    """Embedding lookup is a gather — charge one copy per token."""
    return float(seq_len * config.hidden_dim)


def hidden_state_bytes_per_candidate(config: "ModelConfig", seq_len: int) -> int:
    """One candidate's hidden-state slab (L × D, fp16)."""
    return seq_len * config.hidden_dim * config.dtype_bytes


def intermediate_bytes_per_candidate(config: "ModelConfig", seq_len: int) -> int:
    """Transient per-layer DRAM workspace for one in-flight candidate.

    Counts the buffers that actually hit device memory on a modern
    stack: the Q/K/V projections (3·L·D), the attention output (L·D)
    and one FFN activation buffer (L·F — SwiGLU's gate multiplies into
    the up-projection in place, and GELU has a single buffer anyway).
    Attention-score tiles stay in on-chip SRAM under the tiled SDPA
    kernels HF dispatches to (see ``ATTENTION_BLOCK``), so they do not
    contribute to DRAM peaks.  With these terms, 60 candidates of 512
    tokens on the 0.6 B model come to ≈440 MB — matching the ≈473 MB
    per-layer inflation §4.3 reports.
    """
    d, f = config.hidden_dim, config.ffn_dim
    elems = 3 * seq_len * d
    elems += seq_len * d
    elems += seq_len * f
    return elems * config.dtype_bytes


def total_weight_bytes(config: "ModelConfig", quantized: bool = False) -> int:
    """Everything a fully-resident engine must hold: layers + embedding + head."""
    return (
        all_layer_weight_bytes(config, quantized)
        + embedding_table_bytes(config, quantized)
        + classifier_weight_bytes(config)
    )


def forward_flops(config: "ModelConfig", num_candidates: int, seq_len: int) -> float:
    """Full-model FLOPs for ``num_candidates`` candidates (no pruning)."""
    per_layer = layer_flops_per_candidate(config, seq_len)
    return num_candidates * (
        config.num_layers * per_layer
        + embedding_flops_per_candidate(config, seq_len)
        + classifier_flops_per_candidate(config)
    )
