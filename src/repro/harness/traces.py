"""Canonical trace scenarios for record/replay (DESIGN.md §10).

Each scenario names one deterministic (spec, workload) pair covering a
serving tier or a resilience behaviour; ``cli trace record`` and the
golden fixtures under ``tests/fixtures/traces/`` are built from these.
``quick=True`` shrinks the workload for CI smoke and fixture use
without changing the stack shape.
"""

from __future__ import annotations

from ..core.scheduler import LANE_INTERACTIVE
from ..core.trace import TraceRequest, TraceSpec, run_trace
from ..data.datasets import get_dataset
from ..device.faults import FAULT_REPLICA_CRASH

#: Model every scenario runs (smallest in the zoo → smallest traces).
SCENARIO_MODEL = "qwen3-reranker-0.6b"


def _workload(num_queries: int, num_candidates: int) -> list:
    """A deterministic pool of small queries (dataset generator §6.1)."""
    return get_dataset("nfcorpus").queries(num_queries, num_candidates=num_candidates)


def _engine_scenario(quick: bool) -> tuple[TraceSpec, list[TraceRequest]]:
    """Lowest tier: serial direct execution, one cancellation."""
    queries = _workload(2 if quick else 3, 4 if quick else 6)
    spec = TraceSpec(tier="engine", model=SCENARIO_MODEL)
    requests = [
        TraceRequest(query=q, k=2, request_id=f"eng-{i}", arrival=0.002 * i)
        for i, q in enumerate(queries)
    ]
    requests[-1] = TraceRequest(
        query=queries[-1],
        k=2,
        request_id=requests[-1].request_id,
        arrival=requests[-1].arrival,
        cancel_at=requests[-1].arrival,  # cancelled before it ever starts
    )
    return spec, requests


def _device_scenario(quick: bool) -> tuple[TraceSpec, list[TraceRequest]]:
    """Shared device: fused scheduling over a shared weight plane.

    Exercises plane acquire/attach/release and fuse events, one
    interactive-lane request, one deadline shed and one mid-run
    cancellation.
    """
    queries = _workload(3 if quick else 4, 4 if quick else 6)
    spec = TraceSpec(
        tier="device",
        model=SCENARIO_MODEL,
        device={
            "policy": "fusion",
            "max_concurrency": 2,
            "shared_weights": True,
            "quantum_layers": 2,
        },
    )
    requests = [
        TraceRequest(query=q, k=2, request_id=f"dev-{i}", arrival=0.001 * i)
        for i, q in enumerate(queries)
    ]
    requests[0] = TraceRequest(
        query=queries[0],
        k=2,
        request_id="dev-0",
        priority=LANE_INTERACTIVE,
    )
    requests[1] = TraceRequest(
        query=queries[1],
        k=2,
        request_id="dev-1",
        arrival=0.001,
        deadline=1e-4,  # unmeetable: pins the shed path
    )
    requests[2] = TraceRequest(
        query=queries[2],
        k=2,
        request_id="dev-2",
        arrival=0.002,
        cancel_at=0.05,  # lands mid-pass: next layer boundary honours it
    )
    return spec, requests


def _fleet_scenario(quick: bool) -> tuple[TraceSpec, list[TraceRequest]]:
    """Replicated serving: round-robin routing over two replicas."""
    queries = _workload(3 if quick else 5, 4 if quick else 6)
    spec = TraceSpec(
        tier="fleet",
        model=SCENARIO_MODEL,
        platforms=("nvidia_5070", "nvidia_5070"),
        fleet={"routing": "round_robin", "max_batch": 2, "max_wait_ms": 2.0},
    )
    requests = [
        TraceRequest(query=q, k=2, request_id=f"flt-{i}", arrival=0.004 * i)
        for i, q in enumerate(queries)
    ]
    return spec, requests


def _deadline_scenario(quick: bool) -> tuple[TraceSpec, list[TraceRequest]]:
    """EDF admission under deadlines — mirrors the §8 deadline experiment."""
    queries = _workload(3 if quick else 5, 4 if quick else 6)
    spec = TraceSpec(
        tier="device",
        model=SCENARIO_MODEL,
        device={"policy": "round_robin", "max_concurrency": 2, "edf": True},
    )
    requests = []
    for i, q in enumerate(queries):
        # Alternate tight/loose deadlines so EDF reorders admission and
        # at least one request sheds deterministically.
        deadline = 1e-4 if i == 1 else 30.0
        requests.append(
            TraceRequest(
                query=q,
                k=2,
                request_id=f"ddl-{i}",
                arrival=0.001 * i,
                deadline=deadline,
            )
        )
    return spec, requests


def _resilience_scenario(quick: bool) -> tuple[TraceSpec, list[TraceRequest]]:
    """The §9 stack end-to-end: crash mid-stream, failover, hedges, scaling.

    The crash instant is derived from a deterministic fault-free probe
    of the same (spec, workload): 40 % through its makespan, which
    lands inside the serving window regardless of model or workload
    size — the replica dies with work genuinely in flight.
    """
    queries = _workload(4 if quick else 6, 4 if quick else 6)
    base = dict(
        tier="fleet",
        model=SCENARIO_MODEL,
        platforms=("nvidia_5070", "nvidia_5070"),
        fleet={"routing": "least_loaded", "max_batch": 1},
        resilience={"max_retries": 2, "failure_threshold": 1, "cooldown_s": 30.0},
        autoscaler={
            "min_replicas": 1,
            "max_replicas": 3,
            "scale_up_queue_depth": 2,
            "scale_down_idle_s": 0.05,
            "warmup_s": 0.01,
            "action_cooldown_s": 0.01,
        },
    )
    requests = [
        TraceRequest(
            query=q,
            k=2,
            request_id=f"res-{i}",
            arrival=0.003 * i,
            hedge_after_ms=250.0,
        )
        for i, q in enumerate(queries)
    ]
    probe = run_trace(TraceSpec(**base), requests)
    finishes = [r.finish for r in probe.responses if r.finish is not None]
    crash_at = 0.4 * max(finishes)
    spec = TraceSpec(
        **base,
        faults=({"kind": FAULT_REPLICA_CRASH, "at": crash_at, "replica": 0},),
    )
    return spec, requests


#: Scenario name → builder(quick) -> (spec, requests).
SCENARIOS = {
    "engine": _engine_scenario,
    "device": _device_scenario,
    "fleet": _fleet_scenario,
    "deadline": _deadline_scenario,
    "resilience": _resilience_scenario,
}


def build_scenario(name: str, quick: bool = False) -> tuple[TraceSpec, list[TraceRequest]]:
    """Look up and build a named scenario's (spec, workload) pair."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown trace scenario {name!r}; known: {known}") from None
    return builder(quick)
