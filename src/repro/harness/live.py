"""Stdlib-only live progress server over the event log (DESIGN.md §14).

The §10 event log already records everything the stack does; this
module streams it *while the run is still going*.  A
:class:`LiveTelemetry` folds a bounded
:class:`~repro.core.events.EventSubscription` into the §14 metrics
registry, and a :class:`LiveServer` (a ``ThreadingHTTPServer`` on a
daemon thread — no third-party dependency) exposes:

``/metrics``
    Prometheus text exposition 0.0.4 of the derived registry.
``/events``
    Server-sent events: each log event as one ``event:``/``data:``
    frame, filterable by ``?kind=``, ``?tier=``, ``?tenant=`` (CSV
    accepted) and bounded by ``?max=N`` for one-shot consumers.
    ``?replay=1`` first streams the already-logged history (then keeps
    following), so a consumer attaching after a fast run still sees
    its events.
``/healthz``
    Liveness JSON: events folded, subscriber drop counters.

Every consumer rides its own bounded subscription, so a slow scraper
drops (with an accounted counter) instead of back-pressuring the
virtual clock — the §14 zero-perturbation guarantee.

:func:`follow_trace_lines` is the file-side twin: incremental tailing
of a growing JSONL trace from the last byte offset (``cli trace tail
--follow``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Iterator
from urllib.parse import parse_qs, urlsplit

from ..core.events import Event, EventLog
from ..core.telemetry import MetricsRegistry, TelemetryCollector, slo_lookup

#: Default per-consumer subscription queue depth.
DEFAULT_CAPACITY = 65536


class LiveTelemetry:
    """One log → one collector → one registry, pumped on demand.

    ``pump()`` drains whatever the subscription has buffered into the
    registry (collector and registry share a lock, so a concurrent
    scrape sees a consistent snapshot); ``drain()`` pumps until the
    queue is empty — call it after the run finishes so the registry
    reflects the complete stream before the equivalence check.
    """

    def __init__(
        self,
        log: EventLog,
        tenancy=None,
        tenant_tier: str = "fleet",
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.log = log
        self.collector = TelemetryCollector(
            slo_of=slo_lookup(tenancy) if tenancy is not None else None,
            tenant_tier=tenant_tier,
        )
        self.registry: MetricsRegistry = self.collector.registry
        self.subscription = log.subscribe(capacity=capacity)

    def pump(self) -> int:
        """Fold buffered events into the registry; returns how many."""
        return self.collector.consume(self.subscription)

    def drain(self) -> int:
        total = 0
        while True:
            folded = self.pump()
            total += folded
            if folded == 0 and self.subscription.backlog == 0:
                return total

    def close(self) -> None:
        self.subscription.close()


def _sse_filters(query: dict[str, list[str]]) -> dict[str, set[str] | None]:
    def csv(name: str) -> set[str] | None:
        values: set[str] = set()
        for chunk in query.get(name, []):
            values.update(v for v in chunk.split(",") if v)
        return values or None

    return {"kind": csv("kind"), "tier": csv("tier"), "tenant": csv("tenant")}


def sse_frame(event: Event) -> bytes:
    """One SSE frame: ``event:`` names the kind, ``data:`` carries the
    canonical event line (the same JSON identity replay checks)."""
    return f"event: {event.kind}\ndata: {event.line()}\n\n".encode()


class LiveServer:
    """Background HTTP server publishing one run's live telemetry.

    Stdlib only (``http.server``); binds ``host:port`` (port 0 picks an
    ephemeral port — read :attr:`port` after :meth:`start`).  The
    handler threads are daemons: an abandoned scrape can never hold the
    process open.
    """

    def __init__(
        self,
        log: EventLog,
        tenancy=None,
        tenant_tier: str = "fleet",
        host: str = "127.0.0.1",
        port: int = 0,
        poll_s: float = 0.05,
    ) -> None:
        self.telemetry = LiveTelemetry(log, tenancy=tenancy, tenant_tier=tenant_tier)
        self.log = log
        self.poll_s = poll_s
        self._closing = threading.Event()
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # quiet: stdout is the dashboard's
                pass

            def _respond(self, body: bytes, content_type: str, status: int = 200) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                url = urlsplit(self.path)
                if url.path == "/metrics":
                    server.telemetry.pump()
                    body = server.telemetry.registry.render().encode()
                    self._respond(body, "text/plain; version=0.0.4; charset=utf-8")
                elif url.path == "/healthz":
                    subscription = server.telemetry.subscription
                    body = (
                        json.dumps(
                            {
                                "status": "ok",
                                "events": server.telemetry.collector.events_seen,
                                "backlog": subscription.backlog,
                                "delivered": subscription.delivered,
                                "dropped": subscription.dropped,
                                "subscribers": server.log.subscriber_count,
                            }
                        ).encode()
                        + b"\n"
                    )
                    self._respond(body, "application/json")
                elif url.path == "/events":
                    self._stream_events(parse_qs(url.query))
                else:
                    self._respond(b"not found\n", "text/plain", status=404)

            def _stream_events(self, query: dict[str, list[str]]) -> None:
                filters = _sse_filters(query)
                limit = None
                if "max" in query:
                    limit = max(1, int(query["max"][0]))
                try:
                    subscription = server.log.subscribe(
                        capacity=DEFAULT_CAPACITY,
                        kinds=filters["kind"],
                        tiers=filters["tier"],
                        tenants=filters["tenant"],
                    )
                except ValueError as error:  # unknown kind/tier filter
                    self._respond(f"{error}\n".encode(), "text/plain", status=400)
                    return
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                # SSE has no Content-Length: the stream ends when the
                # connection closes, so opt out of HTTP/1.1 keep-alive
                # on both sides (a ?max= consumer otherwise deadlocks
                # waiting for an EOF the server never sends).
                self.send_header("Connection", "close")
                self.close_connection = True
                self.end_headers()
                sent = 0
                idle_beats = 0
                replayed_through = -1
                try:
                    if query.get("replay", ["0"])[0] not in ("0", ""):
                        # History first: the subscription attached above,
                        # so skipping queued events at or below the
                        # snapshot's last seq avoids double delivery.
                        history = list(server.log)
                        if history:
                            replayed_through = history[-1].seq
                        for event in history:
                            if not subscription.matches(event):
                                continue
                            self.wfile.write(sse_frame(event))
                            sent += 1
                            if limit is not None and sent >= limit:
                                self.wfile.flush()
                                return
                        self.wfile.flush()
                    while not server._closing.is_set():
                        events = [
                            event
                            for event in subscription.poll()
                            if event.seq > replayed_through
                        ]
                        if not events:
                            idle_beats += 1
                            if idle_beats >= 20:
                                # Comment heartbeat keeps proxies from
                                # timing the stream out while idle.
                                self.wfile.write(b": keep-alive\n\n")
                                self.wfile.flush()
                                idle_beats = 0
                            time.sleep(server.poll_s)
                            continue
                        idle_beats = 0
                        for event in events:
                            self.wfile.write(sse_frame(event))
                            sent += 1
                            if limit is not None and sent >= limit:
                                self.wfile.flush()
                                return
                        self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    pass  # consumer went away; the subscription closes below
                finally:
                    subscription.close()

        self.http = ThreadingHTTPServer((host, port), Handler)
        self.http.daemon_threads = True
        self._thread = threading.Thread(
            target=self.http.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-live-server",
            daemon=True,
        )

    @property
    def host(self) -> str:
        return self.http.server_address[0]

    @property
    def port(self) -> int:
        return self.http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LiveServer":
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and detach every log subscription."""
        self._closing.set()
        self.http.shutdown()
        self.http.server_close()
        self.telemetry.close()


def follow_trace_lines(
    path: str | Path,
    poll_s: float = 0.2,
    idle_timeout_s: float | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[str]:
    """Tail a growing JSONL trace incrementally (``trace tail --follow``).

    Yields complete lines as they are appended, resuming from the last
    byte offset on every poll instead of re-reading the file — O(new
    bytes), not O(file).  A partially-written line (no newline yet)
    stays buffered until its terminator lands, so a reader never sees
    half a JSON object.  Stops after ``idle_timeout_s`` with no growth
    (``None`` follows forever); a missing file counts as idle until it
    appears.
    """
    path = Path(path)
    offset = 0
    pending = ""
    idle = 0.0
    while True:
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            size = offset
        if size > offset:
            idle = 0.0
            with path.open("r") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            pending += chunk
            while "\n" in pending:
                line, pending = pending.split("\n", 1)
                if line.strip():
                    yield line
        else:
            if size < offset:
                # Truncated / rotated underneath us: start over.
                offset = 0
                pending = ""
                continue
            if idle_timeout_s is not None and idle >= idle_timeout_s:
                return
            idle += poll_s
            sleep(poll_s)


__all__ = [
    "DEFAULT_CAPACITY",
    "LiveServer",
    "LiveTelemetry",
    "follow_trace_lines",
    "sse_frame",
]
