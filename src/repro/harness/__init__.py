"""Experiment harness: runner, per-figure experiments, text reporting.

Per-figure entry points (``fig1_pipeline`` … ``fleet_serving``) live in
:mod:`repro.harness.experiments`; the ``python -m repro.harness.cli``
command regenerates any of them from a shell.
"""

from .reporting import format_series, format_table, ms, pct
from .runner import SYSTEMS, RunStats, create_engine, run_system, shared_model, shared_tokenizer

__all__ = [
    "SYSTEMS",
    "RunStats",
    "create_engine",
    "format_series",
    "format_table",
    "ms",
    "pct",
    "run_system",
    "shared_model",
    "shared_tokenizer",
]
