"""Plain-text rendering of tables and figure series.

The paper's artifacts are plots; offline we regenerate the underlying
numbers and render them as aligned text tables (one per table/figure)
so benches can print exactly the rows/series the paper reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    pairs = ", ".join(f"({_cell(x)}, {_cell(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def pct(value: float | None) -> str:
    """Format a ratio as a percentage string (``None`` — no samples — as "-")."""
    if value is None:
        return "-"
    return f"{100.0 * value:.1f}%"


def ms(seconds: float | None) -> str:
    """Format seconds as milliseconds (``None`` — no samples — as "-")."""
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.1f}ms"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
