"""One entry point per paper table/figure (DESIGN.md §4).

Every experiment returns a structured result object with a ``render()``
method producing the text-table equivalent of the paper's artifact.
Benchmarks under ``benchmarks/`` call these entry points; tests assert
the *shapes* the paper reports (who wins, by roughly what factor, where
crossovers fall).

Workload sizes are parameters so tests can run scaled-down versions
while the benches run closer to paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..apps.agent_memory import AgentMemoryApp, AgentRunResult
from ..apps.long_context import LongContextApp, LongContextRunResult
from ..apps.long_context import generate_tasks as generate_lcs_tasks
from ..apps.rag import RagPipeline, RagRunResult
from ..core.api import DeviceServer, FleetServer, SelectionRequest, serve_all
from ..core.clustering import cluster_scores
from ..core.config import PrismConfig
from ..core.fleet import FleetConfig, FleetService
from ..core.resilience import (
    FAULT_REPLICA_CRASH,
    AutoscalerConfig,
    FaultEvent,
    FaultPlan,
    ResilienceConfig,
)
from ..core.scheduler import LANE_BATCH, LANE_INTERACTIVE
from ..core.service import SemanticSelectionService
from ..core.metrics import cluster_gamma, goodman_kruskal_gamma, precision_at_k
from ..data.datasets import ALL_DATASETS, get_dataset
from ..device.memory import TimelinePoint
from ..model.zoo import (
    BGE_M3,
    BGE_MINICPM,
    PAPER_MODELS,
    QWEN3_0_6B,
    ModelConfig,
    get_model_config,
)
from ..data.workloads import build_batch
from ..device.platforms import get_profile
from ..retrieval.corpus import SyntheticCorpus
from .reporting import format_series, format_table, ms, pct
from .runner import RunStats, run_system, shared_model, shared_tokenizer

#: Figure 8's seven compared configurations, in plot order.
FIG8_SYSTEMS = (
    "hf",
    "hf_offload",
    "hf_quant",
    "prism_low",
    "prism_high",
    "prism_quant_low",
    "prism_quant_high",
)


def _threshold(model: ModelConfig, level: str) -> float:
    """Low/high dispersion thresholds from the model's sweep range."""
    lo, hi = model.threshold_range
    if level == "low":
        return lo + 0.15 * (hi - lo)
    if level == "high":
        return lo + 0.70 * (hi - lo)
    raise ValueError(f"unknown threshold level {level!r}")


def _run_fig8_system(
    name: str,
    model: ModelConfig,
    platform: str,
    queries,
    k: int,
) -> RunStats:
    """Run one of the seven Figure 8 configurations."""
    if name in ("hf", "hf_offload", "hf_quant"):
        return run_system(name, model, platform, queries, k)
    base, level = name.rsplit("_", 1)
    system = "prism" if base == "prism" else "prism_quant"
    return run_system(system, model, platform, queries, k, threshold=_threshold(model, level))


# ----------------------------------------------------------------------
# Figure 1 — pipeline cost breakdown
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """Per-stage cost of the semantic file-search pipeline."""

    platform: str
    retrieval_seconds: float
    retrieval_mib: float
    rerank_seconds: float
    rerank_peak_mib: float
    rerank_latency_share: float
    rerank_memory_share: float

    def render(self) -> str:
        rows = [
            ("retrieval", ms(self.retrieval_seconds), f"{self.retrieval_mib:.0f}"),
            ("rerank", ms(self.rerank_seconds), f"{self.rerank_peak_mib:.0f}"),
        ]
        table = format_table(
            ("stage", "latency", "peak MiB"),
            rows,
            title=f"Figure 1 — pipeline cost on {self.platform}",
        )
        return (
            table
            + f"\nrerank share: {pct(self.rerank_latency_share)} latency, "
            + f"{pct(self.rerank_memory_share)} memory"
        )


def fig1_pipeline(
    platform: str = "apple_m2",
    num_docs: int = 200,
    num_queries: int = 3,
    k: int = 5,
) -> Fig1Result:
    """Reproduce Figure 1: the reranker dominates the pipeline.

    The paper reports 8 ms / 50 MiB for retrieval against 5,754 ms /
    1,184 MiB for a vanilla top-5-of-20 rerank on a Mac Mini, i.e. the
    reranker contributes 96.3 % of latency and 67.6 % of memory.
    """
    corpus = SyntheticCorpus(num_docs=num_docs, num_topics=max(4, num_docs // 10))
    pipeline = RagPipeline(corpus, QWEN3_0_6B, platform, system="hf", k=k)
    result = pipeline.run(corpus.make_queries(num_queries))
    stages = result.stage_means()
    retrieval = stages["sparse"] + stages["dense"]
    rerank = stages["rerank"]
    # Memory shares mirror the paper's split: retrieval structures vs
    # reranker weights+tensors at their respective peaks.
    from ..apps.rag import RETRIEVAL_ACTIVATIONS_BYTES

    retrieval_mib = (
        pipeline.retriever.bm25.index_bytes()
        + pipeline.retriever.vector_index.memory_bytes()
        + RETRIEVAL_ACTIVATIONS_BYTES
    ) / (1024 * 1024)
    total_latency = retrieval + rerank
    return Fig1Result(
        platform=platform,
        retrieval_seconds=retrieval,
        retrieval_mib=retrieval_mib,
        rerank_seconds=rerank,
        rerank_peak_mib=result.peak_mib,
        rerank_latency_share=rerank / total_latency if total_latency else 0.0,
        rerank_memory_share=result.peak_mib / (result.peak_mib + retrieval_mib)
        if result.peak_mib
        else 0.0,
    )


# ----------------------------------------------------------------------
# Figure 2 — sequence-level sparsity
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Score trajectories and γ statistics across layers."""

    model: str
    layers: list[int]
    trajectories: np.ndarray  # (num_candidates, num_layers)
    gamma: list[float]
    cluster_gamma_values: list[float]

    def render(self) -> str:
        lines = [f"Figure 2 — sequence-level sparsity ({self.model})"]
        lines.append(format_series("gamma", self.layers, self.gamma))
        lines.append(format_series("cluster_gamma", self.layers, self.cluster_gamma_values))
        return "\n".join(lines)


def fig2_sparsity(
    model_name: str = "bge-reranker-v2-minicpm",
    dataset: str = "wikipedia",
    num_candidates: int = 20,
    num_queries: int = 4,
) -> Fig2Result:
    """Reproduce Figure 2: γ rises with depth; cluster-γ stays ≈ 1."""
    model = get_model_config(model_name)
    spec = get_dataset(dataset)
    queries = spec.queries(num_queries, num_candidates=num_candidates)

    from ..model.transformer import CrossEncoderModel

    dynamics = CrossEncoderModel(model).dynamics
    num_layers = model.num_layers

    gammas = np.zeros(num_layers)
    cgammas = np.zeros(num_layers)
    trajectories: np.ndarray | None = None
    for query in queries:
        rel = query.relevance()
        uids = query.uids()
        final = dynamics.final_scores(rel, uids)
        per_layer = np.stack(
            [dynamics.scores_at(layer, rel, uids) for layer in range(num_layers)]
        )
        if trajectories is None:
            trajectories = per_layer.T  # (candidates, layers)
        for layer in range(num_layers):
            scores = per_layer[layer]
            gammas[layer] += goodman_kruskal_gamma(scores, final)
            clustering = cluster_scores(scores)
            cgammas[layer] += cluster_gamma(scores, final, clustering.labels)
    gammas /= num_queries
    cgammas /= num_queries
    assert trajectories is not None
    return Fig2Result(
        model=model_name,
        layers=list(range(num_layers)),
        trajectories=trajectories,
        gamma=gammas.tolist(),
        cluster_gamma_values=cgammas.tolist(),
    )


# ----------------------------------------------------------------------
# Table 3 — latency/precision summary
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    """One (model, comparison, K) summary row."""

    model: str
    system: str
    baseline: str
    k: int
    reduction_min: float
    reduction_max: float
    reduction_mean: float
    precision_loss_mean: float
    precision_loss_max: float
    baseline_oom: bool = False


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)

    def find(self, model: str, baseline: str, k: int) -> Table3Row:
        for row in self.rows:
            if row.model == model and row.baseline == baseline and row.k == k:
                return row
        raise KeyError(f"no row for ({model}, {baseline}, {k})")

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            reduction = (
                "OOM"
                if row.baseline_oom
                else f"{pct(row.reduction_min)}–{pct(row.reduction_max)} ({pct(row.reduction_mean)})"
            )
            table_rows.append(
                (
                    row.model,
                    f"{row.system} vs {row.baseline}",
                    f"P@{row.k}",
                    reduction,
                    f"{row.precision_loss_mean:+.3f} / {row.precision_loss_max:+.3f}",
                )
            )
        return format_table(
            ("model", "comparison", "K", "latency reduction (mean)", "prec Δ mean/max"),
            table_rows,
            title="Table 3 — latency & precision summary",
        )


def table3(
    models: tuple[str, ...] = tuple(m.name for m in PAPER_MODELS),
    datasets: tuple[str, ...] = ALL_DATASETS,
    platforms: tuple[str, ...] = ("nvidia_5070", "apple_m2"),
    ks: tuple[int, ...] = (1, 5, 10),
    num_queries: int = 2,
    num_candidates: int = 20,
) -> Table3Result:
    """Reproduce Table 3: PRISM vs HF / HF-Offload, PRISM-Quant vs HF-Quant.

    For each (model, K), latency reductions are collected across
    (dataset × platform) cells; the row reports min–max (mean) reduction
    and the mean/max precision delta (positive = PRISM better).
    """
    result = Table3Result()
    for model_name in models:
        model = get_model_config(model_name)
        for k in ks:
            cells: dict[str, list[tuple[float, float]]] = {
                "hf": [],
                "hf_offload": [],
                "hf_quant": [],
            }
            oom: dict[str, bool] = {"hf": False, "hf_offload": False, "hf_quant": False}
            for dataset in datasets:
                queries = get_dataset(dataset).queries(num_queries, num_candidates)
                for platform in platforms:
                    prism = run_system("prism", model, platform, queries, k)
                    prism_quant = run_system("prism_quant", model, platform, queries, k)
                    for baseline_name, ours in (
                        ("hf", prism),
                        ("hf_offload", prism),
                        ("hf_quant", prism_quant),
                    ):
                        base = run_system(baseline_name, model, platform, queries, k)
                        if base.oom:
                            oom[baseline_name] = True
                            continue
                        reduction = 1.0 - ours.mean_latency / base.mean_latency
                        delta = ours.mean_precision - base.mean_precision
                        cells[baseline_name].append((reduction, delta))
            for baseline_name, pairs in cells.items():
                system = "prism_quant" if baseline_name == "hf_quant" else "prism"
                if not pairs:
                    result.rows.append(
                        Table3Row(
                            model=model_name,
                            system=system,
                            baseline=baseline_name,
                            k=k,
                            reduction_min=float("nan"),
                            reduction_max=float("nan"),
                            reduction_mean=float("nan"),
                            precision_loss_mean=float("nan"),
                            precision_loss_max=float("nan"),
                            baseline_oom=True,
                        )
                    )
                    continue
                reductions = np.array([p[0] for p in pairs])
                deltas = np.array([p[1] for p in pairs])
                result.rows.append(
                    Table3Row(
                        model=model_name,
                        system=system,
                        baseline=baseline_name,
                        k=k,
                        reduction_min=float(reductions.min()),
                        reduction_max=float(reductions.max()),
                        reduction_mean=float(reductions.mean()),
                        precision_loss_mean=float(deltas.mean()),
                        precision_loss_max=float(deltas.min()),
                        baseline_oom=oom[baseline_name],
                    )
                )
    return result


# ----------------------------------------------------------------------
# Figure 8 — Wikipedia detail
# ----------------------------------------------------------------------
@dataclass
class Fig8Cell:
    system: str
    model: str
    platform: str
    k: int
    latency: float
    precision: float
    oom: bool


@dataclass
class Fig8Result:
    cells: list[Fig8Cell] = field(default_factory=list)

    def find(self, system: str, model: str, platform: str, k: int) -> Fig8Cell:
        for cell in self.cells:
            if (
                cell.system == system
                and cell.model == model
                and cell.platform == platform
                and cell.k == k
            ):
                return cell
        raise KeyError(f"no cell ({system}, {model}, {platform}, K={k})")

    def render(self) -> str:
        rows = [
            (
                c.model,
                c.platform,
                f"P@{c.k}",
                c.system,
                "OOM" if c.oom else ms(c.latency),
                "-" if c.oom else f"{c.precision:.3f}",
            )
            for c in self.cells
        ]
        return format_table(
            ("model", "platform", "K", "system", "latency", "precision"),
            rows,
            title="Figure 8 — Wikipedia dataset detail",
        )


def fig8_wikipedia(
    models: tuple[str, ...] = tuple(m.name for m in PAPER_MODELS),
    platforms: tuple[str, ...] = ("nvidia_5070", "apple_m2"),
    ks: tuple[int, ...] = (1, 5, 10),
    num_queries: int = 3,
    num_candidates: int = 20,
) -> Fig8Result:
    """Reproduce Figure 8: seven systems on the Wikipedia dataset."""
    result = Fig8Result()
    queries = get_dataset("wikipedia").queries(num_queries, num_candidates)
    for model_name in models:
        model = get_model_config(model_name)
        for platform in platforms:
            for k in ks:
                for system in FIG8_SYSTEMS:
                    stats = _run_fig8_system(system, model, platform, queries, k)
                    result.cells.append(
                        Fig8Cell(
                            system=system,
                            model=model_name,
                            platform=platform,
                            k=k,
                            latency=stats.mean_latency,
                            precision=stats.mean_precision,
                            oom=stats.oom,
                        )
                    )
    return result


# ----------------------------------------------------------------------
# Figure 9 — memory footprint
# ----------------------------------------------------------------------
@dataclass
class Fig9Row:
    model: str
    system: str
    platform: str
    peak_mib: float
    avg_mib: float
    oom_on_edge: bool
    timeline: list[TimelinePoint] = field(default_factory=list)


@dataclass
class Fig9Result:
    rows: list[Fig9Row] = field(default_factory=list)

    def find(self, model: str, system: str) -> Fig9Row:
        for row in self.rows:
            if row.model == model and row.system == system:
                return row
        raise KeyError(f"no row ({model}, {system})")

    def peak_ratio(self, model: str, baseline: str) -> float:
        """baseline peak / PRISM peak (the paper's reduction factor)."""
        prism = self.find(model, "prism")
        base = self.find(model, baseline)
        return base.peak_mib / prism.peak_mib

    def render(self) -> str:
        rows = []
        for row in self.rows:
            note = " (A800)" if row.oom_on_edge else ""
            rows.append(
                (row.model, row.system + note, f"{row.peak_mib:.0f}", f"{row.avg_mib:.0f}")
            )
        return format_table(
            ("model", "system", "peak MiB", "avg MiB"),
            rows,
            title="Figure 9 — memory footprint (top-10 of 20, len 500)",
        )


def fig9_memory(
    models: tuple[str, ...] = tuple(m.name for m in PAPER_MODELS),
    platform: str = "nvidia_5070",
    num_queries: int = 1,
    num_candidates: int = 20,
    k: int = 10,
) -> Fig9Result:
    """Reproduce Figure 9: memory timelines, with the paper's A800
    fallback for configurations that OOM on the edge device."""
    result = Fig9Result()
    queries = get_dataset("wikipedia").queries(num_queries, num_candidates)
    for model_name in models:
        model = get_model_config(model_name)
        for system in ("hf", "hf_quant", "hf_offload", "prism"):
            stats = run_system(
                system, model, platform, queries, k, keep_timeline=True
            )
            oom_on_edge = stats.oom
            if oom_on_edge:
                stats = run_system(
                    system, model, "nvidia_a800", queries, k, keep_timeline=True
                )
            result.rows.append(
                Fig9Row(
                    model=model_name,
                    system=system,
                    platform=platform if not oom_on_edge else "nvidia_a800",
                    peak_mib=stats.peak_mib,
                    avg_mib=stats.avg_mib,
                    oom_on_edge=oom_on_edge,
                    timeline=stats.timeline,
                )
            )
    return result


# ----------------------------------------------------------------------
# Figure 10 — latency/precision trade-off
# ----------------------------------------------------------------------
@dataclass
class Fig10Point:
    threshold: float
    latency: float
    precision: dict[int, float]


@dataclass
class Fig10Result:
    model: str
    points: list[Fig10Point] = field(default_factory=list)

    def latencies(self) -> list[float]:
        return [p.latency for p in self.points]

    def precisions(self, k: int) -> list[float]:
        return [p.precision[k] for p in self.points]

    def render(self) -> str:
        rows = [
            (
                f"{p.threshold:.2f}",
                ms(p.latency),
                *(f"{p.precision[k]:.3f}" for k in sorted(p.precision)),
            )
            for p in self.points
        ]
        ks = sorted(self.points[0].precision) if self.points else []
        return format_table(
            ("threshold", "latency", *(f"P@{k}" for k in ks)),
            rows,
            title=f"Figure 10 — threshold sweep ({self.model})",
        )


def fig10_tradeoff(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    num_thresholds: int = 5,
    ks: tuple[int, ...] = (1, 5, 10),
    num_queries: int = 3,
    num_candidates: int = 20,
    dataset: str = "wikipedia",
) -> Fig10Result:
    """Reproduce Figure 10: precision rises and latency grows with the
    dispersion threshold."""
    model = get_model_config(model_name)
    queries = get_dataset(dataset).queries(num_queries, num_candidates)
    lo, hi = model.threshold_range
    thresholds = np.linspace(lo, hi, num_thresholds)
    result = Fig10Result(model=model_name)
    for threshold in thresholds:
        precisions: dict[int, float] = {}
        latency = 0.0
        for k in ks:
            stats = run_system(
                "prism", model, platform, queries, k, threshold=float(threshold)
            )
            precisions[k] = stats.mean_precision
            if k == max(ks):
                latency = stats.mean_latency
        result.points.append(
            Fig10Point(threshold=float(threshold), latency=latency, precision=precisions)
        )
    return result


# ----------------------------------------------------------------------
# Figure 11 — RAG
# ----------------------------------------------------------------------
@dataclass
class Fig11Result:
    runs: dict[str, dict[str, RagRunResult]] = field(default_factory=dict)
    # runs[platform][system]

    def render(self) -> str:
        rows = []
        for platform, by_system in self.runs.items():
            for system, run in by_system.items():
                stages = run.stage_means()
                rows.append(
                    (
                        platform,
                        system,
                        ms(run.mean_latency),
                        ms(stages["rerank"]),
                        f"{run.accuracy:.3f}",
                        f"{run.peak_mib:.0f}",
                        f"{run.avg_mib:.0f}",
                    )
                )
        return format_table(
            ("platform", "system", "latency", "rerank", "accuracy", "peak MiB", "avg MiB"),
            rows,
            title="Figure 11 — RAG pipeline",
        )


def fig11_rag(
    num_docs: int = 200,
    num_queries: int = 6,
    systems: tuple[str, ...] = ("hf", "prism"),
) -> Fig11Result:
    """Reproduce Figure 11: the RAG assistant on both platforms.

    Per the paper, the Apple platform uses Qwen3-Reranker-0.6B and the
    NVIDIA platform uses Bge-Reranker-v2-MiniCPM.
    """
    corpus = SyntheticCorpus(num_docs=num_docs, num_topics=max(4, num_docs // 10))
    queries = corpus.make_queries(num_queries)
    result = Fig11Result()
    for platform, model in (("apple_m2", QWEN3_0_6B), ("nvidia_5070", BGE_MINICPM)):
        result.runs[platform] = {}
        for system in systems:
            pipeline = RagPipeline(corpus, model, platform, system=system)
            result.runs[platform][system] = pipeline.run(queries, keep_timeline=True)
    return result


# ----------------------------------------------------------------------
# Figures 12 & 13 — agent memory
# ----------------------------------------------------------------------
@dataclass
class Fig12Result:
    runs: dict[str, dict[str, AgentRunResult]] = field(default_factory=dict)
    # runs[workload][system]

    def render(self) -> str:
        rows = []
        for workload, by_system in self.runs.items():
            for system, run in by_system.items():
                stages = run.stage_means()
                rows.append(
                    (
                        workload,
                        system,
                        f"{run.mean_latency:.1f}s",
                        f"{stages['env']:.1f}s",
                        f"{stages['inference']:.1f}s",
                        f"{stages['rerank']:.1f}s",
                        f"{run.success_rate:.3f}",
                        f"{run.peak_mib:.0f}",
                    )
                )
        return format_table(
            ("workload", "system", "latency", "env", "inference", "rerank", "success", "peak MiB"),
            rows,
            title="Figures 12 & 13 — agent memory",
        )


def fig12_13_agent_memory(
    workloads: tuple[str, ...] = ("video", "community"),
    systems: tuple[str, ...] = ("disable", "hf", "prism"),
    platform: str = "nvidia_5070",
    model_name: str = "qwen3-reranker-0.6b",
) -> Fig12Result:
    """Reproduce Figures 12/13: task latency, success rate, footprint."""
    model = get_model_config(model_name)
    result = Fig12Result()
    for workload in workloads:
        result.runs[workload] = {}
        for system in systems:
            app = AgentMemoryApp(model, platform, system=system)
            result.runs[workload][system] = app.run_workload(workload, keep_timeline=True)
    return result


# ----------------------------------------------------------------------
# Figures 14 & 15 — long-context selection
# ----------------------------------------------------------------------
@dataclass
class Fig14Result:
    runs: dict[str, LongContextRunResult] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            (
                system,
                f"{run.mean_latency:.1f}s",
                f"{run.mean_rerank_seconds:.1f}s",
                f"{run.mean_inference_seconds:.1f}s",
                f"{run.accuracy:.3f}",
                f"{run.peak_mib:.0f}",
            )
            for system, run in self.runs.items()
        ]
        return format_table(
            ("system", "latency", "rerank", "inference", "accuracy", "peak MiB"),
            rows,
            title="Figures 14 & 15 — long-context selection",
        )


def fig14_15_long_context(
    num_tasks: int = 12,
    systems: tuple[str, ...] = ("baseline", "hf", "prism"),
    platform: str = "nvidia_5070",
    model_name: str = "qwen3-reranker-0.6b",
) -> Fig14Result:
    """Reproduce Figures 14/15: three systems on LongBench-style tasks."""
    model = get_model_config(model_name)
    tasks = generate_lcs_tasks(num_tasks)
    result = Fig14Result()
    for system in systems:
        app = LongContextApp(model, platform, system=system)
        result.runs[system] = app.run(tasks, keep_timeline=True)
    return result


# ----------------------------------------------------------------------
# Figure 16 — ablation
# ----------------------------------------------------------------------
#: Ablation steps in the paper's order (Figure 16).
ABLATION_STEPS = (
    "hf",
    "+pruning",
    "+chunked",
    "+streaming",
    "+embedding-cache",
)


@dataclass
class Fig16Row:
    step: str
    latency: float
    peak_mib: float
    io_stall_seconds: float


@dataclass
class Fig16Result:
    rows: list[Fig16Row] = field(default_factory=list)

    def find(self, step: str) -> Fig16Row:
        for row in self.rows:
            if row.step == step:
                return row
        raise KeyError(f"no ablation step {step!r}")

    def render(self) -> str:
        rows = [
            (row.step, ms(row.latency), f"{row.peak_mib:.0f}", ms(row.io_stall_seconds))
            for row in self.rows
        ]
        return format_table(
            ("configuration", "latency", "peak MiB", "I/O stall"),
            rows,
            title="Figure 16 — incremental ablation (60 cand × len 500)",
        )


def fig16_ablation(
    platform: str = "nvidia_5070",
    model_name: str = "qwen3-reranker-0.6b",
    num_candidates: int = 60,
    doc_length: int = 500,
    k: int = 10,
    threshold: float = 0.12,
) -> Fig16Result:
    """Reproduce Figure 16: apply the four techniques incrementally.

    Expected shape: pruning alone cuts latency but *inflates* peak
    memory (the monolithic batch); chunking reclaims the inflation;
    streaming removes the weight block at a small latency cost; the
    embedding cache removes the final big block.
    """
    model = get_model_config(model_name)
    spec = replace(
        get_dataset("wikipedia"), doc_length_mean=doc_length
    )
    queries = spec.queries(1, num_candidates=num_candidates)

    # The ablation runs at the paper's tuned (aggressive) operating
    # point so pruning's latency contribution is fully visible.
    configs: list[tuple[str, str, PrismConfig | None]] = [
        ("hf", "hf", None),
        ("+pruning", "prism", PrismConfig.ablation_pruning_only().with_threshold(threshold)),
        ("+chunked", "prism", PrismConfig.ablation_chunked().with_threshold(threshold)),
        ("+streaming", "prism", PrismConfig.ablation_streaming().with_threshold(threshold)),
        ("+embedding-cache", "prism", PrismConfig.full().with_threshold(threshold)),
    ]
    result = Fig16Result()
    for step, system, config in configs:
        stats = run_system(
            system, model, platform, queries, k, prism_config=config, keep_timeline=True
        )
        result.rows.append(
            Fig16Row(
                step=step,
                latency=stats.mean_latency,
                peak_mib=stats.peak_mib,
                io_stall_seconds=stats.io_stall_seconds,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — overlap-window sensitivity (§3.2's premise boundary)
# ----------------------------------------------------------------------
@dataclass
class OverlapWindowPoint:
    ssd_bandwidth_gbps: float
    latency: float
    io_stall_seconds: float
    peak_mib: float


@dataclass
class OverlapWindowResult:
    """PRISM latency/stall as a function of storage bandwidth."""

    model: str
    platform: str
    hf_latency: float
    points: list[OverlapWindowPoint] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            (
                f"{p.ssd_bandwidth_gbps:.1f} GB/s",
                ms(p.latency),
                ms(p.io_stall_seconds),
                f"{p.peak_mib:.0f}",
            )
            for p in self.points
        ]
        table = format_table(
            ("SSD bandwidth", "PRISM latency", "I/O stall", "peak MiB"),
            rows,
            title=f"Overlap-window sweep ({self.model}, {self.platform})",
        )
        return table + f"\nin-memory HF reference: {ms(self.hf_latency)}"


# ----------------------------------------------------------------------
# Extension — fleet serving (DESIGN.md §5)
# ----------------------------------------------------------------------
@dataclass
class FleetPoint:
    """One fleet configuration's serving outcome."""

    num_replicas: int
    routing: str
    max_batch: int
    throughput_rps: float
    speedup: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_precision: float
    mean_utilisation: float
    max_queue_depth: int


@dataclass
class FleetResult:
    """Throughput/latency scaling of the fleet layer vs. replica count."""

    model: str
    platform: str
    num_requests: int
    k: int
    points: list[FleetPoint] = field(default_factory=list)

    def find(self, num_replicas: int, routing: str | None = None) -> FleetPoint:
        for point in self.points:
            if point.num_replicas == num_replicas and (
                routing is None or point.routing == routing
            ):
                return point
        raise KeyError(f"no fleet point ({num_replicas} replicas, {routing!r})")

    def render(self) -> str:
        rows = [
            (
                point.num_replicas,
                point.routing,
                point.max_batch,
                f"{point.throughput_rps:.2f}/s",
                f"{point.speedup:.2f}x",
                ms(point.p50_latency),
                ms(point.p95_latency),
                ms(point.p99_latency),
                f"{point.mean_precision:.3f}",
                pct(point.mean_utilisation),
                point.max_queue_depth,
            )
            for point in self.points
        ]
        return format_table(
            (
                "replicas",
                "routing",
                "batch",
                "throughput",
                "speedup",
                "p50",
                "p95",
                "p99",
                f"P@{self.k}",
                "mean util",
                "max queue",
            ),
            rows,
            title=f"Fleet serving scaling ({self.model}, {self.platform}, "
            f"{self.num_requests} requests)",
        )


def fleet_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    replica_counts: tuple[int, ...] = (1, 2, 4),
    routing: str = "least_loaded",
    max_batch: int = 4,
    max_wait_ms: float = 20.0,
    num_requests: int = 24,
    num_candidates: int = 20,
    k: int = 10,
    dataset: str = "wikipedia",
    arrival_interval_ms: float = 0.0,
    dispatch_overhead_ms: float = 2.0,
) -> FleetResult:
    """Fleet-layer scaling study: throughput vs. replica count.

    A burst (or open-loop stream, via ``arrival_interval_ms``) of
    requests is replayed through fleets of increasing size under the
    same batching and routing configuration.  Speedup is simulated
    throughput relative to the first (baseline) replica count; served
    results are deterministic, so precision stays identical across
    fleet sizes — scaling is free of quality drift by construction.
    """
    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    profile = get_profile(platform)
    queries = get_dataset(dataset).queries(num_requests, num_candidates)
    batches = [build_batch(q, tokenizer, model_config.max_seq_len) for q in queries]

    result = FleetResult(
        model=model_name, platform=platform, num_requests=num_requests, k=k
    )
    baseline_throughput: float | None = None
    for num_replicas in replica_counts:
        fleet = FleetService.homogeneous(
            model,
            profile,
            num_replicas,
            fleet_config=FleetConfig(
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                routing=routing,
                dispatch_overhead_ms=dispatch_overhead_ms,
            ),
            config=PrismConfig(numerics=False),
        )
        server = FleetServer(fleet)
        responses = serve_all(
            server,
            [
                SelectionRequest(
                    batch=batch,
                    k=k,
                    request_id=index,
                    arrival=index * arrival_interval_ms * 1e-3,
                )
                for index, batch in enumerate(batches)
            ],
        )
        by_id = {response.request_id: response for response in responses}
        stats = fleet.stats()
        precision = float(
            np.mean(
                [
                    precision_at_k(by_id[i].result.top_indices, query.labels(), k)
                    for i, query in enumerate(queries)
                ]
            )
        )
        if baseline_throughput is None:
            baseline_throughput = stats.throughput_rps
        result.points.append(
            FleetPoint(
                num_replicas=num_replicas,
                routing=routing,
                max_batch=max_batch,
                throughput_rps=stats.throughput_rps,
                speedup=stats.throughput_rps / baseline_throughput,
                p50_latency=stats.p50_latency,
                p95_latency=stats.p95_latency,
                p99_latency=stats.p99_latency,
                mean_precision=precision,
                mean_utilisation=float(np.mean(list(stats.utilisation.values()))),
                max_queue_depth=stats.max_queue_depth,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — concurrent serving on one device (DESIGN.md §6)
# ----------------------------------------------------------------------
@dataclass
class ConcurrentPoint:
    """One scheduling policy's outcome on the mixed workload."""

    policy: str
    interactive_p50: float
    interactive_p99: float
    batch_p50: float
    batch_p99: float
    mean_interactive_wait: float
    preempted_requests: int
    makespan: float
    throughput_rps: float
    #: Mean size of back-to-back same-layer step groups (DESIGN.md §7);
    #: 1.0 for run-to-completion schedules, ~N for a fused gang of N.
    fused_occupancy: float = 1.0
    #: Redundant SSD weight bytes the shared plane avoided reading
    #: (0 when the policy serves from per-request streamers).
    ssd_saved_bytes: int = 0


@dataclass
class ConcurrentServingResult:
    """FIFO vs round-robin vs priority lanes on one shared device.

    ``selections_identical`` certifies that scheduling moved only
    *completion times*: every request's top-K selection is identical
    across all compared policies (and, by the determinism of the score
    process, identical to solo execution — asserted in tests).
    """

    model: str
    platform: str
    num_interactive: int
    num_batch: int
    interactive_k: int
    batch_k: int
    max_concurrency: int
    points: list[ConcurrentPoint] = field(default_factory=list)
    selections_identical: bool = True

    def find(self, policy: str) -> ConcurrentPoint:
        for point in self.points:
            if point.policy == policy:
                return point
        raise KeyError(f"no concurrent-serving point for policy {policy!r}")

    def render(self) -> str:
        rows = [
            (
                point.policy,
                ms(point.interactive_p50),
                ms(point.interactive_p99),
                ms(point.batch_p50),
                ms(point.batch_p99),
                ms(point.mean_interactive_wait),
                point.preempted_requests,
                ms(point.makespan),
                f"{point.throughput_rps:.2f}/s",
                f"{point.fused_occupancy:.2f}",
                f"{point.ssd_saved_bytes / 2**20:.0f}MiB",
            )
            for point in self.points
        ]
        table = format_table(
            (
                "policy",
                "int p50",
                "int p99",
                "batch p50",
                "batch p99",
                "int wait",
                "preempted",
                "makespan",
                "throughput",
                "fused occ",
                "ssd saved",
            ),
            rows,
            title=(
                f"Concurrent serving on one device ({self.model}, {self.platform}, "
                f"{self.num_interactive} interactive + {self.num_batch} batch, "
                f"concurrency {self.max_concurrency})"
            ),
        )
        verdict = "yes" if self.selections_identical else "NO"
        return table + f"\nselections identical across policies: {verdict}"


def concurrent_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    policies: tuple[str, ...] = ("fifo", "round_robin", "priority", "fusion"),
    num_interactive: int = 8,
    num_batch: int = 4,
    interactive_candidates: int = 8,
    batch_candidates: int = 48,
    interactive_k: int = 3,
    batch_k: int = 10,
    interactive_interval_ms: float = 250.0,
    max_concurrency: int = 6,
    quantum_layers: int = 1,
    dataset: str = "wikipedia",
) -> ConcurrentServingResult:
    """Mixed interactive/batch traffic on one device, per policy.

    The batch lane submits ``num_batch`` heavy requests at t=0; the
    interactive lane trickles ``num_interactive`` light requests in at
    ``interactive_interval_ms`` spacing while the device is busy.  The
    same workload replays against each scheduling policy on a fresh
    service, so policies differ *only* in how layer steps interleave:
    priority lanes should collapse interactive tail latency while total
    throughput stays put (the work is identical, merely reordered).
    The ``fusion`` policy serves from the shared weight plane
    (DESIGN.md §7), so its point also reports how many redundant SSD
    bytes the plane saved and how full its fused groups ran.
    """
    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    spec = get_dataset(dataset)
    batch_requests = [
        build_batch(q, tokenizer, model_config.max_seq_len)
        for q in spec.queries(num_batch, batch_candidates)
    ]
    interactive_requests = [
        build_batch(q, tokenizer, model_config.max_seq_len)
        for q in spec.queries(num_interactive, interactive_candidates)
    ]

    wave: list[SelectionRequest] = [
        SelectionRequest(
            batch=batch, k=batch_k, request_id=index, priority=LANE_BATCH, arrival=0.0
        )
        for index, batch in enumerate(batch_requests)
    ]
    for index, batch in enumerate(interactive_requests):
        wave.append(
            SelectionRequest(
                batch=batch,
                k=interactive_k,
                request_id=num_batch + index,
                priority=LANE_INTERACTIVE,
                arrival=index * interactive_interval_ms * 1e-3,
            )
        )

    result = ConcurrentServingResult(
        model=model_name,
        platform=platform,
        num_interactive=num_interactive,
        num_batch=num_batch,
        interactive_k=interactive_k,
        batch_k=batch_k,
        max_concurrency=max_concurrency,
    )
    reference_selections: list[tuple] | None = None
    for policy in policies:
        service = SemanticSelectionService(
            model,
            get_profile(platform),
            config=PrismConfig(numerics=False),
            max_concurrency=max_concurrency,
            shared_weights=policy == "fusion",
        )
        responses = serve_all(
            DeviceServer(service, policy=policy, quantum_layers=quantum_layers), wave
        )
        selections = [
            tuple(response.result.top_indices.tolist())
            for response in sorted(responses, key=lambda r: r.request_id)
        ]
        if reference_selections is None:
            reference_selections = selections
        elif selections != reference_selections:
            result.selections_identical = False

        stats = service.last_scheduler.stats()
        plane = service.engine.weight_plane
        result.points.append(
            ConcurrentPoint(
                policy=policy,
                interactive_p50=stats.latency_percentile(50, LANE_INTERACTIVE),
                interactive_p99=stats.latency_percentile(99, LANE_INTERACTIVE),
                batch_p50=stats.latency_percentile(50, LANE_BATCH),
                batch_p99=stats.latency_percentile(99, LANE_BATCH),
                mean_interactive_wait=stats.mean_queue_wait(LANE_INTERACTIVE),
                preempted_requests=sum(1 for o in stats.outcomes if o.preempted),
                makespan=stats.makespan,
                throughput_rps=stats.throughput_rps,
                fused_occupancy=service.last_scheduler.mean_fused_occupancy,
                ssd_saved_bytes=plane.stats.saved_bytes if plane is not None else 0,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — shared weight plane + layer fusion (DESIGN.md §7)
# ----------------------------------------------------------------------
@dataclass
class SharedWeightsPoint:
    """One serving mode's outcome on the same-model burst."""

    mode: str
    policy: str
    shared: bool
    throughput_rps: float
    speedup: float
    p50_latency: float
    p99_latency: float
    makespan: float
    weight_bytes: int  # SSD layer-weight bytes read during the wave
    bytes_vs_solo: float  # weight_bytes / deepest solo pass
    saved_bytes: int  # redundant bytes the plane avoided
    fused_occupancy: float


@dataclass
class SharedWeightsResult:
    """Private streamers vs the shared weight plane under concurrency.

    ``solo_weight_bytes`` is the SSD weight traffic of the *deepest*
    request served alone — the floor a perfectly fused sweep can reach.
    ``selections_identical`` certifies the plane and the fusion policy
    moved only completion times and SSD traffic, never selections.
    """

    model: str
    platform: str
    num_requests: int
    num_candidates: int
    k: int
    solo_weight_bytes: int = 0
    points: list[SharedWeightsPoint] = field(default_factory=list)
    selections_identical: bool = True

    def find(self, mode: str) -> SharedWeightsPoint:
        for point in self.points:
            if point.mode == mode:
                return point
        raise KeyError(f"no shared-weights point for mode {mode!r}")

    def render(self) -> str:
        rows = [
            (
                point.mode,
                point.policy,
                "plane" if point.shared else "private",
                f"{point.throughput_rps:.2f}/s",
                f"{point.speedup:.2f}x",
                ms(point.p50_latency),
                ms(point.p99_latency),
                ms(point.makespan),
                f"{point.weight_bytes / 2**20:.0f}MiB",
                f"{point.bytes_vs_solo:.2f}x",
                f"{point.saved_bytes / 2**20:.0f}MiB",
                f"{point.fused_occupancy:.2f}",
            )
            for point in self.points
        ]
        table = format_table(
            (
                "mode",
                "policy",
                "weights",
                "throughput",
                "speedup",
                "p50",
                "p99",
                "makespan",
                "ssd read",
                "vs solo",
                "ssd saved",
                "fused occ",
            ),
            rows,
            title=(
                f"Shared weight plane ({self.model}, {self.platform}, "
                f"{self.num_requests} concurrent requests x {self.num_candidates} "
                f"candidates, solo sweep {self.solo_weight_bytes / 2**20:.0f}MiB)"
            ),
        )
        verdict = "yes" if self.selections_identical else "NO"
        return table + f"\nselections identical across modes: {verdict}"


def _layer_weight_bytes(service: SemanticSelectionService, mark: int) -> int:
    """SSD layer-weight bytes read since request-log position ``mark``."""
    log = service.device.ssd.request_log
    return sum(
        request.nbytes
        for request in log[mark:]
        if request.kind == "read" and "load/" in request.tag and "/layer" in request.tag
    )


def shared_weights_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    num_requests: int = 4,
    num_candidates: int = 6,
    k: int = 3,
    dataset: str = "quora",
    modes: tuple[tuple[str, str, bool], ...] = (
        ("fifo", "fifo", False),
        ("round_robin", "round_robin", False),
        ("rr+plane", "round_robin", True),
        ("fusion", "fusion", True),
    ),
) -> SharedWeightsResult:
    """N same-model requests: private streamers vs the shared plane.

    Under per-request streamers (PR 2 behaviour) N concurrent requests
    read each layer's weights from the SSD N times and the serialized
    I/O stream becomes the bottleneck the paper worked to hide.  The
    shared weight plane (DESIGN.md §7) fetches each layer once per
    fused sweep; the ``fusion`` policy gang-steps the group so the
    attach window never closes.  The workload is deliberately
    SSD-bound (small candidate pools, short documents) — the regime
    where concurrency *multiplies* streaming cost without the plane.

    Each mode replays the identical burst on a fresh service; the solo
    baseline serves the same requests one at a time to measure the
    per-pass SSD floor.
    """
    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    queries = get_dataset(dataset).queries(num_requests, num_candidates)
    requests = [
        (build_batch(q, tokenizer, model_config.max_seq_len), k) for q in queries
    ]

    def make_service(shared: bool, max_concurrency: int) -> SemanticSelectionService:
        return SemanticSelectionService(
            model,
            get_profile(platform),
            config=PrismConfig(numerics=False),
            max_concurrency=max_concurrency,
            shared_weights=shared,
        )

    result = SharedWeightsResult(
        model=model_name,
        platform=platform,
        num_requests=num_requests,
        num_candidates=num_candidates,
        k=k,
    )

    # Solo floor: the deepest request's one-at-a-time weight traffic.
    solo = make_service(shared=False, max_concurrency=1)
    solo_server = DeviceServer(solo, policy="fifo")
    solo_bytes = []
    reference_selections = []
    for index, (batch, k_req) in enumerate(requests):
        mark = len(solo.device.ssd.request_log)
        solo_response = solo_server.submit(
            SelectionRequest(batch=batch, k=k_req, request_id=index, sample=False)
        ).result()
        solo_bytes.append(_layer_weight_bytes(solo, mark))
        reference_selections.append(tuple(solo_response.result.top_indices.tolist()))
    result.solo_weight_bytes = max(solo_bytes)

    baseline_throughput: float | None = None
    for mode, policy, shared in modes:
        service = make_service(shared=shared, max_concurrency=num_requests)
        mark = len(service.device.ssd.request_log)
        responses = serve_all(
            DeviceServer(service, policy=policy),
            [
                SelectionRequest(batch=batch, k=k_req, request_id=index)
                for index, (batch, k_req) in enumerate(requests)
            ],
        )
        selections = [
            tuple(response.result.top_indices.tolist())
            for response in sorted(responses, key=lambda r: r.request_id)
        ]
        if selections != reference_selections:
            result.selections_identical = False
        stats = service.last_scheduler.stats()
        if baseline_throughput is None:
            baseline_throughput = stats.throughput_rps
        weight_bytes = _layer_weight_bytes(service, mark)
        plane = service.engine.weight_plane
        result.points.append(
            SharedWeightsPoint(
                mode=mode,
                policy=policy,
                shared=shared,
                throughput_rps=stats.throughput_rps,
                speedup=stats.throughput_rps / baseline_throughput,
                p50_latency=stats.latency_percentile(50),
                p99_latency=stats.latency_percentile(99),
                makespan=stats.makespan,
                weight_bytes=weight_bytes,
                bytes_vs_solo=weight_bytes / result.solo_weight_bytes,
                saved_bytes=plane.stats.saved_bytes if plane is not None else 0,
                fused_occupancy=service.last_scheduler.mean_fused_occupancy,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — deadline-aware serving (DESIGN.md §8)
# ----------------------------------------------------------------------
@dataclass
class DeadlinePoint:
    """One admission-ordering mode's outcome on the overloaded burst."""

    mode: str  # "fifo" | "edf"
    completed: int
    shed: int
    deadlines_met: int
    hit_rate: float  # deadlines met / submitted
    p99_latency: float  # over completed requests
    makespan: float


@dataclass
class DeadlineServingResult:
    """Deadline hit-rate under overload: EDF vs FIFO admission.

    A burst of same-size requests arrives at t=0 with *decreasing*
    slack in submission order (the last-submitted request has the
    tightest deadline).  FIFO admission serves in submission order, so
    tight-deadline requests queue behind loose ones and miss (or are
    shed at admission once they can no longer start in time); EDF
    admission (``SchedulerConfig(edf=True)``) starts the tightest
    deadline first.  Selections never change — deadline ordering moves
    *when* requests run and which ones are shed, never what a served
    request computes.
    """

    model: str
    platform: str
    num_requests: int
    k: int
    probe_latency: float  # one request's solo service time (the unit of slack)
    points: list[DeadlinePoint] = field(default_factory=list)

    def find(self, mode: str) -> DeadlinePoint:
        for point in self.points:
            if point.mode == mode:
                return point
        raise KeyError(f"no deadline-serving point for mode {mode!r}")

    def render(self) -> str:
        rows = [
            (
                point.mode,
                point.completed,
                point.shed,
                point.deadlines_met,
                pct(point.hit_rate),
                ms(point.p99_latency),
                ms(point.makespan),
            )
            for point in self.points
        ]
        return format_table(
            ("admission", "completed", "shed", "met", "hit rate", "p99", "makespan"),
            rows,
            title=(
                f"Deadline-aware serving under overload ({self.model}, "
                f"{self.platform}, {self.num_requests} requests, "
                f"unit slack {ms(self.probe_latency)})"
            ),
        )


def deadline_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    num_requests: int = 12,
    num_candidates: int = 12,
    k: int = 5,
    slack_factor: float = 2.0,
    dataset: str = "wikipedia",
) -> DeadlineServingResult:
    """EDF vs FIFO admission under deadline overload (DESIGN.md §8).

    Request ``i`` of ``N`` (submission order) carries deadline
    ``slack_factor * (N - i)`` service units (the unit is one probe
    request's solo latency), so slack *decreases* with
    submission order.  Under FIFO the i-th request completes after
    ``i + 1`` units and the tail can no longer start in time — those
    requests are shed at admission, never reaching the engine.  EDF
    reorders admission to tightest-first, which meets every deadline in
    this geometry.  The gap between the two hit rates is the value of
    carrying deadlines *in* the request object, where the scheduler can
    see them.
    """
    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    queries = get_dataset(dataset).queries(num_requests, num_candidates)
    batches = [build_batch(q, tokenizer, model_config.max_seq_len) for q in queries]

    def make_service() -> SemanticSelectionService:
        return SemanticSelectionService(
            model,
            get_profile(platform),
            config=PrismConfig(numerics=False),
            max_concurrency=1,
        )

    # Probe: one request's solo service time is the slack unit.
    probe_service = make_service()
    probe = DeviceServer(probe_service).submit(
        SelectionRequest(batch=batches[0], k=k, sample=False)
    ).result()
    assert probe.result is not None
    probe_latency = probe.result.latency_seconds

    result = DeadlineServingResult(
        model=model_name,
        platform=platform,
        num_requests=num_requests,
        k=k,
        probe_latency=probe_latency,
    )
    for mode in ("fifo", "edf"):
        service = make_service()
        server = DeviceServer(service, policy="fifo", edf=(mode == "edf"))
        responses = serve_all(
            server,
            [
                SelectionRequest(
                    batch=batch,
                    k=k,
                    request_id=index,
                    arrival=0.0,
                    deadline=slack_factor * (num_requests - index) * probe_latency,
                    sample=False,
                )
                for index, batch in enumerate(batches)
            ],
        )
        completed = [r for r in responses if r.ok]
        met = [r for r in completed if r.deadline_met]
        latencies = sorted(r.e2e_seconds for r in completed)
        stats = service.last_scheduler.stats()
        result.points.append(
            DeadlinePoint(
                mode=mode,
                completed=len(completed),
                shed=sum(1 for r in responses if r.status == "shed"),
                deadlines_met=len(met),
                hit_rate=len(met) / num_requests,
                p99_latency=(
                    float(np.percentile(latencies, 99)) if latencies else float("nan")
                ),
                makespan=stats.makespan,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — resilience under faults (DESIGN.md §9)
# ----------------------------------------------------------------------
@dataclass
class ResiliencePoint:
    """One serving mode's outcome on the burst+crash scenario."""

    mode: str  # "fault_free" | "crash_failover" | "crash_autoscale"
    completed: int
    lost: int  # submitted − completed − failed: must always be 0
    failed: int  # dropped with reason "failed" (retries exhausted)
    failed_over: int  # completed requests that needed > 1 attempt
    max_attempts: int
    scale_ups: int
    peak_capacity: int
    throughput_rps: float
    recovery: float  # throughput / fault-free throughput
    p99_latency: float


@dataclass
class ResilienceResult:
    """Throughput under an injected replica crash: failover vs autoscaling.

    A near-saturating burst is replayed three times: fault-free (the
    reference), with a replica crash mid-burst and failover only (the
    fleet limps on at reduced capacity), and with the crash plus the
    queue-depth autoscaler (a replacement replica spawns once the
    queue backs up, paying its warm-up on the clock).  Every injected
    run must complete all requests — failover means *zero lost
    requests*, with the retries recorded as outcome provenance
    (``attempts``/``failed_over_from``).
    """

    model: str
    platform: str
    num_replicas: int
    num_requests: int
    k: int
    crash_at: float  # fleet-time instant replica 0 dies
    arrival_interval: float  # open-loop spacing (fleet saturation)
    points: list[ResiliencePoint] = field(default_factory=list)

    def find(self, mode: str) -> ResiliencePoint:
        for point in self.points:
            if point.mode == mode:
                return point
        raise KeyError(f"no resilience point for mode {mode!r}")

    def render(self) -> str:
        rows = [
            (
                point.mode,
                point.completed,
                point.lost,
                point.failed,
                point.failed_over,
                point.max_attempts,
                point.scale_ups,
                point.peak_capacity,
                f"{point.throughput_rps:.2f}/s",
                pct(point.recovery),
                ms(point.p99_latency),
            )
            for point in self.points
        ]
        return format_table(
            (
                "mode",
                "done",
                "lost",
                "failed",
                "failed over",
                "max att",
                "scale ups",
                "peak cap",
                "throughput",
                "recovery",
                "p99",
            ),
            rows,
            title=(
                f"Resilience under replica crash ({self.model}, {self.platform}, "
                f"{self.num_replicas} replicas, {self.num_requests} requests "
                f"every {ms(self.arrival_interval)}, crash at {ms(self.crash_at)})"
            ),
        )


def resilience_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    num_replicas: int = 2,
    num_requests: int = 24,
    num_candidates: int = 12,
    k: int = 5,
    crash_fraction: float = 0.3,
    dataset: str = "wikipedia",
) -> ResilienceResult:
    """Burst + replica-crash study (DESIGN.md §9).

    Requests arrive open-loop at the fleet's saturation rate (one
    probe-request service time divided by the replica count), so the
    healthy fleet keeps the queue near empty and the autoscaler has no
    reason to act *before* the crash — its scale-up is crash-driven,
    not burst-driven.  The crash instant is placed a fixed fraction
    into the fault-free makespan, so the same :class:`FaultPlan`
    stresses every mode at a comparable point of the stream.
    ``crash_failover`` uses a cooldown longer than the run (the
    replica never returns — the worst case); ``crash_autoscale`` adds
    the queue-depth controller, which spawns a replacement once the
    halved fleet lets the queue back up.  Selections are
    byte-identical across all three modes for every completed request
    — faults move *where and when* work runs, never what it computes.
    """
    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    profile = get_profile(platform)
    queries = get_dataset(dataset).queries(num_requests, num_candidates)
    batches = [build_batch(q, tokenizer, model_config.max_seq_len) for q in queries]

    # Probe: one request's solo service time sets the saturation rate.
    probe_service = SemanticSelectionService(
        model, profile, config=PrismConfig(numerics=False)
    )
    probe = DeviceServer(probe_service).submit(
        SelectionRequest(batch=batches[0], k=k, sample=False)
    ).result()
    assert probe.result is not None
    arrival_interval = probe.result.latency_seconds / num_replicas

    def run(mode: str, crash_at: float | None) -> tuple[ResiliencePoint, float]:
        plan = None
        autoscaler = None
        if crash_at is not None:
            plan = FaultPlan(
                [FaultEvent(FAULT_REPLICA_CRASH, at=crash_at, replica=0)]
            )
            if mode == "crash_autoscale":
                # Threshold 3 per routable replica: the saturated but
                # healthy fleet runs ~2 in-system requests per replica
                # (one batch in service, arrivals trickling in), so
                # only the post-crash pile-up trips the controller.
                autoscaler = AutoscalerConfig(
                    min_replicas=1,
                    max_replicas=num_replicas + 1,
                    scale_up_queue_depth=3,
                    warmup_s=0.05,
                    action_cooldown_s=0.1,
                )
        fleet = FleetService.homogeneous(
            model,
            profile,
            num_replicas,
            fleet_config=FleetConfig(max_batch=2, max_wait_ms=0.0),
            config=PrismConfig(numerics=False),
            fault_plan=plan,
            # The crashed replica never restarts inside the run: the
            # cooldown outlives any plausible makespan.
            resilience=ResilienceConfig(max_retries=2, cooldown_s=1e6),
            autoscaler=autoscaler,
        )
        for index, batch in enumerate(batches):
            fleet.submit_request(
                batch, k, at=index * arrival_interval, client_id=index
            )
        outcomes = fleet.drain()
        stats = fleet.stats()
        failed = stats.failed_requests
        lost = num_requests - len(outcomes) - failed
        latencies = sorted(o.latency for o in outcomes)
        point = ResiliencePoint(
            mode=mode,
            completed=len(outcomes),
            lost=lost,
            failed=failed,
            failed_over=stats.failed_over_requests,
            max_attempts=max((o.attempts for o in outcomes), default=0),
            scale_ups=sum(
                1 for event in stats.scaling_events if event.action == "scale_up"
            ),
            peak_capacity=stats.peak_capacity,
            throughput_rps=stats.throughput_rps,
            recovery=1.0,  # filled in against the fault-free reference
            p99_latency=(
                float(np.percentile(latencies, 99)) if latencies else float("nan")
            ),
        )
        if crash_at is not None:
            # The controller must be reactive, never prescient: any
            # scale-up belongs strictly after the crash.
            assert all(
                event.at >= crash_at
                for event in stats.scaling_events
                if event.action == "scale_up"
            ), "autoscaler acted before the crash — the load is not balanced"
        return point, stats.makespan

    reference, makespan = run("fault_free", None)
    crash_at = crash_fraction * makespan
    result = ResilienceResult(
        model=model_name,
        platform=platform,
        num_replicas=num_replicas,
        num_requests=num_requests,
        k=k,
        crash_at=crash_at,
        arrival_interval=arrival_interval,
    )
    result.points.append(reference)
    for mode in ("crash_failover", "crash_autoscale"):
        point, _ = run(mode, crash_at)
        point.recovery = point.throughput_rps / reference.throughput_rps
        result.points.append(point)
    return result


def overlap_window_sweep(
    model_name: str = "qwen3-reranker-0.6b",
    base_platform: str = "nvidia_5070",
    bandwidths_gbps: tuple[float, ...] = (0.5, 1.0, 2.0, 3.5, 7.0),
    num_queries: int = 3,
    num_candidates: int = 20,
) -> OverlapWindowResult:
    """Where does weight streaming stop being free?

    The §3.2 overlap window holds while one layer's compute covers the
    next layer's load.  Sweeping SSD bandwidth moves the load time
    through that boundary: above it PRISM's latency is flat (stalls
    ≈0); below it stalls grow roughly linearly in 1/bandwidth.  This
    quantifies the paper's hardware assumption (PCIe-4-class storage).
    """
    from ..device.platforms import DeviceProfile, get_profile, register_profile
    from ..device.ssd import SSDModel

    model = get_model_config(model_name)
    base = get_profile(base_platform)
    queries = get_dataset("wikipedia").queries(num_queries, num_candidates)
    hf = run_system("hf", model, base_platform, queries, 10)

    result = OverlapWindowResult(
        model=model_name, platform=base_platform, hf_latency=hf.mean_latency
    )
    for bandwidth in bandwidths_gbps:
        name = f"{base_platform}_ssd_{int(bandwidth * 10):04d}"
        register_profile(
            DeviceProfile(
                name=name,
                compute=base.compute,
                ssd=SSDModel(
                    read_bandwidth=bandwidth * 1e9, write_bandwidth=0.8 * bandwidth * 1e9
                ),
                memory_budget_bytes=base.memory_budget_bytes,
            )
        )
        stats = run_system("prism", model, name, queries, 10)
        result.points.append(
            OverlapWindowPoint(
                ssd_bandwidth_gbps=bandwidth,
                latency=stats.mean_latency,
                io_stall_seconds=stats.io_stall_seconds / num_queries,
                peak_mib=stats.peak_mib,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — data-plane caching (DESIGN.md §12)
# ----------------------------------------------------------------------
@dataclass
class DataPlanePoint:
    """One fleet mode (cache off / cache on) over the Zipf stream."""

    mode: str
    throughput_rps: float
    p50_latency: float
    p95_latency: float
    memo_hits: int
    coalesced: int
    overlap_hits: int
    misses: int
    hit_rate: float | None
    bytes_saved: int
    seconds_saved: float


@dataclass
class DataPlaneResult:
    """Cache-on vs cache-off serving of a Zipf-skewed request stream."""

    model: str
    platform: str
    num_replicas: int
    num_requests: int
    unique_queries: int
    k: int
    partial_overlap_rate: float
    identical_selections: bool = False
    speedup_cached: float = 0.0
    memo_entries: int = 0
    row_entries: int = 0
    evictions: int = 0
    invalidations: int = 0
    redispatched: int = 0
    epoch: int = 0
    points: list[DataPlanePoint] = field(default_factory=list)

    def find(self, mode: str) -> DataPlanePoint:
        for point in self.points:
            if point.mode == mode:
                return point
        raise KeyError(f"no data-plane point for mode {mode!r}")

    def render(self) -> str:
        rows = [
            (
                point.mode,
                f"{point.throughput_rps:.2f}/s",
                ms(point.p50_latency),
                ms(point.p95_latency),
                point.memo_hits,
                point.coalesced,
                point.overlap_hits,
                point.misses,
                pct(point.hit_rate),
                f"{point.bytes_saved / 2**20:.0f} MiB",
                ms(point.seconds_saved),
            )
            for point in self.points
        ]
        table = format_table(
            (
                "mode",
                "throughput",
                "p50",
                "p95",
                "memo hits",
                "coalesced",
                "overlap",
                "misses",
                "hit rate",
                "bytes saved",
                "vtime saved",
            ),
            rows,
            title=(
                f"Data-plane caching ({self.model}, {self.platform}, "
                f"{self.num_replicas} replicas, {self.num_requests} requests "
                f"over {self.unique_queries} unique queries)"
            ),
        )
        identical = "yes" if self.identical_selections else "NO"
        return table + (
            f"\nspeedup (cached vs uncached): {self.speedup_cached:.2f}x; "
            f"selections byte-identical: {identical}"
            f"\nplane: {self.memo_entries} memo entries, "
            f"{self.row_entries} row entries, "
            f"{self.evictions} evictions, "
            f"{self.invalidations} invalidations, "
            f"{self.redispatched} redispatched, epoch {self.epoch}"
        )


def data_plane_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    num_replicas: int = 2,
    unique_queries: int = 8,
    num_requests: int = 48,
    num_candidates: int = 20,
    k: int = 10,
    zipf_s: float = 1.1,
    partial_overlap_rate: float = 0.25,
    arrival_interval_ms: float = 5.0,
    max_batch: int = 4,
    seed: int = 0,
    dataset: str = "wikipedia",
) -> DataPlaneResult:
    """Fleet-wide semantic caching study (DESIGN.md §12).

    A Zipf-skewed stream of repeated (and partially-overlapping)
    queries is served twice through otherwise-identical fleets — data
    plane off, then on — and the study reports the cache's throughput
    win plus its hit taxonomy.  Selections are asserted byte-identical
    between the two runs: memoization, coalescing and overlap replay
    are exact by construction, so the speedup is free of quality drift.
    """
    from ..data.workloads import zipf_request_stream

    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    profile = get_profile(platform)
    rng = np.random.default_rng(seed)
    base = get_dataset(dataset).queries(unique_queries, num_candidates)
    stream = zipf_request_stream(
        rng,
        base,
        num_requests,
        zipf_s=zipf_s,
        partial_overlap_rate=partial_overlap_rate,
    )
    batches = [build_batch(q, tokenizer, model_config.max_seq_len) for q in stream]

    def run(cache_on: bool):
        fleet = FleetService.homogeneous(
            model,
            profile,
            num_replicas,
            fleet_config=FleetConfig(max_batch=max_batch, data_plane=cache_on),
            config=PrismConfig(numerics=False),
        )
        for index, batch in enumerate(batches):
            fleet.submit_request(batch, k, at=index * arrival_interval_ms * 1e-3)
        outcomes = sorted(fleet.drain(), key=lambda o: o.request_id)
        return fleet.stats(), [
            (o.result.top_indices.tobytes(), o.result.top_scores.tobytes())
            for o in outcomes
        ]

    result = DataPlaneResult(
        model=model_name,
        platform=platform,
        num_replicas=num_replicas,
        num_requests=num_requests,
        unique_queries=unique_queries,
        k=k,
        partial_overlap_rate=partial_overlap_rate,
    )
    off_stats, off_selections = run(False)
    on_stats, on_selections = run(True)
    result.identical_selections = off_selections == on_selections
    result.speedup_cached = (
        on_stats.throughput_rps / off_stats.throughput_rps
        if off_stats.throughput_rps > 0
        else 0.0
    )
    plane_stats = on_stats.data_plane
    if plane_stats is not None:
        result.memo_entries = plane_stats.memo_entries
        result.row_entries = plane_stats.row_entries
        result.evictions = plane_stats.evictions
        result.invalidations = plane_stats.invalidations
        result.redispatched = plane_stats.redispatched
        result.epoch = plane_stats.epoch
    for mode, stats in (("cache_off", off_stats), ("cache_on", on_stats)):
        plane = stats.data_plane
        result.points.append(
            DataPlanePoint(
                mode=mode,
                throughput_rps=stats.throughput_rps,
                p50_latency=stats.p50_latency,
                p95_latency=stats.p95_latency,
                memo_hits=plane.memo_hits if plane is not None else 0,
                coalesced=plane.coalesced if plane is not None else 0,
                overlap_hits=plane.overlap_hits if plane is not None else 0,
                misses=plane.misses if plane is not None else 0,
                hit_rate=plane.hit_rate if plane is not None else None,
                bytes_saved=plane.bytes_saved if plane is not None else 0,
                seconds_saved=plane.seconds_saved if plane is not None else 0.0,
            )
        )
    return result


# ----------------------------------------------------------------------
# Extension — multi-tenant workload plane (DESIGN.md §13)
# ----------------------------------------------------------------------
@dataclass
class TenantClassPoint:
    """One SLO class's rollup over the tenant population."""

    slo: str
    tenants: int
    submitted: int
    completed: int
    shed: int
    #: Median of per-tenant p50/p99 (None when no tenant completed).
    p50_latency: float | None
    p99_latency: float | None
    max_shed_rate: float
    shed_bound: float
    max_token_debt: float

    @property
    def within_bound(self) -> bool:
        return self.max_shed_rate <= self.shed_bound


@dataclass
class MultiTenantResult:
    """Tenant-aware fair admission under open-loop overload.

    ``starved_tenants`` / ``bound_violations`` are the starvation-
    freedom and SLO contracts ``benchmarks/test_multitenant.py`` pins
    and ``perf_gate.py`` enforces in CI: both must be zero at any
    overload.  ``min_weight_completed`` witnesses that even the
    lowest-weight arriving tenant completed requests.
    """

    model: str
    platform: str
    num_replicas: int
    num_tenants: int
    arriving_tenants: int
    duration_s: float
    process: str
    overload: float
    capacity_rps: float
    offered_rps: float
    num_requests: int = 0
    completed: int = 0
    shed: int = 0
    starved_tenants: int = 0
    bound_violations: int = 0
    min_weight_tenant: str = ""
    min_weight_completed: int = 0
    points: list[TenantClassPoint] = field(default_factory=list)

    def find(self, slo: str) -> TenantClassPoint:
        for point in self.points:
            if point.slo == slo:
                return point
        raise KeyError(f"no class point for SLO {slo!r}")

    def render(self) -> str:
        rows = [
            (
                point.slo,
                point.tenants,
                point.submitted,
                point.completed,
                point.shed,
                ms(point.p50_latency),
                ms(point.p99_latency),
                pct(point.max_shed_rate),
                pct(point.shed_bound),
                f"{point.max_token_debt:.1f}",
                "yes" if point.within_bound else "VIOLATED",
            )
            for point in self.points
        ]
        table = format_table(
            (
                "class",
                "tenants",
                "submitted",
                "completed",
                "shed",
                "p50",
                "p99",
                "max shed",
                "bound",
                "max debt",
                "within",
            ),
            rows,
            title=(
                f"Multi-tenant fair admission ({self.model}, {self.platform}, "
                f"{self.num_replicas} replicas, {self.num_tenants} tenants, "
                f"{self.overload:.0f}x overload, {self.process})"
            ),
        )
        return table + (
            f"\noffered {self.offered_rps:.1f} rps vs capacity "
            f"{self.capacity_rps:.1f} rps; {self.num_requests} arrivals, "
            f"{self.completed} completed, {self.shed} shed"
            f"\nstarved tenants: {self.starved_tenants}; "
            f"shed-bound violations: {self.bound_violations}; "
            f"lowest-weight tenant {self.min_weight_tenant or '-'} completed "
            f"{self.min_weight_completed}"
        )


def multitenant_serving(
    model_name: str = "qwen3-reranker-0.6b",
    platform: str = "nvidia_5070",
    num_replicas: int = 2,
    num_tenants: int = 1000,
    duration_s: float = 15.0,
    overload: float = 10.0,
    process: str = "poisson",
    max_batch: int = 8,
    max_wait_ms: float = 5.0,
    num_candidates: int = 8,
    probe_requests: int = 16,
    seed: int = 0,
) -> MultiTenantResult:
    """Fair admission under trace-driven open-loop overload (DESIGN.md §13).

    A closed burst first calibrates the fleet's capacity; the traffic
    generator then offers ``overload``× that rate across
    ``num_tenants`` Zipf-popular tenants, and the same fleet — with
    tenant-aware WFQ + token-bucket admission attached — serves the
    trace.  The study reports the per-class shed/latency rollup and
    certifies the two §13 contracts: no tenant starves, and no
    tenant's shed rate exceeds its SLO class's bound.
    """
    from ..core.tenancy import selection_requests_from_trace, tenancy_from_trace
    from ..data.traffic import TrafficConfig, generate_traffic

    model_config = get_model_config(model_name)
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    profile = get_profile(platform)

    def build_fleet(tenancy=None) -> FleetService:
        return FleetService.homogeneous(
            model,
            profile,
            num_replicas,
            fleet_config=FleetConfig(max_batch=max_batch, max_wait_ms=max_wait_ms),
            config=PrismConfig(numerics=False),
            tenancy=tenancy,
        )

    # 1. Calibrate: a closed back-to-back burst measures capacity.
    probe = build_fleet()
    for query in get_dataset("wikipedia").queries(probe_requests, num_candidates):
        probe.submit_request(build_batch(query, tokenizer, model_config.max_seq_len), 1)
    probe.drain()
    capacity_rps = probe.stats().throughput_rps

    # 2. Offer overload x capacity across the tenant population.
    config = TrafficConfig(
        num_tenants=num_tenants,
        duration_s=duration_s,
        rate_rps=overload * capacity_rps,
        process=process,
        seed=seed,
        max_candidates=num_candidates,
    )
    trace = generate_traffic(config)
    fleet = build_fleet(tenancy_from_trace(trace))
    serve_all(
        FleetServer(fleet),
        selection_requests_from_trace(trace, tokenizer, model_config.max_seq_len),
    )
    stats = fleet.stats()

    result = MultiTenantResult(
        model=model_name,
        platform=platform,
        num_replicas=num_replicas,
        num_tenants=num_tenants,
        arriving_tenants=len(trace.arriving_tenants()),
        duration_s=duration_s,
        process=process,
        overload=overload,
        capacity_rps=capacity_rps,
        offered_rps=config.rate_rps,
        num_requests=trace.num_requests,
    )
    arrived = [t for t in stats.tenants.values() if t.submitted > 0]
    result.completed = sum(t.completed for t in arrived)
    result.shed = sum(t.shed for t in arrived)
    result.starved_tenants = len(stats.starved_tenants)
    result.bound_violations = len(stats.shed_bound_violations)
    # The starvation-freedom witness: the lowest-weight arriving tenant
    # (ties broken by tenant id) must still have completed requests.
    profiles = trace.tenants
    witnesses = sorted(
        arrived, key=lambda t: (profiles[t.tenant].weight, t.tenant)
    )
    if witnesses:
        result.min_weight_tenant = witnesses[0].tenant or ""
        result.min_weight_completed = witnesses[0].completed
    for slo, rows in sorted(stats.tenants_by_class().items()):
        active = [t for t in rows if t.submitted > 0]
        if not active:
            continue
        p50s = [t.p50_latency for t in active if t.p50_latency is not None]
        p99s = [t.p99_latency for t in active if t.p99_latency is not None]
        result.points.append(
            TenantClassPoint(
                slo=slo,
                tenants=len(active),
                submitted=sum(t.submitted for t in active),
                completed=sum(t.completed for t in active),
                shed=sum(t.shed for t in active),
                p50_latency=float(np.median(p50s)) if p50s else None,
                p99_latency=float(np.median(p99s)) if p99s else None,
                max_shed_rate=max(t.shed_rate for t in active),
                shed_bound=active[0].shed_bound,
                max_token_debt=max(t.token_debt for t in active),
            )
        )
    return result
