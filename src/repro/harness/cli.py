"""Command-line entry point: regenerate any paper artifact from a shell.

Usage::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig16
    python -m repro.harness.cli table3 --quick
    python -m repro.harness.cli fig8 --out results/
    python -m repro.harness.cli fleet --quick
    python -m repro.harness.cli schedule --quick
    python -m repro.harness.cli shared_weights --quick
    python -m repro.harness.cli deadline --quick
    python -m repro.harness.cli resilience --quick
    python -m repro.harness.cli cache --quick
    python -m repro.harness.cli tenants --quick
    python -m repro.harness.cli serve requests.json --tier fleet

``--quick`` shrinks workloads (fewer datasets/queries) for smoke runs;
the full sizes match the benchmarks under ``benchmarks/``.

The ``serve`` subcommand replays a JSON request file through any
serving tier (``--tier engine|device|fleet``) via the unified request
API (DESIGN.md §8) and prints each request's
:class:`~repro.core.api.SelectionResponse` provenance.  The file holds
a list of request objects::

    [{"id": "q0", "k": 3, "num_candidates": 8},
     {"id": "q1", "k": 3, "num_candidates": 8,
      "priority": 0, "arrival": 0.1, "deadline": 0.5}]

Optional per-request fields: ``priority`` (0 = interactive, 1 =
batch), ``arrival`` (offset seconds), ``deadline`` (seconds after
arrival), ``cancel_at`` (offset seconds — exercises cancellation),
``hedge_after_ms`` (fleet-tier straggler hedging, DESIGN.md §9),
``dataset`` (workload generator, default wikipedia).

``serve`` also accepts a ``repro.traffic`` v1 JSONL trace (DESIGN.md
§13) in place of the JSON list: the trace's arrivals, tenant ids and
SLO lanes are replayed, and on the fleet tier the trace's per-tenant
admission profiles (WFQ weights + token buckets) are attached, so an
overloaded trace exercises tenant-aware shedding end to end.

``serve`` exits non-zero when any request did not complete — shed,
cancelled, or failed — and prints a one-line summary count, so shell
pipelines (and CI) can gate on clean serving runs.

The ``traffic`` subcommand generates and inspects multi-tenant
workload traces (DESIGN.md §13)::

    python -m repro.harness.cli traffic generate out.jsonl --tenants 200 --rate 50
    python -m repro.harness.cli traffic summary out.jsonl

The ``trace`` subcommand drives the observability plane (DESIGN.md
§10)::

    python -m repro.harness.cli trace record out.jsonl --scenario resilience --quick
    python -m repro.harness.cli trace replay out.jsonl
    python -m repro.harness.cli trace tail out.jsonl --last 20
    python -m repro.harness.cli trace summary out.jsonl

``record`` executes a named scenario (see
:data:`repro.harness.traces.SCENARIOS`) with the event log attached and
writes the JSONL trace; ``replay`` reconstructs the workload from a
recorded trace, re-executes it, and exits non-zero on the first
divergent event line; ``tail`` prints the last events human-readably
(``--follow`` switches to incremental live tailing from the last byte
offset, with ``--poll`` / ``--idle-timeout`` controls); ``summary``
aggregates a log into the per-tier fleet dashboard (throughput,
p50/p95/p99, shed/fault/hedge counts); ``timeline`` exports a
Perfetto-loadable Chrome trace-event JSON.

The live telemetry plane (DESIGN.md §14) rides ``serve`` and two
sibling commands::

    python -m repro.harness.cli serve trace.jsonl --tier fleet \
        --live-port 9137 --live-linger 30 --timeline run.timeline.json
    python -m repro.harness.cli live http://127.0.0.1:9137 --watch
    python -m repro.harness.cli trace timeline out.jsonl

``serve --live-port`` publishes Prometheus ``/metrics``, an SSE
``/events`` stream and ``/healthz`` from a stdlib HTTP server while
the run executes (port ``0`` picks an ephemeral port; ``--live-host``
rebinds; ``--live-linger`` keeps the server up after the drain for
late scrapers), then asserts the live registry exactly equals the
post-hoc ``FleetStats`` rollup — exit code 2 flags a divergence, 1
stays "requests dropped", 0 is clean.  ``live <url>`` renders a
one-shot (or ``--watch``) terminal dashboard from a ``/metrics``
scrape; ``serve --timeline`` / ``trace timeline`` write the Chrome
trace-event view of a run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable

from . import experiments as ex

#: name → (full-size runner, quick-size runner)
_EXPERIMENTS: dict[str, tuple[Callable[[], object], Callable[[], object]]] = {
    "fig1": (
        lambda: ex.fig1_pipeline(num_docs=200, num_queries=4),
        lambda: ex.fig1_pipeline(num_docs=100, num_queries=2),
    ),
    "fig2": (
        lambda: ex.fig2_sparsity(num_queries=6),
        lambda: ex.fig2_sparsity(num_queries=2),
    ),
    "table3": (
        lambda: ex.table3(num_queries=2),
        lambda: ex.table3(
            models=("qwen3-reranker-0.6b",),
            datasets=("wikipedia", "nfcorpus"),
            platforms=("nvidia_5070",),
            num_queries=2,
        ),
    ),
    "fig8": (
        lambda: ex.fig8_wikipedia(num_queries=3),
        lambda: ex.fig8_wikipedia(
            models=("qwen3-reranker-0.6b",), platforms=("nvidia_5070",), num_queries=2
        ),
    ),
    "fig9": (
        lambda: ex.fig9_memory(),
        lambda: ex.fig9_memory(models=("qwen3-reranker-0.6b",)),
    ),
    "fig10": (
        lambda: ex.fig10_tradeoff(num_thresholds=5, num_queries=6),
        lambda: ex.fig10_tradeoff(num_thresholds=3, num_queries=2),
    ),
    "fig11": (
        lambda: ex.fig11_rag(num_docs=200, num_queries=12),
        lambda: ex.fig11_rag(num_docs=100, num_queries=3),
    ),
    "fig12-13": (
        lambda: ex.fig12_13_agent_memory(),
        lambda: ex.fig12_13_agent_memory(workloads=("video",)),
    ),
    "fig14-15": (
        lambda: ex.fig14_15_long_context(num_tasks=24),
        lambda: ex.fig14_15_long_context(num_tasks=6),
    ),
    "fig16": (
        lambda: ex.fig16_ablation(),
        lambda: ex.fig16_ablation(num_candidates=20),
    ),
    "fleet": (
        lambda: ex.fleet_serving(),
        lambda: ex.fleet_serving(replica_counts=(1, 2), num_requests=8),
    ),
    "schedule": (
        lambda: ex.concurrent_serving(),
        lambda: ex.concurrent_serving(
            num_interactive=4, num_batch=2, batch_candidates=32
        ),
    ),
    "shared_weights": (
        lambda: ex.shared_weights_serving(),
        lambda: ex.shared_weights_serving(num_requests=3, num_candidates=4),
    ),
    "deadline": (
        lambda: ex.deadline_serving(),
        lambda: ex.deadline_serving(num_requests=6, num_candidates=8),
    ),
    "resilience": (
        lambda: ex.resilience_serving(),
        lambda: ex.resilience_serving(num_requests=12, num_candidates=8),
    ),
    "cache": (
        lambda: ex.data_plane_serving(),
        lambda: ex.data_plane_serving(
            unique_queries=4, num_requests=16, partial_overlap_rate=0.4
        ),
    ),
    "tenants": (
        lambda: ex.multitenant_serving(),
        lambda: ex.multitenant_serving(
            num_tenants=150, duration_s=5.0, probe_requests=8
        ),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.cli",
        description="Regenerate the paper's tables/figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["list", "all"],
        help="which artifact to regenerate ('list' to enumerate, 'all' for everything)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down workload for smoke runs"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the rendered table to DIR"
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.cli serve",
        description="Replay a JSON request file through one serving tier "
        "(the unified request API, DESIGN.md §8).",
    )
    parser.add_argument("requests", type=Path, help="JSON file with a list of requests")
    parser.add_argument(
        "--tier",
        choices=("engine", "device", "fleet"),
        default="device",
        help="which Server adapter serves the requests",
    )
    parser.add_argument(
        "--model", default="qwen3-reranker-0.6b", help="reranker model name"
    )
    parser.add_argument("--platform", default="nvidia_5070", help="device profile")
    parser.add_argument(
        "--policy", default="round_robin", help="device-tier scheduling policy"
    )
    parser.add_argument(
        "--edf", action="store_true", help="earliest-deadline-first admission (device tier)"
    )
    parser.add_argument(
        "--concurrency", type=int, default=4, help="device-tier in-flight request cap"
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="fleet-tier replica count"
    )
    parser.add_argument(
        "--live-port",
        type=int,
        default=None,
        help="publish live telemetry on this port (0 = ephemeral) "
        "while serving: /metrics, /events (SSE), /healthz (DESIGN.md §14)",
    )
    parser.add_argument(
        "--live-host", default="127.0.0.1", help="live-server bind address"
    )
    parser.add_argument(
        "--live-linger",
        type=float,
        default=0.0,
        help="keep the live server up this many seconds after the drain "
        "(lets external scrapers catch the finished run)",
    )
    parser.add_argument(
        "--timeline",
        type=Path,
        default=None,
        help="write the run's per-request spans as Chrome trace-event "
        "JSON (Perfetto-loadable) to this path",
    )
    return parser


def _build_server(args: argparse.Namespace, tenancy=None, event_log=None):
    """Construct the requested tier's Server adapter."""
    from ..core.api import DeviceServer, EngineServer, FleetServer
    from ..core.config import PrismConfig
    from ..core.fleet import FleetService
    from ..core.service import SemanticSelectionService
    from ..device.platforms import get_profile
    from ..model.zoo import get_model_config
    from .runner import create_engine, shared_model

    model_config = get_model_config(args.model)
    model = shared_model(model_config)
    profile = get_profile(args.platform)
    if args.tier == "engine":
        engine = create_engine("prism", model, profile.create(), numerics=False)
        engine.prepare()
        if event_log is not None:
            engine.device.attach_event_log(event_log)
        return EngineServer(engine), model_config
    if args.tier == "device":
        service = SemanticSelectionService(
            model,
            profile,
            config=PrismConfig(numerics=False),
            max_concurrency=args.concurrency,
            event_log=event_log,
        )
        return DeviceServer(service, policy=args.policy, edf=args.edf), model_config
    fleet = FleetService.homogeneous(
        model,
        profile,
        args.replicas,
        config=PrismConfig(numerics=False),
        tenancy=tenancy,
        event_log=event_log,
    )
    return FleetServer(fleet), model_config


def run_serve(argv: list[str]) -> int:
    """The ``serve`` subcommand: replay requests, print provenance."""
    from ..core.api import SelectionRequest
    from ..core.tenancy import selection_requests_from_trace, tenancy_from_trace
    from ..data.datasets import get_dataset
    from ..data.traffic import is_traffic_file, read_traffic_trace
    from ..data.workloads import build_batch
    from .reporting import format_table, ms
    from .runner import shared_tokenizer

    args = build_serve_parser().parse_args(argv)

    # Live telemetry / timeline export both need the event log attached
    # (DESIGN.md §14); a plain serve keeps the unobserved fast path.
    event_log = None
    if args.live_port is not None or args.timeline is not None:
        from ..core.events import EventLog

        event_log = EventLog()

    tenancy = None
    if is_traffic_file(args.requests):
        # A repro.traffic v1 trace (DESIGN.md §13): replay its arrivals
        # with tenant ids and SLO lanes; the fleet tier additionally
        # attaches the trace's per-tenant admission profiles.
        trace = read_traffic_trace(args.requests)
        tenancy = tenancy_from_trace(trace) if args.tier == "fleet" else None
        server, model_config = _build_server(args, tenancy=tenancy, event_log=event_log)
        live = _start_live(args, event_log, tenancy)
        tokenizer = shared_tokenizer(model_config)
        for request in selection_requests_from_trace(
            trace, tokenizer, model_config.max_seq_len
        ):
            server.submit(request)
    else:
        entries = json.loads(args.requests.read_text())
        if not isinstance(entries, list) or not entries:
            raise SystemExit("request file must hold a non-empty JSON list")
        server, model_config = _build_server(args, event_log=event_log)
        live = _start_live(args, event_log, None)
        tokenizer = shared_tokenizer(model_config)
        for index, entry in enumerate(entries):
            spec = get_dataset(entry.get("dataset", "wikipedia"))
            num_candidates = int(entry.get("num_candidates", 8))
            query = spec.queries(index + 1, num_candidates)[index]
            batch = build_batch(query, tokenizer, model_config.max_seq_len)
            request = SelectionRequest(
                batch=batch,
                k=int(entry.get("k", 3)),
                request_id=entry.get("id", f"q{index}"),
                priority=int(entry.get("priority", 1)),
                arrival=entry.get("arrival"),
                deadline=entry.get("deadline"),
                hedge_after_ms=entry.get("hedge_after_ms"),
                tenant=entry.get("tenant"),
            )
            handle = server.submit(request)
            if entry.get("cancel_at") is not None:
                handle.cancel(at=float(entry["cancel_at"]))
    responses = server.drain()

    rows = [
        (
            response.request_id,
            response.status,
            response.tier,
            response.tenant or "-",
            response.lane,
            "-" if response.replica is None else response.replica,
            response.policy or "-",
            "-" if response.fused_group is None else response.fused_group,
            "-" if response.threshold is None else f"{response.threshold:.2f}",
            ms(response.queue_seconds),
            ms(response.e2e_seconds),
            {True: "met", False: "MISSED", None: "-"}[response.deadline_met],
            "-" if response.result is None else str(response.result.top_indices.tolist()),
        )
        for response in responses
    ]
    print(
        format_table(
            (
                "request",
                "status",
                "tier",
                "tenant",
                "lane",
                "replica",
                "policy",
                "group",
                "thresh",
                "queue",
                "e2e",
                "deadline",
                "top-k",
            ),
            rows,
            title=f"SelectionResponse provenance ({args.tier} tier)",
        )
    )
    # A serving run is clean only when every request completed: any
    # shed / cancelled / failed request makes the replay exit non-zero
    # with a one-line summary, so pipelines can gate on it.
    counts = {status: 0 for status in ("shed", "cancelled", "failed")}
    for response in responses:
        if response.status in counts:
            counts[response.status] += 1
    dropped = sum(counts.values())
    if dropped:
        print(
            f"serve: {dropped} of {len(responses)} requests did not complete "
            f"(shed={counts['shed']}, cancelled={counts['cancelled']}, "
            f"failed={counts['failed']})"
        )
    mismatches: list[str] = []
    if live is not None:
        # Fold whatever the run streamed, then hold the §14 contract:
        # live-derived registry values must equal post-hoc FleetStats.
        from ..core.telemetry import fleet_equivalence_report

        live.telemetry.drain()
        if args.tier == "fleet":
            mismatches = fleet_equivalence_report(
                live.telemetry.collector,
                server.fleet.stats(),
                server.fleet.dropped_requests,
            )
            if mismatches:
                print(f"live telemetry DIVERGED from FleetStats ({len(mismatches)}):")
                for line in mismatches:
                    print(f"  {line}")
            else:
                print(
                    f"live telemetry: {live.telemetry.collector.events_seen} events "
                    "folded, registry == FleetStats"
                )
        if args.live_linger > 0:
            print(f"live server lingering {args.live_linger:.1f}s at {live.url}")
            time.sleep(args.live_linger)
        live.close()
    if args.timeline is not None and event_log is not None:
        from ..core.trace import write_timeline

        spans = write_timeline(event_log.events, args.timeline)
        print(f"timeline: {spans} trace events -> {args.timeline}")
    if mismatches:
        return 2
    return 1 if dropped else 0


def _start_live(args: argparse.Namespace, event_log, tenancy):
    """Start the §14 live server when ``serve --live-port`` asked for it."""
    if args.live_port is None or event_log is None:
        return None
    from .live import LiveServer

    live = LiveServer(
        event_log,
        tenancy=tenancy,
        tenant_tier=args.tier,
        host=args.live_host,
        port=args.live_port,
    ).start()
    print(f"live telemetry at {live.url} (/metrics, /events, /healthz)")
    return live


def build_traffic_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.cli traffic",
        description="Generate / inspect multi-tenant traffic traces (DESIGN.md §13).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a repro.traffic v1 JSONL trace")
    generate.add_argument("out", type=Path, help="trace file to write")
    generate.add_argument("--tenants", type=int, default=100, help="tenant population")
    generate.add_argument(
        "--duration", type=float, default=10.0, help="trace span in virtual seconds"
    )
    generate.add_argument(
        "--rate", type=float, default=50.0, help="mean offered arrival rate (rps)"
    )
    generate.add_argument(
        "--process",
        choices=("poisson", "mmpp", "diurnal"),
        default="poisson",
        help="arrival process",
    )
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument(
        "--max-candidates", type=int, default=16, help="largest candidate set"
    )

    summary = sub.add_parser("summary", help="aggregate view of a traffic trace")
    summary.add_argument("trace", type=Path, help="trace file to read")
    return parser


def run_traffic_cmd(argv: list[str]) -> int:
    """The ``traffic`` subcommand: generate / summarize workload traces."""
    from ..data.traffic import (
        TrafficConfig,
        generate_traffic,
        read_traffic_trace,
        summarize_traffic,
        write_traffic_trace,
    )
    from .reporting import format_table

    args = build_traffic_parser().parse_args(argv)

    if args.command == "generate":
        config = TrafficConfig(
            num_tenants=args.tenants,
            duration_s=args.duration,
            rate_rps=args.rate,
            process=args.process,
            seed=args.seed,
            max_candidates=args.max_candidates,
        )
        trace = generate_traffic(config)
        write_traffic_trace(trace, args.out)
        print(
            f"generated {trace.num_requests} arrivals over {args.duration:.1f}s "
            f"({args.process}, {len(trace.arriving_tenants())} of "
            f"{args.tenants} tenants arriving) -> {args.out}"
        )
        return 0

    summary = summarize_traffic(read_traffic_trace(args.trace))
    rows = [
        (slo, count, f"{count / summary.num_requests:.1%}")
        for slo, count in sorted(summary.per_class.items())
    ]
    print(
        format_table(
            ("class", "requests", "share"),
            rows,
            title=f"traffic summary ({args.trace})",
        )
    )
    lo, hi, mean = summary.candidate_sizes
    print(
        f"{summary.num_requests} requests over {summary.duration_s:.1f}s "
        f"(mean {summary.mean_rate_rps:.1f} rps); "
        f"{summary.arriving_tenants} of {summary.num_tenants} tenants arriving; "
        f"candidate sets {lo}..{hi} (mean {mean:.1f})"
    )
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.cli trace",
        description="Record, replay and inspect event-log traces (DESIGN.md §10).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a scenario, write its JSONL trace")
    record.add_argument("out", type=Path, help="trace file to write")
    record.add_argument(
        "--scenario",
        default="device",
        help="named scenario from repro.harness.traces.SCENARIOS",
    )
    record.add_argument(
        "--quick", action="store_true", help="scaled-down workload for smoke runs"
    )

    replay = sub.add_parser(
        "replay", help="re-execute a recorded trace, fail on divergence"
    )
    replay.add_argument("trace", type=Path, help="trace file to replay")

    tail = sub.add_parser("tail", help="print the last events human-readably")
    tail.add_argument("trace", type=Path, help="trace file to read")
    tail.add_argument("--last", type=int, default=20, help="how many events to show")
    tail.add_argument("--kind", default=None, help="only events of this kind")
    tail.add_argument("--tier", default=None, help="only events of this tier")
    tail.add_argument(
        "--follow",
        action="store_true",
        help="stream the file incrementally as it grows (poll from the "
        "last byte offset) instead of reading it once",
    )
    tail.add_argument(
        "--poll", type=float, default=0.2, help="--follow poll interval (seconds)"
    )
    tail.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="--follow exits after this many idle seconds (default: forever)",
    )

    summary = sub.add_parser("summary", help="aggregate a trace into a dashboard")
    summary.add_argument("trace", type=Path, help="trace file to read")

    timeline = sub.add_parser(
        "timeline",
        help="export per-request spans as Chrome trace-event JSON (Perfetto)",
    )
    timeline.add_argument("trace", type=Path, help="trace file to read")
    timeline.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: trace path with .timeline.json)",
    )
    return parser


def run_trace_cmd(argv: list[str]) -> int:
    """The ``trace`` subcommand: record / replay / tail / summary."""
    from ..core.trace import read_trace, record_trace, replay_trace, summarize_events
    from .reporting import format_table, ms
    from .traces import SCENARIOS, build_scenario

    args = build_trace_parser().parse_args(argv)

    if args.command == "tail" and args.follow:
        return _follow_tail(args)

    if args.command == "record":
        if args.scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise SystemExit(f"unknown scenario {args.scenario!r}; known: {known}")
        spec, requests = build_scenario(args.scenario, quick=args.quick)
        run, text = record_trace(spec, requests, path=args.out)
        print(
            f"recorded {len(run.log)} events ({args.scenario}, {spec.tier} tier, "
            f"{len(requests)} requests) -> {args.out}"
        )
        return 0

    if args.command == "replay":
        run, report = replay_trace(path=args.trace)
        if report.event_identical:
            print(
                f"replay ok: {report.replayed_events} events, "
                f"event-identical to {args.trace}"
            )
            return 0
        print(
            f"replay DIVERGED at event {report.first_divergence} "
            f"({report.recorded_events} recorded, {report.replayed_events} replayed)"
        )
        print(f"  recorded: {report.recorded_line}")
        print(f"  replayed: {report.replayed_line}")
        return 1

    if args.command == "timeline":
        from ..core.trace import write_timeline

        _, events, _ = read_trace(args.trace)
        out = args.out or args.trace.with_suffix(".timeline.json")
        spans = write_timeline(events, out)
        print(
            f"timeline: {spans} trace events ({len(events)} log events) -> {out} "
            "(load in Perfetto / chrome://tracing)"
        )
        return 0

    spec, events, _ = read_trace(args.trace)
    if args.command == "tail":
        shown = [
            e
            for e in events
            if (args.kind is None or e.kind == args.kind)
            and (args.tier is None or e.tier == args.tier)
        ][-args.last :]
        for event in shown:
            print(event.describe())
        print(f"({len(shown)} of {len(events)} events, {spec.tier} tier)")
        return 0

    # summary: the per-tier fleet dashboard.
    dashboard = summarize_events(events)
    rows = [
        (
            tier.tier,
            tier.admitted,
            tier.completed,
            tier.shed,
            tier.cancelled,
            tier.failed,
            "-" if tier.throughput_rps is None else f"{tier.throughput_rps:.2f}/s",
            ms(tier.p50_latency),
            ms(tier.p95_latency),
            ms(tier.p99_latency),
        )
        for tier in dashboard.tiers
    ]
    print(
        format_table(
            (
                "tier",
                "admitted",
                "completed",
                "shed",
                "cancelled",
                "failed",
                "throughput",
                "p50",
                "p95",
                "p99",
            ),
            rows,
            title=f"trace summary ({dashboard.events} events)",
        )
    )
    print(
        f"faults={dashboard.faults} failovers={dashboard.failovers} "
        f"hedges={dashboard.hedges} scale_actions={dashboard.scale_actions} "
        f"ssd_fetches={dashboard.fetches} ({dashboard.fetched_bytes} bytes)"
    )
    return 0


def _follow_tail(args: argparse.Namespace) -> int:
    """``trace tail --follow``: stream a growing JSONL trace (§14).

    Shares the subscriber-side rendering (``Event.describe``) with the
    one-shot tail; the schema header line is recognised and skipped, so
    following can start before the recorder has written any events.
    """
    import json as json_module

    from ..core.events import Event
    from .live import follow_trace_lines

    shown = 0
    try:
        for line in follow_trace_lines(
            args.trace, poll_s=args.poll, idle_timeout_s=args.idle_timeout
        ):
            payload = json_module.loads(line)
            if "schema" in payload:  # the trace header, not an event
                continue
            event = Event.from_payload(payload)
            if args.kind is not None and event.kind != args.kind:
                continue
            if args.tier is not None and event.tier != args.tier:
                continue
            print(event.describe(), flush=True)
            shown += 1
    except KeyboardInterrupt:
        pass
    print(f"({shown} events followed from {args.trace})")
    return 0


def build_live_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.cli live",
        description="Scrape a running live server's /metrics and render "
        "the per-tier dashboard (DESIGN.md §14).",
    )
    parser.add_argument(
        "url", help="base URL printed by `serve --live-port` (e.g. http://127.0.0.1:9100)"
    )
    parser.add_argument(
        "--watch", action="store_true", help="re-scrape until interrupted"
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="--watch scrape interval (seconds)"
    )
    return parser


def run_live_cmd(argv: list[str]) -> int:
    """The ``live`` subcommand: a terminal dashboard over one scrape.

    Works from the exposition alone — quantiles are reconstructed from
    the histogram buckets, which is all a remote scraper ever sees.
    """
    from urllib.request import urlopen

    from ..core.telemetry import dashboard_views, parse_exposition
    from .reporting import format_table, ms

    args = build_live_parser().parse_args(argv)
    base = args.url.rstrip("/")

    def scrape_once() -> None:
        with urlopen(f"{base}/metrics", timeout=10.0) as response:
            text = response.read().decode()
        samples = parse_exposition(text)
        rows = [
            (
                view.tier,
                view.admitted,
                view.completed,
                view.shed,
                view.cancelled,
                view.failed,
                ms(view.p50),
                ms(view.p95),
                ms(view.p99),
            )
            for view in dashboard_views(samples)
        ]
        events = sum(value for _, value in samples.get("repro_events_total", []))
        print(
            format_table(
                (
                    "tier",
                    "admitted",
                    "completed",
                    "shed",
                    "cancelled",
                    "failed",
                    "~p50",
                    "~p95",
                    "~p99",
                ),
                rows,
                title=f"live telemetry ({base}, {int(events)} events, "
                "bucket-estimated quantiles)",
            )
        )

    try:
        scrape_once()
        while args.watch:
            time.sleep(args.interval)
            scrape_once()
    except KeyboardInterrupt:
        pass
    return 0


def run_one(name: str, quick: bool, out: Path | None) -> str:
    full, small = _EXPERIMENTS[name]
    start = time.perf_counter()
    result = (small if quick else full)()
    elapsed = time.perf_counter() - start
    text = result.render()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")
    return f"{text}\n[{name}: {elapsed:.1f}s wall]"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "trace":
        return run_trace_cmd(argv[1:])
    if argv and argv[0] == "traffic":
        return run_traffic_cmd(argv[1:])
    if argv and argv[0] == "live":
        return run_live_cmd(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(run_one(name, args.quick, args.out))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
