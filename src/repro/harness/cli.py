"""Command-line entry point: regenerate any paper artifact from a shell.

Usage::

    python -m repro.harness.cli list
    python -m repro.harness.cli fig16
    python -m repro.harness.cli table3 --quick
    python -m repro.harness.cli fig8 --out results/
    python -m repro.harness.cli fleet --quick
    python -m repro.harness.cli schedule --quick
    python -m repro.harness.cli shared_weights --quick

``--quick`` shrinks workloads (fewer datasets/queries) for smoke runs;
the full sizes match the benchmarks under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from . import experiments as ex

#: name → (full-size runner, quick-size runner)
_EXPERIMENTS: dict[str, tuple[Callable[[], object], Callable[[], object]]] = {
    "fig1": (
        lambda: ex.fig1_pipeline(num_docs=200, num_queries=4),
        lambda: ex.fig1_pipeline(num_docs=100, num_queries=2),
    ),
    "fig2": (
        lambda: ex.fig2_sparsity(num_queries=6),
        lambda: ex.fig2_sparsity(num_queries=2),
    ),
    "table3": (
        lambda: ex.table3(num_queries=2),
        lambda: ex.table3(
            models=("qwen3-reranker-0.6b",),
            datasets=("wikipedia", "nfcorpus"),
            platforms=("nvidia_5070",),
            num_queries=2,
        ),
    ),
    "fig8": (
        lambda: ex.fig8_wikipedia(num_queries=3),
        lambda: ex.fig8_wikipedia(
            models=("qwen3-reranker-0.6b",), platforms=("nvidia_5070",), num_queries=2
        ),
    ),
    "fig9": (
        lambda: ex.fig9_memory(),
        lambda: ex.fig9_memory(models=("qwen3-reranker-0.6b",)),
    ),
    "fig10": (
        lambda: ex.fig10_tradeoff(num_thresholds=5, num_queries=6),
        lambda: ex.fig10_tradeoff(num_thresholds=3, num_queries=2),
    ),
    "fig11": (
        lambda: ex.fig11_rag(num_docs=200, num_queries=12),
        lambda: ex.fig11_rag(num_docs=100, num_queries=3),
    ),
    "fig12-13": (
        lambda: ex.fig12_13_agent_memory(),
        lambda: ex.fig12_13_agent_memory(workloads=("video",)),
    ),
    "fig14-15": (
        lambda: ex.fig14_15_long_context(num_tasks=24),
        lambda: ex.fig14_15_long_context(num_tasks=6),
    ),
    "fig16": (
        lambda: ex.fig16_ablation(),
        lambda: ex.fig16_ablation(num_candidates=20),
    ),
    "fleet": (
        lambda: ex.fleet_serving(),
        lambda: ex.fleet_serving(replica_counts=(1, 2), num_requests=8),
    ),
    "schedule": (
        lambda: ex.concurrent_serving(),
        lambda: ex.concurrent_serving(
            num_interactive=4, num_batch=2, batch_candidates=32
        ),
    ),
    "shared_weights": (
        lambda: ex.shared_weights_serving(),
        lambda: ex.shared_weights_serving(num_requests=3, num_candidates=4),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.cli",
        description="Regenerate the paper's tables/figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["list", "all"],
        help="which artifact to regenerate ('list' to enumerate, 'all' for everything)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down workload for smoke runs"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the rendered table to DIR"
    )
    return parser


def run_one(name: str, quick: bool, out: Path | None) -> str:
    full, small = _EXPERIMENTS[name]
    start = time.perf_counter()
    result = (small if quick else full)()
    elapsed = time.perf_counter() - start
    text = result.render()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")
    return f"{text}\n[{name}: {elapsed:.1f}s wall]"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(run_one(name, args.quick, args.out))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
