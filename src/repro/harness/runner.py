"""Experiment runner: system × model × platform × workload → statistics.

This is the measurement layer every table/figure bench goes through.
A run creates a *fresh* simulated device, builds the requested engine,
``prepare()``s it (resident-weight loading, not counted in request
latency, as in the paper's steady-state measurements), replays the
workload and collects latency / Precision@K / memory statistics.

The five evaluated systems are addressed by name, matching §6.1:
``hf``, ``hf_offload``, ``hf_quant``, ``prism``, ``prism_quant``.
Memory-budget violations (e.g. vanilla HF with Qwen3-4B/8B on 8 GiB
devices) surface as ``oom=True`` results rather than exceptions, which
is how Table 3 / Figures 8–9 report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines import HFEngine, HFOffloadEngine, HFQuantEngine, prism_quant_engine
from ..core.api import EngineServer, SelectionRequest
from ..core.config import PrismConfig
from ..core.engine import EngineBase, PrismEngine, RerankResult
from ..core.metrics import precision_at_k
from ..data.workloads import RerankQuery, build_batch
from ..device.memory import MiB, OutOfMemoryError, TimelinePoint
from ..device.platforms import get_profile
from ..model.transformer import CrossEncoderModel
from ..model.zoo import ModelConfig
from ..text.tokenizer import Tokenizer
from ..text.vocab import Vocabulary

#: The systems compared throughout the evaluation (§6.1).
SYSTEMS = ("hf", "hf_offload", "hf_quant", "prism", "prism_quant")

_MODEL_CACHE: dict[tuple[str, bool], CrossEncoderModel] = {}
_TOKENIZER_CACHE: dict[int, Tokenizer] = {}


def shared_model(config: ModelConfig) -> CrossEncoderModel:
    """Process-wide model instance (weights are immutable; sharing is safe)."""
    key = (config.name, False)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = CrossEncoderModel(config)
    return _MODEL_CACHE[key]


def shared_tokenizer(config: ModelConfig) -> Tokenizer:
    if config.vocab_size not in _TOKENIZER_CACHE:
        _TOKENIZER_CACHE[config.vocab_size] = Tokenizer(Vocabulary(config.vocab_size))
    return _TOKENIZER_CACHE[config.vocab_size]


def create_engine(
    system: str,
    model: CrossEncoderModel,
    device,
    threshold: float | None = None,
    prism_config: PrismConfig | None = None,
    numerics: bool = False,
) -> EngineBase:
    """Build one of the five evaluated systems by name."""
    if system == "hf":
        return HFEngine(model, device, numerics=numerics)
    if system == "hf_offload":
        return HFOffloadEngine(model, device, numerics=numerics)
    if system == "hf_quant":
        return HFQuantEngine(model, device, numerics=numerics)
    if system in ("prism", "prism_quant"):
        config = prism_config
        if config is None:
            config = PrismConfig.quant() if system == "prism_quant" else PrismConfig()
        config = replace(config, numerics=numerics)
        if threshold is not None:
            config = config.with_threshold(threshold)
        if system == "prism_quant":
            if not config.quantized:
                config = replace(config, quantized=True)
            return prism_quant_engine(model, device, config)
        return PrismEngine(model, device, config)
    raise KeyError(f"unknown system {system!r}; known: {SYSTEMS}")


@dataclass
class RunStats:
    """Aggregated outcome of one system over one workload."""

    system: str
    model: str
    platform: str
    k: int
    oom: bool = False
    latencies: list[float] = field(default_factory=list)
    precisions: list[float] = field(default_factory=list)
    peak_mib: float = 0.0
    avg_mib: float = 0.0
    io_stall_seconds: float = 0.0
    candidate_layers: int = 0
    full_candidate_layers: int = 0
    timeline: list[TimelinePoint] = field(default_factory=list)
    results: list[RerankResult] = field(default_factory=list)
    #: LRU embedding-cache hit fraction; None when the system has no
    #: cache, or when the cache was never consulted (never 1.0-by-default).
    embedding_hit_rate: float | None = None

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    @property
    def mean_precision(self) -> float:
        return float(np.mean(self.precisions)) if self.precisions else float("nan")

    @property
    def pruned_fraction(self) -> float:
        """Fraction of candidate-layer work avoided versus a full pass."""
        if self.full_candidate_layers == 0:
            return 0.0
        return 1.0 - self.candidate_layers / self.full_candidate_layers


def run_system(
    system: str,
    model_config: ModelConfig,
    platform: str,
    queries: list[RerankQuery],
    k: int,
    threshold: float | None = None,
    prism_config: PrismConfig | None = None,
    numerics: bool = False,
    keep_results: bool = False,
    keep_timeline: bool = False,
) -> RunStats:
    """Run one system over a query workload on a fresh device."""
    if not queries:
        raise ValueError("queries must be non-empty")
    stats = RunStats(system=system, model=model_config.name, platform=platform, k=k)
    device = get_profile(platform).create()
    model = shared_model(model_config)
    tokenizer = shared_tokenizer(model_config)
    engine = create_engine(
        system, model, device, threshold=threshold, prism_config=prism_config, numerics=numerics
    )
    try:
        engine.prepare()
    except OutOfMemoryError:
        stats.oom = True
        return stats

    server = EngineServer(engine)
    request_start = device.clock.now
    try:
        for query in queries:
            batch = build_batch(query, tokenizer, model_config.max_seq_len)
            response = server.submit(SelectionRequest(batch=batch, k=k)).result()
            result = response.result
            assert result is not None  # no deadline/cancel on this path
            stats.latencies.append(result.latency_seconds)
            stats.precisions.append(precision_at_k(result.top_indices, query.labels(), k))
            stats.io_stall_seconds += result.io_stall_seconds
            stats.candidate_layers += result.candidate_layers
            stats.full_candidate_layers += query.num_candidates * model_config.num_layers
            if keep_results:
                stats.results.append(result)
    except OutOfMemoryError:
        stats.oom = True
        return stats

    mem = device.memory.stats()
    stats.peak_mib = mem.peak_bytes / MiB
    stats.avg_mib = mem.avg_bytes / MiB
    cache = getattr(engine, "embedding_cache", None)
    if cache is not None:
        stats.embedding_hit_rate = cache.hit_rate
    if keep_timeline:
        stats.timeline = [
            TimelinePoint(point.time - request_start, point.in_use)
            for point in device.memory.timeline()
            if point.time >= request_start
        ]
    return stats
