"""PRISM reproduction: on-device semantic selection with monolithic forwarding.

This package reproduces *"On-device Semantic Selection Made Low Latency
and Memory Efficient with Monolithic Forwarding"* (EuroSys 2026) as a
self-contained Python library (see DESIGN.md for the substitution map):

* :mod:`repro.core` — PRISM itself: monolithic forwarding with
  progressive cluster pruning, overlapped layer streaming, chunked
  execution and embedding table caching; plus the serving layers
  (self-calibrating service, multi-replica fleet).
* :mod:`repro.baselines` — HF, HF-Offload, HF-Quant comparison engines.
* :mod:`repro.device` — the simulated edge platforms (clock, memory
  tracker, SSD, roofline compute model).
* :mod:`repro.model` — cross-encoder transformer substrate with
  paper-scale cost accounting and reduced-width numerics.
* :mod:`repro.text` — Zipfian vocabulary and deterministic tokenizer.
* :mod:`repro.data` / :mod:`repro.retrieval` — the 18 evaluation
  dataset generators and the hybrid-retrieval stack.
* :mod:`repro.apps` — the three real-world applications (RAG, agent
  memory, long-context selection).
* :mod:`repro.harness` — experiment runner and per-figure entry points.

Quickstart::

    from repro import get_model_config
    from repro.data import get_dataset
    from repro.harness import run_system

    stats = run_system(
        "prism",
        get_model_config("qwen3-reranker-0.6b"),
        "apple_m2",
        get_dataset("wikipedia").queries(4, num_candidates=20),
        k=10,
    )
    print(stats.mean_latency, stats.mean_precision, stats.peak_mib)
"""

from .core.config import PrismConfig
from .core.engine import PrismEngine, RerankResult
from .core.metrics import precision_at_k
from .device.platforms import get_profile, list_profiles
from .model.zoo import ModelConfig, get_model_config, list_models

__version__ = "1.0.0"

__all__ = [
    "ModelConfig",
    "PrismConfig",
    "PrismEngine",
    "RerankResult",
    "__version__",
    "get_model_config",
    "get_profile",
    "list_models",
    "list_profiles",
    "precision_at_k",
]
