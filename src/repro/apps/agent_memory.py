"""Agent Memory application (§6.3, Figures 12 & 13).

The paper's second real-world evaluation is a GUI agent (MobiAgent)
whose *agent memory* caches past successful action trajectories.
Before each action, the agent consults the memory: candidate
trajectories are retrieved and a reranker selects the most semantically
relevant one.  A confident match replays the cached action and skips
the expensive vision-language-model call; a miss falls back to VLM
inference.  The reranker therefore sits on the critical path of every
single action — which is why its latency (Figure 12) and footprint
during one click (Figure 13) matter.

Three systems are compared, as in the paper:

* ``disable`` — no agent memory: every action is a VLM call;
* ``hf``      — agent memory with the vanilla HF reranker;
* ``prism``   — agent memory with PRISM.

Two workloads (``video`` and ``community``) differ in task length and
how often tasks repeat flows already cached in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.api import EngineServer, SelectionRequest
from ..device.memory import CATEGORY_OTHER, MiB, TimelinePoint
from ..device.platforms import get_profile
from ..harness.runner import create_engine, shared_model, shared_tokenizer
from ..model.transformer import CandidateBatch
from ..model.zoo import ModelConfig
from ..retrieval.bm25 import BM25Index
from .llm import MOBIMIND_VLM_7B, RemoteLLM, ServerProfile

#: GUI settle time per action (animation, layout, input dispatch).
ENV_SECONDS_PER_STEP = 1.05
#: Screenshot upload + encode time preceding each VLM call.
SCREEN_UPLOAD_SECONDS = 0.55
#: Prompt/output sizes of one VLM decision call.
VLM_PROMPT_TOKENS = 2600
VLM_OUTPUT_TOKENS = 48
#: Candidate trajectories the memory hands to the reranker per action.
MEMORY_POOL_SIZE = 16
#: Token length of one serialized trajectory (action history + UI state).
TRAJECTORY_TOKENS = 480
#: Reranker input length for memory matching.
MEMORY_SEQ_LEN = 512
#: Probability a non-matching trajectory reads as a strong match
#: (stale flows, near-duplicate screens) — the source of the paper's
#: occasional sub-1.0 task success (Figure 12: 0.994 on community).
AMBIGUOUS_RATE = 0.002
#: Cached trajectory variants per warm topic (daily use accumulates
#: several flows per app, so the memory pool is always well filled).
WARM_VARIANTS = 3
#: Background flows cached from unrelated apps.
WARM_BACKGROUND = 12
#: Signature words per topic (small pool so repeat flows share terms).
SIGNATURE_POOL = 10
#: Reranker score a match must reach to be replayed without the VLM.
ACCEPT_RELEVANCE = 0.70
#: Relevance tiers of memory candidates relative to the current task.
MATCH_RELEVANCE = (0.85, 0.04)
RELATED_RELEVANCE = (0.45, 0.06)
UNRELATED_MEMORY_RELEVANCE = (0.15, 0.05)
#: Bytes of trajectory metadata the memory keeps resident.
MEMORY_STORE_BYTES = 6 * MiB


@dataclass(frozen=True)
class AgentTask:
    """One end-to-end GUI task (e.g. "like the last video")."""

    task_id: int
    topic_id: int
    num_steps: int
    is_repeat: bool  # a flow the memory has already cached
    signature: tuple[str, ...]


@dataclass(frozen=True)
class AgentWorkloadSpec:
    """Task mix of one workload (Figure 12's video/community columns)."""

    name: str
    num_tasks: int
    mean_steps: float
    repeat_rate: float
    num_topics: int
    seed: int


AGENT_WORKLOADS: dict[str, AgentWorkloadSpec] = {
    "video": AgentWorkloadSpec(
        name="video", num_tasks=16, mean_steps=6.0, repeat_rate=0.72, num_topics=10, seed=0xA91
    ),
    "community": AgentWorkloadSpec(
        name="community", num_tasks=16, mean_steps=9.0, repeat_rate=0.78, num_topics=12, seed=0xA92
    ),
}


def _topic_signature(topic_id: int, rng: np.random.Generator, length: int = 6) -> tuple[str, ...]:
    return tuple(
        f"a{topic_id:02d}w{int(rng.integers(SIGNATURE_POOL)):02d}" for _ in range(length)
    )


def generate_tasks(spec: AgentWorkloadSpec) -> list[AgentTask]:
    """Mint the deterministic task sequence of one workload."""
    rng = np.random.default_rng(np.random.SeedSequence([0xA6E27, spec.seed]))
    cached_topics: set[int] = set(range(0, spec.num_topics, 2))  # warm memory
    tasks = []
    for task_id in range(spec.num_tasks):
        if rng.random() < spec.repeat_rate and cached_topics:
            topic = int(rng.choice(sorted(cached_topics)))
            is_repeat = True
        else:
            topic = int(rng.integers(spec.num_topics))
            is_repeat = topic in cached_topics
        cached_topics.add(topic)
        steps = int(np.clip(rng.normal(spec.mean_steps, 1.5), 2, 3 * spec.mean_steps))
        tasks.append(
            AgentTask(
                task_id=task_id,
                topic_id=topic,
                num_steps=steps,
                is_repeat=is_repeat,
                signature=_topic_signature(topic, rng),
            )
        )
    return tasks


@dataclass
class TaskOutcome:
    """Per-task timing/success record."""

    task_id: int
    env_seconds: float
    inference_seconds: float
    rerank_seconds: float
    success: bool
    hit_steps: int
    miss_steps: int

    @property
    def total_seconds(self) -> float:
        return self.env_seconds + self.inference_seconds + self.rerank_seconds


@dataclass
class AgentRunResult:
    """Aggregated outcome over one workload (one Figure 12 bar)."""

    system: str
    workload: str
    tasks: list[TaskOutcome] = field(default_factory=list)
    peak_mib: float = 0.0
    avg_mib: float = 0.0
    timeline: list[TimelinePoint] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return float(np.mean([t.total_seconds for t in self.tasks])) if self.tasks else 0.0

    @property
    def success_rate(self) -> float:
        return float(np.mean([t.success for t in self.tasks])) if self.tasks else 0.0

    def stage_means(self) -> dict[str, float]:
        if not self.tasks:
            return {"env": 0.0, "inference": 0.0, "rerank": 0.0}
        return {
            "env": float(np.mean([t.env_seconds for t in self.tasks])),
            "inference": float(np.mean([t.inference_seconds for t in self.tasks])),
            "rerank": float(np.mean([t.rerank_seconds for t in self.tasks])),
        }

    @property
    def hit_rate(self) -> float:
        hits = sum(t.hit_steps for t in self.tasks)
        total = hits + sum(t.miss_steps for t in self.tasks)
        return hits / total if total else 0.0


class AgentMemoryApp:
    """The GUI agent bound to one reranker system and platform."""

    def __init__(
        self,
        model_config: ModelConfig,
        platform: str,
        system: str = "prism",
        threshold: float | None = None,
        server: ServerProfile | None = None,
    ) -> None:
        if system not in ("disable", "hf", "hf_offload", "hf_quant", "prism", "prism_quant"):
            raise ValueError(f"unknown agent system {system!r}")
        self.system = system
        self.model_config = model_config
        self.device = get_profile(platform).create()

        self.engine = None
        self.server: EngineServer | None = None
        if system != "disable":
            model = shared_model(model_config)
            # The accept decision below compares the winner's *score*
            # against a fixed confidence threshold, so PRISM runs in the
            # exact-score mode of §7: hopeless candidates are pruned but
            # contenders complete the full forward pass, making the
            # returned score the model's true output.
            prism_config = None
            if system in ("prism", "prism_quant"):
                from ..core.config import PrismConfig

                base = PrismConfig.quant() if system == "prism_quant" else PrismConfig()
                from dataclasses import replace as _replace

                prism_config = _replace(base, exact_rank_mode=True)
            self.engine = create_engine(
                system,
                model,
                self.device,
                threshold=threshold,
                prism_config=prism_config,
                numerics=False,
            )
            self.engine.prepare()
            self.server = EngineServer(self.engine)
            self.tokenizer = shared_tokenizer(model_config)
            self.device.memory.alloc("agent/memory-store", MEMORY_STORE_BYTES, CATEGORY_OTHER)
            self._signature_index = BM25Index()
            self._next_traj_id = 0

        # VLM runs on a remote A800 server either way.
        executor = self.engine.executor if self.engine is not None else None
        if executor is None:
            from ..device.executor import DeviceExecutor

            executor = DeviceExecutor(self.device)
        self.vlm = RemoteLLM(MOBIMIND_VLM_7B, executor, server=server)
        self._executor = executor
        self._trajectory_topics: dict[int, int] = {}

    # ------------------------------------------------------------------
    # memory internals
    # ------------------------------------------------------------------
    def _store_trajectory(self, task: AgentTask) -> None:
        """Cache a finished task's trajectory under its signature."""
        traj_id = self._next_traj_id
        self._next_traj_id += 1
        self._signature_index.add(traj_id, task.signature)
        self._trajectory_topics[traj_id] = task.topic_id

    def _warm_memory(self, spec: AgentWorkloadSpec) -> None:
        """Pre-populate memory with the workload's warm topics.

        Daily use leaves several flow variants per app plus background
        flows from other apps, so memory consults always rerank a full
        pool — the regime the paper's Figure 13 measures.
        """
        rng = np.random.default_rng(np.random.SeedSequence([0x3A8, spec.seed]))
        serial = 0
        for topic in range(0, spec.num_topics, 2):
            for _ in range(WARM_VARIANTS):
                serial += 1
                task = AgentTask(
                    task_id=-serial,
                    topic_id=topic,
                    num_steps=1,
                    is_repeat=False,
                    signature=_topic_signature(topic, rng),
                )
                self._store_trajectory(task)
        for _ in range(WARM_BACKGROUND):
            serial += 1
            topic = int(rng.integers(spec.num_topics))
            task = AgentTask(
                task_id=-serial,
                topic_id=topic,
                num_steps=1,
                is_repeat=False,
                signature=_topic_signature(topic, rng),
            )
            self._store_trajectory(task)

    def _memory_candidates(
        self, task: AgentTask, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Retrieve candidate trajectory ids + their true relevance."""
        hits, _ = self._signature_index.search(task.signature, top_n=MEMORY_POOL_SIZE)
        if not hits:
            return None
        ids = [hit.doc_id for hit in hits]
        # Pad the pool with other cached trajectories (the memory always
        # hands the reranker a full pool, §6.3).
        extra = [t for t in self._trajectory_topics if t not in set(ids)]
        rng.shuffle(extra)
        ids.extend(extra[: MEMORY_POOL_SIZE - len(ids)])
        relevance = np.empty(len(ids))
        for i, traj_id in enumerate(ids):
            topic = self._trajectory_topics[traj_id]
            if topic == task.topic_id:
                center, spread = MATCH_RELEVANCE
            else:
                if abs(topic - task.topic_id) == 1:
                    center, spread = RELATED_RELEVANCE
                else:
                    center, spread = UNRELATED_MEMORY_RELEVANCE
                if rng.random() < AMBIGUOUS_RATE:
                    # A stale or near-duplicate flow that genuinely reads
                    # as a strong match — even a perfect reranker can
                    # replay the wrong trajectory here.
                    center, spread = 0.80, 0.04
            relevance[i] = np.clip(rng.normal(center, spread), 0.01, 0.99)
        return np.array(ids, dtype=np.int64), relevance

    def _rerank_memory(self, ids: np.ndarray, relevance: np.ndarray, task: AgentTask):
        """Run the reranker over the memory pool; returns (top uid, score)."""
        assert self.server is not None
        signature_ids = self.tokenizer.encode_text(" ".join(task.signature))
        # Each candidate is a serialized trajectory (action history +
        # UI-state summary), a few hundred tokens long.
        docs = [
            self.tokenizer.encode_synthetic(int(traj_id) + 7_700_000, TRAJECTORY_TOKENS)
            for traj_id in ids
        ]
        tokens = self.tokenizer.batch_pairs(signature_ids, docs, MEMORY_SEQ_LEN)
        batch = CandidateBatch(
            tokens=tokens,
            lengths=self.tokenizer.attention_lengths(tokens),
            relevance=relevance,
            uids=ids + 1_000_000,  # offset into a uid space distinct from docs
        )
        request = SelectionRequest(batch=batch, k=1, metadata={"task_id": task.task_id})
        result = self.server.submit(request).result().result
        assert result is not None  # no deadline/cancel on the app path
        top_pos = int(result.top_indices[0])
        return int(ids[top_pos]), float(result.top_scores[0]), result.latency_seconds

    # ------------------------------------------------------------------
    def run_task(self, task: AgentTask, rng: np.random.Generator) -> TaskOutcome:
        """Execute one task step by step."""
        clock = self.device.clock
        env = inference = rerank = 0.0
        hit_steps = miss_steps = 0
        success = True

        for _ in range(task.num_steps):
            # Memory consult (if enabled) precedes every action.
            replay = False
            if self.engine is not None:
                candidates = self._memory_candidates(task, rng)
                if candidates is not None:
                    ids, relevance = candidates
                    t0 = clock.now
                    top_id, top_score, _ = self._rerank_memory(ids, relevance, task)
                    rerank += clock.now - t0
                    if top_score >= ACCEPT_RELEVANCE:
                        replay = True
                        if self._trajectory_topics[top_id] != task.topic_id:
                            success = False  # replayed the wrong flow

            if replay:
                hit_steps += 1
            else:
                miss_steps += 1
                t0 = clock.now
                clock.advance(SCREEN_UPLOAD_SECONDS)
                self.vlm.generate(VLM_PROMPT_TOKENS, VLM_OUTPUT_TOKENS)
                inference += clock.now - t0

            t0 = clock.now
            clock.advance(ENV_SECONDS_PER_STEP)
            env += clock.now - t0

        if self.engine is not None and not task.is_repeat:
            self._store_trajectory(task)
        return TaskOutcome(
            task_id=task.task_id,
            env_seconds=env,
            inference_seconds=inference,
            rerank_seconds=rerank,
            success=success,
            hit_steps=hit_steps,
            miss_steps=miss_steps,
        )

    # ------------------------------------------------------------------
    def run_workload(self, workload: str, keep_timeline: bool = False) -> AgentRunResult:
        """Run one named workload (``video`` or ``community``)."""
        spec = AGENT_WORKLOADS.get(workload)
        if spec is None:
            raise KeyError(f"unknown workload {workload!r}; known: {sorted(AGENT_WORKLOADS)}")
        if self.engine is not None:
            self._warm_memory(spec)
        tasks = generate_tasks(spec)
        rng = np.random.default_rng(np.random.SeedSequence([0x90D, spec.seed]))
        start = self.device.clock.now
        out = AgentRunResult(system=self.system, workload=workload)
        for task in tasks:
            out.tasks.append(self.run_task(task, rng))
        stats = self.device.memory.stats()
        out.peak_mib = stats.peak_bytes / MiB
        out.avg_mib = stats.avg_bytes / MiB
        if keep_timeline:
            out.timeline = [
                TimelinePoint(p.time - start, p.in_use)
                for p in self.device.memory.timeline()
                if p.time >= start
            ]
        return out
