"""The three real-world applications of §6.3 plus their LLM substrate."""

from .agent_memory import (
    AGENT_WORKLOADS,
    AgentMemoryApp,
    AgentRunResult,
    AgentTask,
    AgentWorkloadSpec,
    TaskOutcome,
    generate_tasks,
)
from .llm import (
    MOBIMIND_VLM_7B,
    QWEN3_4B_INSTRUCT_W4,
    QWEN3_32B,
    GenerationResult,
    LLMSpec,
    OnDeviceLLM,
    RemoteLLM,
    ServerProfile,
)
from .long_context import (
    LongContextApp,
    LongContextRunResult,
    LongContextTask,
    TaskResult,
)
from .long_context import generate_tasks as generate_lcs_tasks
from .rag import RagPipeline, RagQueryResult, RagRunResult

__all__ = [
    "AGENT_WORKLOADS",
    "AgentMemoryApp",
    "AgentRunResult",
    "AgentTask",
    "AgentWorkloadSpec",
    "GenerationResult",
    "LLMSpec",
    "LongContextApp",
    "LongContextRunResult",
    "LongContextTask",
    "MOBIMIND_VLM_7B",
    "OnDeviceLLM",
    "QWEN3_32B",
    "QWEN3_4B_INSTRUCT_W4",
    "RagPipeline",
    "RagQueryResult",
    "RagRunResult",
    "RemoteLLM",
    "ServerProfile",
    "TaskOutcome",
    "TaskResult",
    "generate_lcs_tasks",
    "generate_tasks",
]
