"""LLM Long-Context Selection (§6.3, Figures 14 & 15).

For on-device LLMs handling extended contexts, a top-K selection stage
picks the most relevant context segments so the prompt fits the model's
window and the prefill stays affordable.  The paper evaluates three
systems on LongBench2-style workloads with a Qwen3-Reranker-0.6B
selector and a quantized Qwen3-4B-Instruct generator, both on device:

* ``baseline``  — no reranker: the full (truncated) context is prefilled,
  paying a huge prefill and suffering distraction from irrelevant text;
* ``hf``        — HF reranker selects top-K segments, then generate;
* ``prism``     — PRISM reranker selects top-K segments, then generate.

Reported: end-to-end latency split into rerank and inference
(Figure 14) and the device memory footprint over one generation
(Figure 15).  Answer accuracy is modelled as base model skill scaled by
the coverage of *needed* segments, minus a distraction penalty that
grows with irrelevant prompt tokens — reproducing the paper's ordering
(with-reranker ≳ no-reranker, all close to LongBench2's ~0.32 band).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.api import EngineServer, SelectionRequest
from ..device.memory import MiB, TimelinePoint
from ..device.platforms import get_profile
from ..harness.runner import create_engine, shared_model, shared_tokenizer
from ..model.transformer import CandidateBatch
from ..model.zoo import ModelConfig
from .llm import QWEN3_4B_INSTRUCT_W4, LLMSpec, OnDeviceLLM

#: Accuracy of the generator given a perfectly selected context
#: (LongBench2 is hard; the paper's best system scores 0.328).
BASE_MODEL_ACCURACY = 0.36
#: Accuracy lost per thousand irrelevant prompt tokens (distraction).
DISTRACTION_PER_KTOKEN = 0.0016
#: Segment relevance tiers.  Long documents contain sections that are
#: topically adjacent to the question (mid tier) alongside entirely
#: unrelated ones — the unrelated tier is what progressive cluster
#: pruning can drop early.
NEEDED_RELEVANCE = (0.84, 0.05)
RELATED_SEGMENT_RELEVANCE = (0.46, 0.06)
RELATED_SEGMENT_RATE = 0.30
DISTRACTOR_RELEVANCE = (0.15, 0.05)
#: The generator's context window (tokens).
CONTEXT_WINDOW = 32_768


@dataclass(frozen=True)
class LongContextTask:
    """One long-context QA instance."""

    task_id: int
    num_segments: int
    segment_tokens: int
    needed: tuple[int, ...]  # positions of segments required for the answer
    relevance: np.ndarray  # per-segment true relevance
    question_tokens: int
    answer_tokens: int

    @property
    def total_context_tokens(self) -> int:
        return self.num_segments * self.segment_tokens


def generate_tasks(
    num_tasks: int,
    num_segments: int = 40,
    segment_tokens: int = 500,
    seed: int = 0x1C5,
) -> list[LongContextTask]:
    """Mint a deterministic LongBench-style workload."""
    if num_tasks <= 0:
        raise ValueError("num_tasks must be positive")
    if num_segments <= 0 or segment_tokens <= 0:
        raise ValueError("segment geometry must be positive")
    rng = np.random.default_rng(np.random.SeedSequence([0x7A58, seed]))
    tasks = []
    for task_id in range(num_tasks):
        num_needed = int(rng.integers(2, 5))
        needed = tuple(sorted(rng.choice(num_segments, size=num_needed, replace=False).tolist()))
        relevance = np.empty(num_segments)
        for seg in range(num_segments):
            if seg in needed:
                center, spread = NEEDED_RELEVANCE
            elif rng.random() < RELATED_SEGMENT_RATE:
                center, spread = RELATED_SEGMENT_RELEVANCE
            else:
                center, spread = DISTRACTOR_RELEVANCE
            relevance[seg] = np.clip(rng.normal(center, spread), 0.01, 0.99)
        tasks.append(
            LongContextTask(
                task_id=task_id,
                num_segments=num_segments,
                segment_tokens=segment_tokens,
                needed=needed,
                relevance=relevance,
                question_tokens=int(rng.integers(32, 96)),
                answer_tokens=int(rng.integers(24, 72)),
            )
        )
    return tasks


@dataclass
class TaskResult:
    """Per-task outcome."""

    task_id: int
    rerank_seconds: float
    inference_seconds: float
    coverage: float
    prompt_tokens: int
    correct: bool

    @property
    def total_seconds(self) -> float:
        return self.rerank_seconds + self.inference_seconds


@dataclass
class LongContextRunResult:
    """Aggregated outcome of one system over the workload."""

    system: str
    platform: str
    k_segments: int
    tasks: list[TaskResult] = field(default_factory=list)
    peak_mib: float = 0.0
    avg_mib: float = 0.0
    timeline: list[TimelinePoint] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return float(np.mean([t.total_seconds for t in self.tasks])) if self.tasks else 0.0

    @property
    def mean_rerank_seconds(self) -> float:
        return float(np.mean([t.rerank_seconds for t in self.tasks])) if self.tasks else 0.0

    @property
    def mean_inference_seconds(self) -> float:
        return float(np.mean([t.inference_seconds for t in self.tasks])) if self.tasks else 0.0

    @property
    def accuracy(self) -> float:
        return float(np.mean([t.correct for t in self.tasks])) if self.tasks else 0.0

    @property
    def mean_coverage(self) -> float:
        return float(np.mean([t.coverage for t in self.tasks])) if self.tasks else 0.0


class LongContextApp:
    """Long-context selection bound to one system and platform."""

    def __init__(
        self,
        model_config: ModelConfig,
        platform: str,
        system: str = "prism",
        k_segments: int = 12,
        threshold: float | None = None,
        generator: LLMSpec = QWEN3_4B_INSTRUCT_W4,
    ) -> None:
        if k_segments <= 0:
            raise ValueError("k_segments must be positive")
        if system not in ("baseline", "hf", "hf_offload", "hf_quant", "prism", "prism_quant"):
            raise ValueError(f"unknown LCS system {system!r}")
        self.system = system
        self.platform = platform
        self.k_segments = k_segments
        self.model_config = model_config
        self.device = get_profile(platform).create()

        self.engine = None
        self.server: EngineServer | None = None
        if system != "baseline":
            model = shared_model(model_config)
            self.engine = create_engine(
                system, model, self.device, threshold=threshold, numerics=False
            )
            self.engine.prepare()
            self.server = EngineServer(self.engine)
            self.tokenizer = shared_tokenizer(model_config)
            executor = self.engine.executor
        else:
            from ..device.executor import DeviceExecutor

            executor = DeviceExecutor(self.device)
        self.llm = OnDeviceLLM(generator, executor)
        self.llm.prepare()

    # ------------------------------------------------------------------
    def _segment_batch(self, task: LongContextTask) -> CandidateBatch:
        """Pack the task's segments for the reranker."""
        assert self.engine is not None
        rng_seed = 0x5E6 + task.task_id
        question = self.tokenizer.encode_synthetic(rng_seed, task.question_tokens)
        docs = [
            self.tokenizer.encode_synthetic(rng_seed * 131 + seg, task.segment_tokens)
            for seg in range(task.num_segments)
        ]
        max_len = self.model_config.max_seq_len
        tokens = self.tokenizer.batch_pairs(question, docs, max_len)
        uids = np.arange(task.num_segments, dtype=np.int64) + task.task_id * 10_000
        return CandidateBatch(
            tokens=tokens,
            lengths=self.tokenizer.attention_lengths(tokens),
            relevance=task.relevance,
            uids=uids,
        )

    @staticmethod
    def _coverage(selected: set[int], needed: tuple[int, ...]) -> float:
        if not needed:
            return 1.0
        return len(selected & set(needed)) / len(needed)

    @staticmethod
    def _accuracy_draw(task: LongContextTask, coverage: float, irrelevant_tokens: int) -> bool:
        """Deterministic per-task correctness draw."""
        p = BASE_MODEL_ACCURACY * coverage
        p -= DISTRACTION_PER_KTOKEN * (irrelevant_tokens / 1000.0)
        p = float(np.clip(p, 0.0, 1.0))
        rng = np.random.default_rng(np.random.SeedSequence([0xACC, task.task_id]))
        return bool(rng.random() < p)

    # ------------------------------------------------------------------
    def run_task(self, task: LongContextTask) -> TaskResult:
        clock = self.device.clock
        rerank_seconds = 0.0

        if self.engine is None:
            # Full-context baseline: truncate to the window if needed.
            context = min(task.total_context_tokens, CONTEXT_WINDOW - task.question_tokens)
            segments_kept = context // task.segment_tokens
            selected = set(range(segments_kept))
            coverage = self._coverage(selected, task.needed)
            prompt_tokens = context + task.question_tokens
            needed_tokens = len(task.needed) * task.segment_tokens
            irrelevant = max(0, prompt_tokens - needed_tokens - task.question_tokens)
        else:
            assert self.server is not None
            batch = self._segment_batch(task)
            k = min(self.k_segments, task.num_segments)
            t0 = clock.now
            request = SelectionRequest(batch=batch, k=k, metadata={"task_id": task.task_id})
            result = self.server.submit(request).result().result
            assert result is not None  # no deadline/cancel on the app path
            rerank_seconds = clock.now - t0
            selected = {int(i) for i in result.top_indices}
            coverage = self._coverage(selected, task.needed)
            prompt_tokens = k * task.segment_tokens + task.question_tokens
            covered = int(round(coverage * len(task.needed)))
            irrelevant = (k - covered) * task.segment_tokens

        t0 = clock.now
        self.llm.generate(prompt_tokens, task.answer_tokens)
        inference_seconds = clock.now - t0

        return TaskResult(
            task_id=task.task_id,
            rerank_seconds=rerank_seconds,
            inference_seconds=inference_seconds,
            coverage=coverage,
            prompt_tokens=prompt_tokens,
            correct=self._accuracy_draw(task, coverage, irrelevant),
        )

    # ------------------------------------------------------------------
    def run(self, tasks: list[LongContextTask], keep_timeline: bool = False) -> LongContextRunResult:
        if not tasks:
            raise ValueError("tasks must be non-empty")
        start = self.device.clock.now
        out = LongContextRunResult(
            system=self.system, platform=self.platform, k_segments=self.k_segments
        )
        for task in tasks:
            out.tasks.append(self.run_task(task))
        stats = self.device.memory.stats()
        out.peak_mib = stats.peak_bytes / MiB
        out.avg_mib = stats.avg_bytes / MiB
        if keep_timeline:
            out.timeline = [
                TimelinePoint(p.time - start, p.in_use)
                for p in self.device.memory.timeline()
                if p.time >= start
            ]
        return out
