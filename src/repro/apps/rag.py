"""RAG personal-assistant pipeline (§6.3, Figure 11).

The paper's first real-world evaluation is an on-device smart assistant:
personal data is indexed offline (embeddings into a vector database,
terms into a keyword index); a query runs hybrid search (dense top-10 +
sparse top-10), the reranker consolidates the pool and selects the
top-10 documents, and a Qwen3-32B on a remote two-A800 server generates
the answer.  The reported latency metric is time-to-first-token; the
memory metric is the device's footprint over the request timeline.

This module reproduces that pipeline over the simulated device:

* retrieval arms charge their index-scan costs to the device clock
  (the query embedding's prefill runs on device; its weights are
  memory-mapped rather than resident, so retrieval-phase memory is the
  indexes plus activations — matching the ~50 MiB retrieval stage of
  Figure 1);
* reranking runs one of the evaluated engines (``hf`` … ``prism``);
* generation advances the clock by server prefill + network RTT without
  touching device memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.api import EngineServer, SelectionRequest
from ..core.metrics import precision_at_k
from ..device.memory import CATEGORY_OTHER, MiB, TimelinePoint
from ..device.platforms import get_profile
from ..harness.runner import create_engine, shared_model, shared_tokenizer
from ..model.zoo import ModelConfig
from ..retrieval.corpus import CorpusQuery, SyntheticCorpus
from ..retrieval.hybrid import HybridRetriever
from .llm import QWEN3_32B, LLMSpec, RemoteLLM, ServerProfile

#: Tokens-per-word expansion of the synthetic corpus text.
TOKENS_PER_WORD = 1.3
#: Answer prompt template overhead (instructions, separators).
PROMPT_OVERHEAD_TOKENS = 96
#: Transient activation buffer used by the retrieval stage.
RETRIEVAL_ACTIVATIONS_BYTES = 24 * MiB
#: Generator answer accuracy when every needed document is in context
#: (Figure 11a reports ≈0.82–0.83 end-task accuracy).
BASE_ANSWER_ACCURACY = 0.86


@dataclass
class RagQueryResult:
    """Per-stage outcome of one assistant query."""

    query_id: int
    sparse_seconds: float
    dense_seconds: float
    rerank_seconds: float
    first_token_seconds: float
    precision: float
    pool_recall: float
    pool_size: int
    selected_doc_ids: list[int]
    needed_coverage: float = 1.0
    answer_correct: bool = True

    @property
    def total_seconds(self) -> float:
        return (
            self.sparse_seconds
            + self.dense_seconds
            + self.rerank_seconds
            + self.first_token_seconds
        )


@dataclass
class RagRunResult:
    """Aggregated outcome of a pipeline run (one system, many queries)."""

    system: str
    platform: str
    model: str
    k: int
    queries: list[RagQueryResult] = field(default_factory=list)
    peak_mib: float = 0.0
    avg_mib: float = 0.0
    timeline: list[TimelinePoint] = field(default_factory=list)

    def stage_means(self) -> dict[str, float]:
        if not self.queries:
            return {"sparse": 0.0, "dense": 0.0, "rerank": 0.0, "first_token": 0.0}
        return {
            "sparse": float(np.mean([q.sparse_seconds for q in self.queries])),
            "dense": float(np.mean([q.dense_seconds for q in self.queries])),
            "rerank": float(np.mean([q.rerank_seconds for q in self.queries])),
            "first_token": float(np.mean([q.first_token_seconds for q in self.queries])),
        }

    @property
    def mean_latency(self) -> float:
        return float(np.mean([q.total_seconds for q in self.queries])) if self.queries else 0.0

    @property
    def mean_precision(self) -> float:
        return float(np.mean([q.precision for q in self.queries])) if self.queries else 0.0

    @property
    def accuracy(self) -> float:
        """End-task answer accuracy (the metric of Figure 11a)."""
        return float(np.mean([q.answer_correct for q in self.queries])) if self.queries else 0.0

    @property
    def rerank_share(self) -> float:
        """Fraction of end-to-end latency spent reranking (Figure 1)."""
        total = self.mean_latency
        if total == 0.0:
            return 0.0
        return self.stage_means()["rerank"] / total


class RagPipeline:
    """The assistant pipeline bound to one engine and one platform."""

    def __init__(
        self,
        corpus: SyntheticCorpus,
        model_config: ModelConfig,
        platform: str,
        system: str = "prism",
        k: int = 10,
        per_arm: int = 10,
        threshold: float | None = None,
        index_kind: str = "flat",
        generator: LLMSpec = QWEN3_32B,
        server: ServerProfile | None = None,
        answer_tokens: int = 1,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.corpus = corpus
        self.system = system
        self.platform = platform
        self.k = k
        self.model_config = model_config
        self.answer_tokens = answer_tokens

        self.device = get_profile(platform).create()
        self.retriever = HybridRetriever(corpus, index_kind=index_kind, per_arm=per_arm)
        self.model = shared_model(model_config)
        self.tokenizer = shared_tokenizer(model_config)
        self.engine = create_engine(
            system, self.model, self.device, threshold=threshold, numerics=False
        )
        self.engine.prepare()
        self.server = EngineServer(self.engine)
        self.generator = RemoteLLM(generator, self.engine.executor, server=server)

        # Index residency (built offline; resident at query time).
        memory = self.device.memory
        memory.alloc("rag/bm25-index", self.retriever.bm25.index_bytes(), CATEGORY_OTHER)
        memory.alloc("rag/vector-index", self.retriever.vector_index.memory_bytes(), CATEGORY_OTHER)
        self._request_start = self.device.clock.now

    # ------------------------------------------------------------------
    def answer(self, query: CorpusQuery) -> RagQueryResult:
        """Run one query end to end; returns the stage breakdown."""
        executor = self.engine.executor
        clock = self.device.clock
        memory = self.device.memory

        # --- hybrid retrieval ------------------------------------------
        pool = self.retriever.retrieve(query)
        memory.alloc("rag/retrieval-activations", RETRIEVAL_ACTIVATIONS_BYTES, CATEGORY_OTHER)
        t0 = clock.now
        clock.advance(pool.sparse_seconds)
        t_sparse = clock.now
        # Query embedding prefill runs on device (weights mmap'd).
        query_tokens = max(1, int(len(query.words) * TOKENS_PER_WORD))
        executor.compute(self.retriever.encoder.embed_cost_flops(query_tokens))
        clock.advance(pool.dense_seconds)
        t_dense = clock.now
        memory.free("rag/retrieval-activations")

        # --- reranking ---------------------------------------------------
        batch = self.retriever.build_batch(pool, self.tokenizer, self.model_config.max_seq_len)
        k = min(self.k, pool.size)
        request = SelectionRequest(
            batch=batch, k=k, metadata={"query_id": query.query_id}
        )
        response = self.server.submit(request).result()
        result = response.result
        assert result is not None  # no deadline/cancel on the app path
        t_rerank = clock.now

        # --- generation (remote first token) ----------------------------
        selected = [pool.doc_ids[int(i)] for i in result.top_indices]
        doc_tokens = sum(
            int(len(self.corpus.document(d).words) * TOKENS_PER_WORD) for d in selected
        )
        prompt_tokens = PROMPT_OVERHEAD_TOKENS + query_tokens + doc_tokens
        self.generator.generate(prompt_tokens, self.answer_tokens)
        t_first = clock.now

        precision = precision_at_k(result.top_indices, pool.labels(), k)
        # Answer accuracy: the generator succeeds with probability
        # proportional to how many of the needed documents made it into
        # the prompt (deterministic per-query draw, shared by systems).
        if query.needed:
            coverage = len(set(selected) & set(query.needed)) / len(query.needed)
        else:
            coverage = 1.0
        p_correct = BASE_ANSWER_ACCURACY * coverage
        draw_rng = np.random.default_rng(np.random.SeedSequence([0xA115, query.query_id, 14]))
        answer_correct = bool(draw_rng.random() < p_correct)
        return RagQueryResult(
            query_id=query.query_id,
            sparse_seconds=t_sparse - t0,
            dense_seconds=t_dense - t_sparse,
            rerank_seconds=t_rerank - t_dense,
            first_token_seconds=t_first - t_rerank,
            precision=precision,
            pool_recall=pool.recall(),
            pool_size=pool.size,
            selected_doc_ids=selected,
            needed_coverage=coverage,
            answer_correct=answer_correct,
        )

    # ------------------------------------------------------------------
    def run(self, queries: list[CorpusQuery], keep_timeline: bool = False) -> RagRunResult:
        """Run a query workload and collect the aggregate result."""
        if not queries:
            raise ValueError("queries must be non-empty")
        out = RagRunResult(
            system=self.system,
            platform=self.platform,
            model=self.model_config.name,
            k=self.k,
        )
        for query in queries:
            out.queries.append(self.answer(query))
        stats = self.device.memory.stats()
        out.peak_mib = stats.peak_bytes / MiB
        out.avg_mib = stats.avg_bytes / MiB
        if keep_timeline:
            out.timeline = [
                TimelinePoint(p.time - self._request_start, p.in_use)
                for p in self.device.memory.timeline()
                if p.time >= self._request_start
            ]
        return out
