"""Cost-modelled LLM generation stages for the application pipelines.

The three real-world evaluations (§6.3) surround the reranker with
generator models that are not the system under test:

* **RAG** sends the selected documents to a Qwen3-32B served on a
  two-A800 server — remote generation, so only time (network + server
  prefill/decode) matters to the device;
* **Agent Memory** calls a 7 B vision-language model on an A800 server
  for steps the trajectory cache cannot serve;
* **Long-Context Selection** generates locally with a *quantized
  Qwen3-4B-Instruct* — on-device prefill/decode whose memory share is
  visible in Figure 15.

Both variants charge costs from the same transformer arithmetic as
:mod:`repro.model.costs`: prefill is compute-bound (2·P·T FLOPs),
decode is memory-bandwidth-bound (weights re-read per token).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.executor import DeviceExecutor
from ..device.memory import CATEGORY_KV, CATEGORY_WEIGHTS


@dataclass(frozen=True)
class LLMSpec:
    """Paper-scale description of one generator model."""

    name: str
    num_layers: int
    hidden_dim: int
    ffn_dim: int
    vocab_size: int = 151_669
    dtype_bytes: int = 2
    quantized: bool = False
    num_kv_heads: int = 8
    head_dim: int = 128

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_dim <= 0 or self.ffn_dim <= 0:
            raise ValueError("model dimensions must be positive")

    # ------------------------------------------------------------------
    def layer_params(self) -> int:
        return 4 * self.hidden_dim**2 + 3 * self.hidden_dim * self.ffn_dim

    def params(self) -> int:
        return (
            self.num_layers * self.layer_params()
            + self.vocab_size * self.hidden_dim  # embedding
        )

    def weight_bytes(self) -> int:
        """Resident bytes: 4-bit linear layers when quantized, fp16 else.

        Embedding rows stay fp16 under W4A16 (GPTQ practice)."""
        layers = self.num_layers * self.layer_params()
        embedding = self.vocab_size * self.hidden_dim * self.dtype_bytes
        if self.quantized:
            return layers // 2 + int(layers * self.dtype_bytes * 0.03) + embedding
        return layers * self.dtype_bytes + embedding

    def prefill_flops(self, num_tokens: int) -> float:
        """Dense prefill FLOPs over ``num_tokens`` (2 FLOPs per MAC)."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        matmul = 2.0 * self.num_layers * self.layer_params() * num_tokens
        attention = 4.0 * self.num_layers * num_tokens * num_tokens * self.hidden_dim
        return matmul + attention

    def decode_flops_per_token(self, context_tokens: int) -> float:
        """FLOPs to emit one token against ``context_tokens`` of KV."""
        matmul = 2.0 * self.num_layers * self.layer_params()
        attention = 4.0 * self.num_layers * context_tokens * self.hidden_dim
        return matmul + attention

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes appended per generated/prefilled token."""
        per_layer = 2 * self.num_kv_heads * self.head_dim * self.dtype_bytes
        return self.num_layers * per_layer


#: Qwen3-32B — the RAG answer generator (two-A800 server, §6.3).
QWEN3_32B = LLMSpec(
    name="qwen3-32b", num_layers=64, hidden_dim=5120, ffn_dim=25_600
)

#: Quantized Qwen3-4B-Instruct — the on-device LCS generator (§6.3).
QWEN3_4B_INSTRUCT_W4 = LLMSpec(
    name="qwen3-4b-instruct-w4",
    num_layers=36,
    hidden_dim=2560,
    ffn_dim=9728,
    quantized=True,
)

#: MobiMind-Decider-7B — the agent's VLM (A800 server, §6.3).
MOBIMIND_VLM_7B = LLMSpec(
    name="mobimind-decider-7b", num_layers=28, hidden_dim=3584, ffn_dim=18_944
)


@dataclass
class GenerationResult:
    """Timing breakdown of one generation call."""

    prefill_seconds: float
    decode_seconds: float
    prompt_tokens: int
    output_tokens: int

    @property
    def total_seconds(self) -> float:
        return self.prefill_seconds + self.decode_seconds

    @property
    def first_token_seconds(self) -> float:
        """Latency to the first output token (prefill + one decode step)."""
        if self.output_tokens == 0:
            return self.prefill_seconds
        return self.prefill_seconds + self.decode_seconds / self.output_tokens


class OnDeviceLLM:
    """A generator executing on the simulated edge device.

    ``prepare()`` loads the weights (resident for the app's lifetime);
    ``generate()`` charges prefill compute, grows a KV-cache allocation,
    charges bandwidth-bound decode steps, then frees the KV cache.
    """

    def __init__(self, spec: LLMSpec, executor: DeviceExecutor) -> None:
        self.spec = spec
        self.executor = executor
        self._prepared = False
        self._kv_seq = 0

    def prepare(self) -> None:
        if self._prepared:
            return
        nbytes = self.spec.weight_bytes()
        self.executor.read_blocking(f"load/{self.spec.name}", nbytes)
        self.executor.device.memory.alloc(f"llm/{self.spec.name}", nbytes, CATEGORY_WEIGHTS)
        self._prepared = True

    def release(self) -> None:
        if self._prepared:
            self.executor.device.memory.free(f"llm/{self.spec.name}")
            self._prepared = False

    # ------------------------------------------------------------------
    def generate(self, prompt_tokens: int, output_tokens: int) -> GenerationResult:
        """Prefill the prompt then decode ``output_tokens``."""
        if not self._prepared:
            raise RuntimeError("OnDeviceLLM.generate before prepare()")
        if prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if output_tokens < 0:
            raise ValueError("output_tokens must be non-negative")
        executor = self.executor
        memory = executor.device.memory
        kv_tag = f"llm/{self.spec.name}/kv"

        start = executor.now
        kv_bytes = prompt_tokens * self.spec.kv_bytes_per_token()
        memory.alloc(kv_tag, kv_bytes, CATEGORY_KV)
        executor.compute(
            self.spec.prefill_flops(prompt_tokens),
            bytes_moved=self.spec.weight_bytes(),
            quantized=self.spec.quantized,
        )
        prefill_end = executor.now

        # Decode: each step re-reads the weights (memory-bound) and
        # attends over the growing context.
        context = prompt_tokens
        for _ in range(output_tokens):
            executor.compute(
                self.spec.decode_flops_per_token(context),
                bytes_moved=self.spec.weight_bytes() + context * self.spec.kv_bytes_per_token(),
                quantized=self.spec.quantized,
            )
            context += 1
        decode_end = executor.now
        # Grow the KV allocation to its final size for peak accounting.
        memory.free(kv_tag)
        if output_tokens:
            memory.alloc(kv_tag, context * self.spec.kv_bytes_per_token(), CATEGORY_KV)
            memory.free(kv_tag)

        return GenerationResult(
            prefill_seconds=prefill_end - start,
            decode_seconds=decode_end - prefill_end,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
        )


@dataclass(frozen=True)
class ServerProfile:
    """Throughput of a remote inference server (e.g. 2×A800)."""

    flops_per_second: float = 300e12
    mem_bandwidth: float = 4000e9
    network_rtt: float = 25e-3

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("server throughputs must be positive")
        if self.network_rtt < 0:
            raise ValueError("network_rtt must be non-negative")


class RemoteLLM:
    """A generator served off-device: costs time, not device memory.

    The caller's simulated clock advances by network RTT + server
    compute; nothing is charged to the device memory tracker, matching
    how the paper's RAG/Agent experiments deploy their generators.
    """

    def __init__(
        self, spec: LLMSpec, executor: DeviceExecutor, server: ServerProfile | None = None
    ) -> None:
        self.spec = spec
        self.executor = executor
        self.server = server or ServerProfile()

    def generate(self, prompt_tokens: int, output_tokens: int) -> GenerationResult:
        if prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if output_tokens < 0:
            raise ValueError("output_tokens must be non-negative")
        server = self.server
        prefill = self.spec.prefill_flops(prompt_tokens) / server.flops_per_second
        prefill += server.network_rtt
        decode = 0.0
        context = prompt_tokens
        for _ in range(output_tokens):
            step_bytes = self.spec.weight_bytes() + context * self.spec.kv_bytes_per_token()
            decode += max(
                self.spec.decode_flops_per_token(context) / server.flops_per_second,
                step_bytes / server.mem_bandwidth,
            )
            context += 1
        self.executor.device.clock.advance(prefill + decode)
        return GenerationResult(
            prefill_seconds=prefill,
            decode_seconds=decode,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
        )

    def first_token(self, prompt_tokens: int) -> GenerationResult:
        """Time-to-first-token call (the RAG latency metric, Figure 11a)."""
        return self.generate(prompt_tokens, output_tokens=1)
