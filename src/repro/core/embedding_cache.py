"""Embedding table caching (§4.4).

The full embedding table dominates memory once layers are streamed
(296 MB vs. 60 MB of active layers for Qwen3-Reranker-0.6B), but its
activation is extremely sparse — a 20-document request touches ≤6.75 %
of the vocabulary, and natural-language token usage is Zipf-skewed.
PRISM therefore keeps a small in-memory LRU cache of embedding *rows*
(10 % of the vocabulary by default); misses trigger a synchronous read
of just the missing rows from disk.

``EmbeddingCache`` tracks residency by token id with an ordered dict
(LRU order), charges the fixed cache slab to the memory tracker once,
and reports per-request hit statistics for the ablation study.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..device.executor import DeviceExecutor
from ..device.memory import CATEGORY_EMBEDDING


@dataclass
class CacheLookup:
    """Result of resolving one request's unique tokens."""

    unique_tokens: int
    hits: int
    misses: int
    miss_bytes: int
    io_seconds: float

    @property
    def hit_rate(self) -> float | None:
        """Hit fraction, or ``None`` when the lookup resolved nothing
        (mirrors the FleetStats empty-sample helpers)."""
        if self.unique_tokens == 0:
            return None
        return self.hits / self.unique_tokens


class EmbeddingCache:
    """Fixed-capacity LRU cache over embedding-table rows."""

    def __init__(
        self,
        capacity_rows: int,
        row_nbytes: int,
        executor: DeviceExecutor,
        tag: str = "embedding-cache",
    ) -> None:
        if capacity_rows <= 0:
            raise ValueError("capacity_rows must be positive")
        if row_nbytes <= 0:
            raise ValueError("row_nbytes must be positive")
        self.capacity_rows = capacity_rows
        self.row_nbytes = row_nbytes
        self.executor = executor
        self.tag = tag
        self._resident: OrderedDict[int, None] = OrderedDict()
        self._allocated = False
        self.total_hits = 0
        self.total_misses = 0
        self.total_evictions = 0

    # ------------------------------------------------------------------
    def allocate(self) -> None:
        """Charge the cache slab to the memory tracker (once, at prepare)."""
        if self._allocated:
            return
        self.executor.device.memory.alloc(
            self.tag, self.capacity_rows * self.row_nbytes, CATEGORY_EMBEDDING
        )
        self._allocated = True

    def release(self) -> None:
        if self._allocated:
            self.executor.device.memory.free(self.tag)
            self._allocated = False
            self._resident.clear()

    # ------------------------------------------------------------------
    def lookup(self, token_ids: np.ndarray) -> CacheLookup:
        """Resolve a request's tokens; read missing rows synchronously.

        Misses are batched into a single disk request (the rows are
        gathered in one pass), which together with the small activated
        volume keeps the latency negligible — the ablation in §6.4
        reports ~4 ms.
        """
        if not self._allocated:
            raise RuntimeError("EmbeddingCache.lookup before allocate()")
        unique = np.unique(np.asarray(token_ids).ravel())
        tokens = unique.tolist()
        resident = self._resident
        # One set-based membership pass instead of a per-token probe
        # loop; the LRU touch order over hits is unchanged (ascending
        # unique order, exactly as the loop produced).
        miss_set = set(tokens).difference(resident.keys())
        missing = [token for token in tokens if token in miss_set]
        hits = len(tokens) - len(missing)
        misses = len(missing)
        for token in tokens:
            if token not in miss_set:
                resident.move_to_end(token)

        io_seconds = 0.0
        miss_bytes = len(missing) * self.row_nbytes
        if missing:
            before = self.executor.now
            self.executor.read_blocking(f"{self.tag}/miss", miss_bytes)
            io_seconds = self.executor.now - before
            for token in missing:
                self._admit(token)

        self.total_hits += hits
        self.total_misses += misses
        return CacheLookup(
            unique_tokens=int(unique.size),
            hits=hits,
            misses=misses,
            miss_bytes=miss_bytes,
            io_seconds=io_seconds,
        )

    def _admit(self, token: int) -> None:
        if token in self._resident:
            self._resident.move_to_end(token)
            return
        while len(self._resident) >= self.capacity_rows:
            self._resident.popitem(last=False)
            self.total_evictions += 1
        self._resident[token] = None

    # ------------------------------------------------------------------
    @property
    def resident_rows(self) -> int:
        return len(self._resident)

    def is_resident(self, token: int) -> bool:
        return token in self._resident

    @property
    def hit_rate(self) -> float | None:
        """Lifetime hit fraction, or ``None`` for a never-used cache
        (1.0 would fake a perfect cache in the ablation tables)."""
        total = self.total_hits + self.total_misses
        if total == 0:
            return None
        return self.total_hits / total
