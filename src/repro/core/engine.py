"""Engines: the execution policies under evaluation.

:class:`EngineBase` carries everything shared between PRISM and the
HF-style baselines — cost charging for embedding/layers/classifier and
the result schema.  :class:`PrismEngine` implements monolithic
forwarding (§3.3) with the four techniques of §4 behind the flags of
:class:`~repro.core.config.PrismConfig`.

An engine runs against one simulated :class:`~repro.device.platforms.Device`.
``prepare()`` performs one-time setup (loading resident weights) and is
timed separately from per-request ``rerank()`` latency, matching how
the paper measures steady-state inference.

Execution is *step-based* (DESIGN.md §6): ``start(batch, k)`` returns a
resumable :class:`RerankTask` whose ``step()`` advances exactly one
layer of work, so a :class:`~repro.core.scheduler.DeviceScheduler` can
time-multiplex several in-flight requests on one device at layer
boundaries.  ``rerank()`` remains the thin drive-to-completion loop, so
a solo request executes the exact same operation sequence as before the
refactor (bit-identical results and latencies).
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..device.executor import DeviceExecutor
from ..device.faults import FAULT_REPLICA_CRASH, DeviceFault
from ..device.memory import (
    CATEGORY_EMBEDDING,
    CATEGORY_HIDDEN,
    CATEGORY_INTERMEDIATE,
    CATEGORY_OTHER,
    CATEGORY_WEIGHTS,
    MiB,
)
from ..device.platforms import Device
from ..model import costs
from ..model.transformer import CandidateBatch, CrossEncoderModel, ForwardState
from ..model.weights import WeightStore
from .chunking import HiddenStateRing, choose_chunk_size, iter_chunks, plan_hidden_states
from .config import PrismConfig
from .embedding_cache import EmbeddingCache
from .pruning import ProgressiveClusterPruner, PruneDecision
from .streaming import LayerStreamer, PlanePass, WeightPlane


@dataclass
class PruneEvent:
    """One pruning action recorded by the engine."""

    layer: int
    cv: float
    num_selected: int
    num_dropped: int
    num_deferred: int
    terminal: bool


@dataclass
class RerankResult:
    """Outcome of one reranking request."""

    top_indices: np.ndarray  # pool indices, best-first
    top_scores: np.ndarray  # scores at selection time
    latency_seconds: float
    layers_executed: int
    candidate_layers: int  # Σ over layers of active-candidate count
    io_stall_seconds: float
    prune_events: list[PruneEvent] = field(default_factory=list)
    chunk_size: int | None = None
    terminated_early: bool = False
    #: The ``k`` the caller asked for.  ``rerank()`` clamps ``k`` to the
    #: candidate-pool size; this field keeps the clamp observable instead
    #: of silent (``None`` only for results built outside the task path).
    requested_k: int | None = None

    @property
    def k(self) -> int:
        """Effective K: how many candidates were actually selected."""
        return int(self.top_indices.size)

    @property
    def k_clamped(self) -> bool:
        """Whether the requested K exceeded the pool and was clamped."""
        return self.requested_k is not None and self.requested_k != self.k


@dataclass(frozen=True)
class TaskContext:
    """Per-request namespace for device resources.

    Concurrent tasks share one device, so every transient resource a
    request touches — memory allocations, SSD transfer tags — must be
    namespaced per request or interleaved tasks would collide on the
    trackers' name keyed APIs.  ``request_id`` is unique per engine.

    ``plane_pass`` is the request's cursor into the engine's shared
    :class:`~repro.core.streaming.WeightPlane` (DESIGN.md §7), or
    ``None`` when the engine streams weights privately per request.  It
    is claimed at admission — before the first step — so the plane
    knows every admitted pass still needs layer 0 and cannot free a
    shared buffer under a not-yet-started task's feet.
    """

    request_id: int
    plane_pass: PlanePass | None = None
    #: Refcounted pins on fleet-shared embedding rows (DESIGN.md §12):
    #: appended by the pass's embedding stage, released at the pass
    #: boundary (normal and fault/cancel teardown alike) so the shared
    #: cache never evicts a row under an in-flight reader.  The list is
    #: mutable state inside a frozen record, like a refcount cell.
    embedding_pins: list = field(default_factory=list)

    @property
    def prefix(self) -> str:
        return f"req{self.request_id}/"

    def tag(self, name: str) -> str:
        return self.prefix + name


class RerankTask:
    """Resumable execution of one reranking request (DESIGN.md §6).

    The task wraps an engine-specific generator that performs the
    request's work and yields once per executed transformer layer.
    Each :meth:`step` resumes the generator until its next layer
    boundary, so a scheduler interleaving several tasks preempts only
    at layer boundaries — the clock-coherent preemption points where no
    transient chunk state is live.

    Step anatomy: the request prologue (embedding stage, residency
    planning) runs inside the *first* step, and the finalisation tail
    (classifier over survivors, ordering, teardown) forms the *last*
    step, so a task takes ``layers_executed + 1`` steps in total and no
    simulated work ever happens outside a step.
    """

    def __init__(self, engine: "EngineBase", batch: CandidateBatch, k: int, requested_k: int) -> None:
        self.engine = engine
        self.batch = batch
        self.k = k
        self.requested_k = requested_k
        self.context = TaskContext(engine._claim_request_id(), engine._open_plane_pass())
        self._gen = engine._task_impl(batch, k, self.context)
        self._result: RerankResult | None = None
        self.steps_taken = 0

    @property
    def request_id(self) -> int:
        return self.context.request_id

    @property
    def done(self) -> bool:
        return self._result is not None

    def step(self) -> bool:
        """Advance the task by exactly one layer of work.

        Returns ``True`` once the task has completed (the final step
        runs the finalisation tail).  Stepping a completed task is an
        error — schedulers must consult :attr:`done`.

        Injected device faults (DESIGN.md §9) surface here, at the
        step boundary: a due *stall* freezes the clock for its window
        before the layer runs, and a due *crash* closes the task —
        releasing weight-plane refcounts exactly like a cancel — and
        raises a typed :class:`~repro.device.faults.DeviceFault`.
        """
        if self.done:
            raise RuntimeError("step() on a completed RerankTask")
        faults = self.engine.device.faults
        if faults is not None:
            clock = self.engine.device.clock
            stall = faults.pop_stall(clock.now)
            if stall is not None:
                clock.advance(stall.duration)
            crash = faults.pop_crash(clock.now)
            if crash is not None:
                self.close()
                raise DeviceFault(
                    FAULT_REPLICA_CRASH, at=clock.now, detail=f"req{self.request_id}"
                )
        device = self.engine.device
        before = device.clock.now
        try:
            next(self._gen)
        except StopIteration as stop:
            result: RerankResult = stop.value
            result.requested_k = self.requested_k
            self._result = result
        self.steps_taken += 1
        if device.events is not None:
            device.events.emit(
                "step",
                at=device.clock.now,
                tier="engine",
                request=self.request_id,
                replica=device.events_replica,
                step=self.steps_taken,
                start=before,
                final=self.done,
            )
        return self.done

    @property
    def result(self) -> RerankResult:
        """The finalised result; raises until the last step has run."""
        if self._result is None:
            raise RuntimeError("RerankTask.result before completion")
        return self._result

    def run(self, cancel_at: float | None = None) -> RerankResult | None:
        """Drive the task to completion (the classic blocking pass).

        ``cancel_at`` (absolute device-clock time) cancels the pass at
        its next layer boundary: the task is closed — releasing any
        shared weight-plane refcounts (DESIGN.md §8) — and ``None`` is
        returned.  Without a cancellation instant the result is always
        a :class:`RerankResult`.
        """
        clock = self.engine.device.clock
        while not self.done:
            if cancel_at is not None and clock.now >= cancel_at:
                self.close()
                return None
            try:
                self.step()
            except DeviceFault:
                # The pass died on an injected fault (DESIGN.md §9):
                # tear down like a cancel — close() is idempotent, so
                # a crash that already closed the task is a no-op —
                # and let the typed fault propagate to the caller.
                self.close()
                raise
        return self.result

    def close(self) -> None:
        """Abandon an unfinished task, releasing its shared resources.

        Closing the generator runs the pass's cleanup for tasks that
        already started; for a task that was admitted but never stepped
        the generator body never ran, so the plane pass claimed at
        construction is released explicitly — otherwise an abandoned
        task would pin the weight plane's reap floor at layer 0
        forever.  Idempotent; a no-op on completed tasks.
        """
        if self.done:
            return
        self._gen.close()
        if self.context.plane_pass is not None:
            self.context.plane_pass.fail_pass()


def step_group(tasks: Sequence["RerankTask"]) -> list[bool]:
    """Step a fused gang one layer crossing with batched numerics.

    Convenience wrapper over :meth:`EngineBase.step_group` — every task
    must share one engine (gangs are per-device by construction).
    """
    if not tasks:
        return []
    return tasks[0].engine.step_group(tasks)


class EngineBase:
    """Shared plumbing for all engines."""

    name = "base"

    #: Fixed runtime overhead every engine pays on a real device (CUDA /
    #: Metal context, framework allocator pools, tokenizer tables).
    RUNTIME_BASE_BYTES = 96 * MiB

    def __init__(self, model: CrossEncoderModel, device: Device, quantized: bool = False) -> None:
        self.model = model
        self.device = device
        self.quantized = quantized
        self.executor = DeviceExecutor(device)
        self.store = (
            model.store
            if model.store.quantized == quantized
            else WeightStore(model.config, quantized=quantized)
        )
        self._prepared = False
        self.prepare_seconds = 0.0
        self._request_counter = 0
        #: Shared weight plane (DESIGN.md §7); engines that stream
        #: privately per request leave it ``None``.
        self.weight_plane: WeightPlane | None = None
        #: Batched gang kernels (DESIGN.md §11): under group stepping,
        #: run one stacked forward per layer crossing instead of one
        #: per member.  ``False`` forces the sequential per-member
        #: kernels — the comparator the equivalence tests and the
        #: hot-path microbench run against.
        self.gang_kernels = True
        self._gang_depth = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """One-time setup (resident weights etc.); idempotent."""
        if self._prepared:
            return
        start = self.executor.now
        self.device.memory.alloc(
            f"runtime-base/{self.name}", self.RUNTIME_BASE_BYTES, CATEGORY_OTHER
        )
        self._prepare_impl()
        self.prepare_seconds = self.executor.now - start
        self._prepared = True

    def start(self, batch: CandidateBatch, k: int) -> RerankTask:
        """Admit one request as a resumable :class:`RerankTask`.

        No simulated work happens here — the request prologue runs
        inside the task's first :meth:`RerankTask.step`, so a queued
        task costs nothing until a scheduler actually runs it.  ``k``
        is clamped to the pool size; the requested value is recorded on
        the eventual :class:`RerankResult` (``requested_k``).
        """
        if not self._prepared:
            raise RuntimeError(f"{self.name}: rerank() before prepare()")
        if k <= 0:
            raise ValueError("k must be positive")
        return RerankTask(self, batch, min(k, batch.size), requested_k=k)

    def rerank(self, batch: CandidateBatch, k: int) -> RerankResult:
        """Deprecated: blocking pass over one request.

        Legacy shim for the request-centric API (DESIGN.md §8): it
        wraps the arguments in a :class:`~repro.core.api.SelectionRequest`
        and serves it through an :class:`~repro.core.api.EngineServer`.
        Migrate per ``docs/api.md``; the step API (:meth:`start` /
        :meth:`RerankTask.run`) remains the non-deprecated low-level
        execution path.
        """
        warnings.warn(
            "EngineBase.rerank() is deprecated; submit a SelectionRequest "
            "through repro.core.api.EngineServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .api import EngineServer, SelectionRequest

        response = EngineServer(self).submit(SelectionRequest(batch=batch, k=k)).result()
        assert response.result is not None  # no deadline, no cancel → always ok
        return response.result

    @contextlib.contextmanager
    def gang_step(self):
        """Group-stepping mode (DESIGN.md §11): defer and batch numerics.

        While active, every layer crossing an in-flight task performs
        is deferred into the model's gang pool; a lockstep gang's
        crossings then execute as one stacked forward per layer when
        any member's hidden batch is next read.  Simulated costs,
        events and selections are untouched — only the harness's own
        wall-clock changes.  On final exit the pool is flushed so no
        state outlives the group-stepping window unmaterialised.
        """
        self._gang_depth += 1
        try:
            yield
        finally:
            self._gang_depth -= 1
            if self._gang_depth == 0:
                self.model.flush_deferred()

    def step_group(self, tasks: Sequence[RerankTask]) -> list[bool]:
        """One fused crossing: step every gang member, numerics batched.

        The engine-layer group-step entry point (DESIGN.md §11): each
        member advances exactly one layer of work in the given order —
        identical clock charges, events and step counts to stepping
        them individually — but their layer numerics execute as one
        stacked forward when the group's pool flushes.  Returns each
        member's completion flag, in order.
        """
        for task in tasks:
            if task.engine is not self:
                raise ValueError("step_group: every task must belong to this engine")
        with self.gang_step():
            return [task.step() for task in tasks]

    def _forward_layer(self, state: ForwardState, layer_idx: int) -> None:
        """Cross one layer, deferring into the gang pool under group stepping."""
        defer = self.gang_kernels and self._gang_depth > 0
        self.model.forward_layer(state, layer_idx, defer=defer)

    def _claim_request_id(self) -> int:
        request_id = self._request_counter
        self._request_counter += 1
        return request_id

    def _open_plane_pass(self) -> PlanePass | None:
        """Claim a cursor into the shared weight plane, if one exists.

        Called at task admission; registration performs no simulated
        work (no allocation, no clock movement), so a queued task still
        costs nothing until its first step.
        """
        if self.weight_plane is None:
            return None
        return self.weight_plane.open_pass()

    def _prepare_impl(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _task_impl(self, batch: CandidateBatch, k: int, ctx: TaskContext):  # pragma: no cover
        """Generator performing the request; yields once per layer."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # cost charging (identical across engines; policies differ upstream)
    # ------------------------------------------------------------------
    def _effective_seq_len(self, batch: CandidateBatch) -> int:
        return int(max(1, round(float(batch.lengths.mean()))))

    def _charge_embedding(self, num_candidates: int, seq_len: int) -> None:
        cfg = self.model.config
        flops = num_candidates * costs.embedding_flops_per_candidate(cfg, seq_len)
        bytes_moved = num_candidates * seq_len * costs.embedding_row_bytes(cfg)
        self.executor.compute(flops, bytes_moved)

    def _charge_layer_chunk(self, num_candidates: int, seq_len: int) -> None:
        cfg = self.model.config
        flops = num_candidates * costs.layer_flops_per_candidate(cfg, seq_len)
        bytes_moved = costs.layer_weight_bytes(cfg, self.quantized)
        bytes_moved += num_candidates * costs.intermediate_bytes_per_candidate(cfg, seq_len)
        self.executor.compute(flops, bytes_moved, quantized=self.quantized)

    def _charge_classifier(self, num_candidates: int) -> None:
        flops = num_candidates * costs.classifier_flops_per_candidate(self.model.config)
        self.executor.compute(flops)

    # ------------------------------------------------------------------
    # numerics helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _subset_state(state: ForwardState, positions: np.ndarray) -> ForwardState:
        # Pruning decisions always score first, and score() flushes the
        # gang pool — so a subset never observes a stale hidden batch.
        assert state.pending_layer is None, "subset of an unmaterialised state"
        sub = ForwardState(batch=state.batch.select(positions), layer_done=state.layer_done)
        if state.hidden is not None:
            assert state.sim_lengths is not None
            sub.hidden = state.hidden[positions]
            sub.sim_lengths = state.sim_lengths[positions]
        return sub


class PrismEngine(EngineBase):
    """Monolithic forwarding with progressive cluster pruning, overlapped
    layer streaming, chunked execution and embedding table caching."""

    name = "prism"

    def __init__(
        self,
        model: CrossEncoderModel,
        device: Device,
        config: PrismConfig | None = None,
        embedding_plane=None,
    ) -> None:
        self.config = config or PrismConfig()
        super().__init__(model, device, quantized=self.config.quantized)
        self.pruner = ProgressiveClusterPruner(
            dispersion_threshold=self.config.dispersion_threshold,
            max_clusters=self.config.max_clusters,
            exact_rank_mode=self.config.exact_rank_mode,
        )
        self.embedding_cache: EmbeddingCache | None = None
        #: Fleet-shared embedding residency (DESIGN.md §12): when set,
        #: it replaces the private per-engine cache — one directory
        #: serves every attached replica, with refcounted row pins.
        self.embedding_plane = embedding_plane

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        cfg = self.model.config
        memory = self.device.memory
        memory.alloc("classifier", self.store.classifier_nbytes(), CATEGORY_WEIGHTS)

        if self.config.layer_streaming and self.config.shared_weight_plane:
            self.weight_plane = WeightPlane(self.store, self.executor)

        if self.embedding_plane is not None:
            # Plane-scoped residency (DESIGN.md §12): this device still
            # charges its own fixed slab, but the row directory is
            # shared fleet-wide.
            self.embedding_plane.attach(
                self.executor, cfg.vocab_size, self.store.embedding_row_nbytes()
            )
        elif self.config.embedding_cache:
            capacity = max(1, int(cfg.vocab_size * self.config.embedding_cache_fraction))
            self.embedding_cache = EmbeddingCache(
                capacity_rows=capacity,
                row_nbytes=self.store.embedding_row_nbytes(),
                executor=self.executor,
            )
            self.embedding_cache.allocate()
        else:
            nbytes = self.store.embedding_nbytes()
            self.executor.read_blocking("load/embedding", nbytes)
            memory.alloc("embedding-table", nbytes, CATEGORY_EMBEDDING)

        if not self.config.layer_streaming:
            for layer in range(cfg.num_layers):
                nbytes = self.store.layer_nbytes(layer)
                self.executor.read_blocking(f"load/{self.store.layer_tag(layer)}", nbytes)
                memory.alloc(self.store.layer_tag(layer), nbytes, CATEGORY_WEIGHTS)

    # ------------------------------------------------------------------
    def _task_impl(self, batch: CandidateBatch, k: int, ctx: TaskContext):
        # Weight streaming is per-pass: either a private streamer
        # (namespaced buffers, streams independent of other requests)
        # or a refcounted cursor into the engine's shared WeightPlane
        # (DESIGN.md §7), under which N in-flight requests read each
        # layer from the SSD once instead of N times.
        streamer: LayerStreamer | PlanePass | None = None
        if self.config.layer_streaming:
            streamer = ctx.plane_pass or LayerStreamer(
                self.store, self.executor, tag_prefix=ctx.prefix
            )
            streamer.begin_pass()
        try:
            result = yield from self._pass_impl(batch, k, ctx, streamer)
        except BaseException:
            # A failing pass (OOM under load, a cancelled generator)
            # must drop its plane refcounts, or shared buffers would
            # stay pinned for every surviving request.  Same for the
            # embedding-row pins: a fault/cancel must unpin, or the
            # shared cache could never evict those rows again.
            if streamer is not None:
                streamer.fail_pass()
            for pin in ctx.embedding_pins:
                pin.release()
            raise
        for pin in ctx.embedding_pins:
            pin.release()
        return result

    def _pass_impl(
        self,
        batch: CandidateBatch,
        k: int,
        ctx: TaskContext,
        streamer: LayerStreamer | PlanePass | None,
    ):
        cfg = self.model.config
        prism_cfg = self.config
        executor = self.executor
        memory = self.device.memory
        seq_len = self._effective_seq_len(batch)
        t0, stall0 = executor.now, executor.io_stall_seconds

        # ---------------- embedding stage ------------------------------
        if self.embedding_plane is not None:
            _, pin = self.embedding_plane.lookup(batch.tokens, self.executor)
            ctx.embedding_pins.append(pin)
        elif self.embedding_cache is not None:
            self.embedding_cache.lookup(batch.tokens)
        self._charge_embedding(batch.size, seq_len)
        state = self.model.embed(batch, numerics=prism_cfg.numerics)

        # ---------------- residency plan -------------------------------
        if prism_cfg.chunked_execution:
            chunk_size = choose_chunk_size(
                cfg,
                self.device.profile,
                seq_len,
                batch.size,
                prism_cfg.chunk_memory_budget,
                prism_cfg.min_chunk_compute_window,
            )
        else:
            chunk_size = batch.size
        hidden_plan = plan_hidden_states(
            cfg,
            seq_len,
            batch.size,
            chunk_size,
            prism_cfg.hidden_offload if prism_cfg.chunked_execution else "off",
            prism_cfg.hidden_memory_budget,
        )
        hidden_tag = ctx.tag("hidden")
        ring: HiddenStateRing | None = None
        if hidden_plan.offload:
            ring = HiddenStateRing(
                executor, hidden_plan, batch.size, tag_prefix=ctx.tag("hidden-ring")
            )
            ring.allocate()
        else:
            memory.alloc(
                hidden_tag, batch.size * hidden_plan.per_candidate_bytes, CATEGORY_HIDDEN
            )

        # ---------------- monolithic layer loop ------------------------
        active = np.arange(batch.size)
        selected_idx: list[int] = []
        selected_scores: list[float] = []
        prune_events: list[PruneEvent] = []
        layers_executed = 0
        candidate_layers = 0
        terminated_early = False

        for layer in range(cfg.num_layers):
            slots = k - len(selected_idx)
            if (
                prism_cfg.pruning_enabled
                and layer >= max(1, prism_cfg.min_layers_before_pruning)
                and slots > 0
                and active.size > 0
            ):
                decision = self._pruning_check(state, active, slots)
                if decision.triggered:
                    active, state = self._apply_decision(
                        decision,
                        state,
                        active,
                        batch,
                        selected_idx,
                        selected_scores,
                        hidden_plan,
                        ring,
                        hidden_tag,
                    )
                    prune_events.append(
                        PruneEvent(
                            layer=layer,
                            cv=decision.cv,
                            num_selected=int(decision.selected.size),
                            num_dropped=int(decision.dropped.size),
                            num_deferred=int(active.size),
                            terminal=decision.terminal,
                        )
                    )
                    if decision.terminal or len(selected_idx) >= k:
                        terminated_early = True
                        break

            if active.size == 0:
                terminated_early = True
                break

            if streamer is not None:
                streamer.acquire(layer)

            if ring is not None:
                ring.begin_layer(layer)
            inter_tag = ctx.tag("chunk-intermediates")
            for chunk_no, chunk in enumerate(iter_chunks(int(active.size), chunk_size)):
                if ring is not None:
                    ring.acquire(layer, chunk_no)
                inter_bytes = chunk.size * costs.intermediate_bytes_per_candidate(cfg, seq_len)
                memory.alloc(inter_tag, inter_bytes, CATEGORY_INTERMEDIATE)
                self._charge_layer_chunk(chunk.size, seq_len)
                memory.free(inter_tag)
                if ring is not None:
                    ring.release(layer, chunk_no)

            self._forward_layer(state, layer)
            if streamer is not None:
                streamer.advance(layer)
            layers_executed += 1
            candidate_layers += int(active.size)
            yield layer  # preemption point: one layer advanced

        # ---------------- finalisation ---------------------------------
        slots = k - len(selected_idx)
        if slots > 0 and active.size > 0:
            self._charge_classifier(int(active.size))
            scores = self.model.score(state)
            order = np.argsort(-scores)[:slots]
            selected_idx.extend(int(active[i]) for i in order)
            selected_scores.extend(float(scores[i]) for i in order)
        # A pass that filled k via pruning may end with its last gang
        # crossing still deferred; nobody will read that hidden batch.
        self.model.discard_deferred(state)

        if ring is not None:
            ring.release_all()
        else:
            memory.free(hidden_tag)
        if streamer is not None:
            streamer.finish_pass()
        # Only this request's outstanding transfers (ring write-backs):
        # a concurrent task's prefetches must not become our barrier.
        self.device.ssd.drain(prefix=ctx.prefix)

        return RerankResult(
            top_indices=np.array(selected_idx[:k], dtype=np.int64),
            top_scores=np.array(selected_scores[:k]),
            latency_seconds=executor.now - t0,
            layers_executed=layers_executed,
            candidate_layers=candidate_layers,
            io_stall_seconds=executor.io_stall_seconds - stall0,
            prune_events=prune_events,
            chunk_size=chunk_size,
            terminated_early=terminated_early,
        )

    # ------------------------------------------------------------------
    def _pruning_check(
        self, state: ForwardState, active: np.ndarray, slots: int
    ) -> PruneDecision:
        """Score the active candidates and evaluate the pruning trigger."""
        executor = self.executor
        executor.device.clock.advance(self.config.cv_check_latency)
        self._charge_classifier(int(active.size))
        scores = self.model.score(state)
        decision = self.pruner.decide(scores, slots)
        if decision.clustering is not None:
            executor.device.clock.advance(self.config.clustering_latency)
        return decision

    def _apply_decision(
        self,
        decision: PruneDecision,
        state: ForwardState,
        active: np.ndarray,
        batch: CandidateBatch,
        selected_idx: list[int],
        selected_scores: list[float],
        hidden_plan,
        ring,
        hidden_tag: str = "hidden",
    ) -> tuple[np.ndarray, ForwardState]:
        """Route candidates per the decision; shrink hidden residency."""
        assert state.scores is not None
        for pos in decision.selected:
            selected_idx.append(int(active[pos]))
            selected_scores.append(float(state.scores[pos]))
        if decision.terminal:
            for pos in decision.deferred:
                selected_idx.append(int(active[pos]))
                selected_scores.append(float(state.scores[pos]))
            return np.empty(0, dtype=np.int64), state

        keep = np.sort(decision.deferred)
        new_active = active[keep]
        new_state = self._subset_state(state, keep)
        new_state.scores = state.scores[keep]
        if ring is None and self.device.memory.is_live(hidden_tag):
            self.device.memory.free(hidden_tag)
            self.device.memory.alloc(
                hidden_tag,
                int(new_active.size) * hidden_plan.per_candidate_bytes,
                CATEGORY_HIDDEN,
            )
        return new_active, new_state
