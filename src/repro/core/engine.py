"""Engines: the execution policies under evaluation.

:class:`EngineBase` carries everything shared between PRISM and the
HF-style baselines — cost charging for embedding/layers/classifier and
the result schema.  :class:`PrismEngine` implements monolithic
forwarding (§3.3) with the four techniques of §4 behind the flags of
:class:`~repro.core.config.PrismConfig`.

An engine runs against one simulated :class:`~repro.device.platforms.Device`.
``prepare()`` performs one-time setup (loading resident weights) and is
timed separately from per-request ``rerank()`` latency, matching how
the paper measures steady-state inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.executor import DeviceExecutor
from ..device.memory import (
    CATEGORY_EMBEDDING,
    CATEGORY_HIDDEN,
    CATEGORY_INTERMEDIATE,
    CATEGORY_OTHER,
    CATEGORY_WEIGHTS,
    MiB,
)
from ..device.platforms import Device
from ..model import costs
from ..model.transformer import CandidateBatch, CrossEncoderModel, ForwardState
from ..model.weights import WeightStore
from .chunking import HiddenStateRing, choose_chunk_size, iter_chunks, plan_hidden_states
from .config import PrismConfig
from .embedding_cache import EmbeddingCache
from .pruning import ProgressiveClusterPruner, PruneDecision
from .streaming import LayerStreamer


@dataclass
class PruneEvent:
    """One pruning action recorded by the engine."""

    layer: int
    cv: float
    num_selected: int
    num_dropped: int
    num_deferred: int
    terminal: bool


@dataclass
class RerankResult:
    """Outcome of one reranking request."""

    top_indices: np.ndarray  # pool indices, best-first
    top_scores: np.ndarray  # scores at selection time
    latency_seconds: float
    layers_executed: int
    candidate_layers: int  # Σ over layers of active-candidate count
    io_stall_seconds: float
    prune_events: list[PruneEvent] = field(default_factory=list)
    chunk_size: int | None = None
    terminated_early: bool = False

    @property
    def k(self) -> int:
        return int(self.top_indices.size)


class EngineBase:
    """Shared plumbing for all engines."""

    name = "base"

    #: Fixed runtime overhead every engine pays on a real device (CUDA /
    #: Metal context, framework allocator pools, tokenizer tables).
    RUNTIME_BASE_BYTES = 96 * MiB

    def __init__(self, model: CrossEncoderModel, device: Device, quantized: bool = False) -> None:
        self.model = model
        self.device = device
        self.quantized = quantized
        self.executor = DeviceExecutor(device)
        self.store = (
            model.store
            if model.store.quantized == quantized
            else WeightStore(model.config, quantized=quantized)
        )
        self._prepared = False
        self.prepare_seconds = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """One-time setup (resident weights etc.); idempotent."""
        if self._prepared:
            return
        start = self.executor.now
        self.device.memory.alloc(
            f"runtime-base/{self.name}", self.RUNTIME_BASE_BYTES, CATEGORY_OTHER
        )
        self._prepare_impl()
        self.prepare_seconds = self.executor.now - start
        self._prepared = True

    def rerank(self, batch: CandidateBatch, k: int) -> RerankResult:
        if not self._prepared:
            raise RuntimeError(f"{self.name}: rerank() before prepare()")
        if k <= 0:
            raise ValueError("k must be positive")
        return self._rerank_impl(batch, min(k, batch.size))

    def _prepare_impl(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _rerank_impl(self, batch: CandidateBatch, k: int) -> RerankResult:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # cost charging (identical across engines; policies differ upstream)
    # ------------------------------------------------------------------
    def _effective_seq_len(self, batch: CandidateBatch) -> int:
        return int(max(1, round(float(batch.lengths.mean()))))

    def _charge_embedding(self, num_candidates: int, seq_len: int) -> None:
        cfg = self.model.config
        flops = num_candidates * costs.embedding_flops_per_candidate(cfg, seq_len)
        bytes_moved = num_candidates * seq_len * costs.embedding_row_bytes(cfg)
        self.executor.compute(flops, bytes_moved)

    def _charge_layer_chunk(self, num_candidates: int, seq_len: int) -> None:
        cfg = self.model.config
        flops = num_candidates * costs.layer_flops_per_candidate(cfg, seq_len)
        bytes_moved = costs.layer_weight_bytes(cfg, self.quantized)
        bytes_moved += num_candidates * costs.intermediate_bytes_per_candidate(cfg, seq_len)
        self.executor.compute(flops, bytes_moved, quantized=self.quantized)

    def _charge_classifier(self, num_candidates: int) -> None:
        flops = num_candidates * costs.classifier_flops_per_candidate(self.model.config)
        self.executor.compute(flops)

    # ------------------------------------------------------------------
    # numerics helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _subset_state(state: ForwardState, positions: np.ndarray) -> ForwardState:
        sub = ForwardState(batch=state.batch.select(positions), layer_done=state.layer_done)
        if state.hidden is not None:
            assert state.sim_lengths is not None
            sub.hidden = state.hidden[positions]
            sub.sim_lengths = state.sim_lengths[positions]
        return sub


class PrismEngine(EngineBase):
    """Monolithic forwarding with progressive cluster pruning, overlapped
    layer streaming, chunked execution and embedding table caching."""

    name = "prism"

    def __init__(
        self,
        model: CrossEncoderModel,
        device: Device,
        config: PrismConfig | None = None,
    ) -> None:
        self.config = config or PrismConfig()
        super().__init__(model, device, quantized=self.config.quantized)
        self.pruner = ProgressiveClusterPruner(
            dispersion_threshold=self.config.dispersion_threshold,
            max_clusters=self.config.max_clusters,
            exact_rank_mode=self.config.exact_rank_mode,
        )
        self.streamer: LayerStreamer | None = None
        self.embedding_cache: EmbeddingCache | None = None

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        cfg = self.model.config
        memory = self.device.memory
        memory.alloc("classifier", self.store.classifier_nbytes(), CATEGORY_WEIGHTS)

        if self.config.embedding_cache:
            capacity = max(1, int(cfg.vocab_size * self.config.embedding_cache_fraction))
            self.embedding_cache = EmbeddingCache(
                capacity_rows=capacity,
                row_nbytes=self.store.embedding_row_nbytes(),
                executor=self.executor,
            )
            self.embedding_cache.allocate()
        else:
            nbytes = self.store.embedding_nbytes()
            self.executor.read_blocking("load/embedding", nbytes)
            memory.alloc("embedding-table", nbytes, CATEGORY_EMBEDDING)

        if self.config.layer_streaming:
            self.streamer = LayerStreamer(self.store, self.executor)
        else:
            for layer in range(cfg.num_layers):
                nbytes = self.store.layer_nbytes(layer)
                self.executor.read_blocking(f"load/{self.store.layer_tag(layer)}", nbytes)
                memory.alloc(self.store.layer_tag(layer), nbytes, CATEGORY_WEIGHTS)

    # ------------------------------------------------------------------
    def _rerank_impl(self, batch: CandidateBatch, k: int) -> RerankResult:
        cfg = self.model.config
        prism_cfg = self.config
        executor = self.executor
        memory = self.device.memory
        seq_len = self._effective_seq_len(batch)
        t0, stall0 = executor.now, executor.io_stall_seconds

        if self.streamer is not None:
            self.streamer.begin_pass()

        # ---------------- embedding stage ------------------------------
        if self.embedding_cache is not None:
            self.embedding_cache.lookup(batch.tokens)
        self._charge_embedding(batch.size, seq_len)
        state = self.model.embed(batch, numerics=prism_cfg.numerics)

        # ---------------- residency plan -------------------------------
        if prism_cfg.chunked_execution:
            chunk_size = choose_chunk_size(
                cfg,
                self.device.profile,
                seq_len,
                batch.size,
                prism_cfg.chunk_memory_budget,
                prism_cfg.min_chunk_compute_window,
            )
        else:
            chunk_size = batch.size
        hidden_plan = plan_hidden_states(
            cfg,
            seq_len,
            batch.size,
            chunk_size,
            prism_cfg.hidden_offload if prism_cfg.chunked_execution else "off",
            prism_cfg.hidden_memory_budget,
        )
        ring: HiddenStateRing | None = None
        if hidden_plan.offload:
            ring = HiddenStateRing(executor, hidden_plan, batch.size)
            ring.allocate()
        else:
            memory.alloc(
                "hidden", batch.size * hidden_plan.per_candidate_bytes, CATEGORY_HIDDEN
            )

        # ---------------- monolithic layer loop ------------------------
        active = np.arange(batch.size)
        selected_idx: list[int] = []
        selected_scores: list[float] = []
        prune_events: list[PruneEvent] = []
        layers_executed = 0
        candidate_layers = 0
        terminated_early = False

        for layer in range(cfg.num_layers):
            slots = k - len(selected_idx)
            if (
                prism_cfg.pruning_enabled
                and layer >= max(1, prism_cfg.min_layers_before_pruning)
                and slots > 0
                and active.size > 0
            ):
                decision = self._pruning_check(state, active, slots)
                if decision.triggered:
                    active, state = self._apply_decision(
                        decision,
                        state,
                        active,
                        batch,
                        selected_idx,
                        selected_scores,
                        hidden_plan,
                        ring,
                    )
                    prune_events.append(
                        PruneEvent(
                            layer=layer,
                            cv=decision.cv,
                            num_selected=int(decision.selected.size),
                            num_dropped=int(decision.dropped.size),
                            num_deferred=int(active.size),
                            terminal=decision.terminal,
                        )
                    )
                    if decision.terminal or len(selected_idx) >= k:
                        terminated_early = True
                        break

            if active.size == 0:
                terminated_early = True
                break

            if self.streamer is not None:
                self.streamer.acquire(layer)

            if ring is not None:
                ring.begin_layer(layer)
            for chunk_no, chunk in enumerate(iter_chunks(int(active.size), chunk_size)):
                if ring is not None:
                    ring.acquire(layer, chunk_no)
                inter_bytes = chunk.size * costs.intermediate_bytes_per_candidate(cfg, seq_len)
                memory.alloc("chunk-intermediates", inter_bytes, CATEGORY_INTERMEDIATE)
                self._charge_layer_chunk(chunk.size, seq_len)
                memory.free("chunk-intermediates")
                if ring is not None:
                    ring.release(layer, chunk_no)

            self.model.forward_layer(state, layer)
            if self.streamer is not None:
                self.streamer.advance(layer)
            layers_executed += 1
            candidate_layers += int(active.size)

        # ---------------- finalisation ---------------------------------
        slots = k - len(selected_idx)
        if slots > 0 and active.size > 0:
            self._charge_classifier(int(active.size))
            scores = self.model.score(state)
            order = np.argsort(-scores)[:slots]
            selected_idx.extend(int(active[i]) for i in order)
            selected_scores.extend(float(scores[i]) for i in order)

        if ring is not None:
            ring.release_all()
        else:
            memory.free("hidden")
        if self.streamer is not None:
            self.streamer.finish_pass()
        self.device.ssd.drain()

        return RerankResult(
            top_indices=np.array(selected_idx[:k], dtype=np.int64),
            top_scores=np.array(selected_scores[:k]),
            latency_seconds=executor.now - t0,
            layers_executed=layers_executed,
            candidate_layers=candidate_layers,
            io_stall_seconds=executor.io_stall_seconds - stall0,
            prune_events=prune_events,
            chunk_size=chunk_size,
            terminated_early=terminated_early,
        )

    # ------------------------------------------------------------------
    def _pruning_check(
        self, state: ForwardState, active: np.ndarray, slots: int
    ) -> PruneDecision:
        """Score the active candidates and evaluate the pruning trigger."""
        executor = self.executor
        executor.device.clock.advance(self.config.cv_check_latency)
        self._charge_classifier(int(active.size))
        scores = self.model.score(state)
        decision = self.pruner.decide(scores, slots)
        if decision.clustering is not None:
            executor.device.clock.advance(self.config.clustering_latency)
        return decision

    def _apply_decision(
        self,
        decision: PruneDecision,
        state: ForwardState,
        active: np.ndarray,
        batch: CandidateBatch,
        selected_idx: list[int],
        selected_scores: list[float],
        hidden_plan,
        ring,
    ) -> tuple[np.ndarray, ForwardState]:
        """Route candidates per the decision; shrink hidden residency."""
        assert state.scores is not None
        for pos in decision.selected:
            selected_idx.append(int(active[pos]))
            selected_scores.append(float(state.scores[pos]))
        if decision.terminal:
            for pos in decision.deferred:
                selected_idx.append(int(active[pos]))
                selected_scores.append(float(state.scores[pos]))
            return np.empty(0, dtype=np.int64), state

        keep = np.sort(decision.deferred)
        new_active = active[keep]
        new_state = self._subset_state(state, keep)
        new_state.scores = state.scores[keep]
        if ring is None and self.device.memory.is_live("hidden"):
            self.device.memory.free("hidden")
            self.device.memory.alloc(
                "hidden",
                int(new_active.size) * hidden_plan.per_candidate_bytes,
                CATEGORY_HIDDEN,
            )
        return new_active, new_state
