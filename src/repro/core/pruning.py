"""Progressive cluster pruning (§4.1).

Before each layer, the engine scores the still-active candidates with
the model's classifier and hands the scores here.  The pruner:

1. computes the coefficient of variation CV = |std/mean| of the scores
   and does nothing while CV stays below the dispersion threshold — a
   stable relative ranking has not yet emerged;
2. once the trigger fires, clusters the scores (1-D k-means) and finds
   the **boundary cluster** — the one containing the K-th ranked
   still-needed candidate;
3. routes whole clusters: clusters above the boundary are *selected*
   (their members join the final top-K and stop computing), clusters
   below are *dropped* (no chance of reaching the top-K), the boundary
   cluster itself is *deferred* for further layers;
4. reports a terminal condition when the deferred set exactly fills the
   remaining top-K slots, at which point the forward pass stops.

``exact_rank_mode`` (§7) keeps would-be-selected clusters computing so
the returned winners carry exact final scores; only hopeless clusters
are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .clustering import Clustering, cluster_scores


@dataclass(frozen=True)
class PruneDecision:
    """Outcome of one pruning check over the active candidates.

    Index arrays refer to positions within the *active* score vector
    handed to :meth:`ProgressiveClusterPruner.decide`; the engine maps
    them back to pool candidates.
    """

    triggered: bool
    cv: float
    selected: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    deferred: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    dropped: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    terminal: bool = False
    clustering: Clustering | None = None

    @property
    def pruned_count(self) -> int:
        return int(self.selected.size + self.dropped.size)


def coefficient_of_variation(scores: np.ndarray) -> float:
    """CV = |std/mean| of the provisional scores (§4.1)."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("scores must be non-empty")
    mean = scores.mean()
    if mean == 0.0:
        return np.inf
    return float(abs(scores.std() / mean))


class ProgressiveClusterPruner:
    """Stateless pruning-decision logic (the engine owns the loop state)."""

    def __init__(
        self,
        dispersion_threshold: float,
        max_clusters: int = 6,
        exact_rank_mode: bool = False,
    ) -> None:
        if dispersion_threshold < 0:
            raise ValueError("dispersion_threshold must be non-negative")
        self.dispersion_threshold = dispersion_threshold
        self.max_clusters = max_clusters
        self.exact_rank_mode = exact_rank_mode

    def decide(self, scores: np.ndarray, slots_remaining: int) -> PruneDecision:
        """Evaluate the trigger and, if it fires, route the candidates.

        Parameters
        ----------
        scores:
            Provisional scores of the still-active candidates.
        slots_remaining:
            Top-K slots not yet filled by previously selected candidates.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if slots_remaining <= 0:
            raise ValueError("slots_remaining must be positive while pruning")
        if scores.size <= slots_remaining:
            if self.exact_rank_mode:
                # Every survivor is a contender; in exact mode contenders
                # run to the last layer so their scores are final.
                return PruneDecision(triggered=False, cv=coefficient_of_variation(scores))
            # Everything still active is needed: accept all, terminate.
            order = np.argsort(-scores)
            return PruneDecision(
                triggered=True,
                cv=coefficient_of_variation(scores),
                selected=order.astype(np.int64),
                terminal=True,
            )

        cv = coefficient_of_variation(scores)
        if cv < self.dispersion_threshold:
            return PruneDecision(triggered=False, cv=cv)

        clustering = cluster_scores(scores, max_clusters=self.max_clusters)
        if clustering.num_clusters < 2:
            return PruneDecision(triggered=False, cv=cv, clustering=clustering)

        boundary = self._boundary_cluster(scores, clustering, slots_remaining)
        selected_mask = clustering.labels < boundary
        deferred_mask = clustering.labels == boundary
        dropped_mask = clustering.labels > boundary

        if self.exact_rank_mode:
            # Winners keep computing for exact final scores: fold the
            # would-be-selected clusters into the deferred set.
            deferred_mask |= selected_mask
            selected_mask = np.zeros_like(selected_mask)

        selected = np.flatnonzero(selected_mask).astype(np.int64)
        deferred = np.flatnonzero(deferred_mask).astype(np.int64)
        dropped = np.flatnonzero(dropped_mask).astype(np.int64)
        # Order the selected best-first so the engine can place them.
        selected = selected[np.argsort(-scores[selected])] if selected.size else selected

        # Exact mode never terminates early: contenders must reach the
        # final layer so the returned scores are the model's true output.
        terminal = (not self.exact_rank_mode) and deferred.size == slots_remaining - selected.size
        if terminal:
            deferred = deferred[np.argsort(-scores[deferred])]
        return PruneDecision(
            triggered=True,
            cv=cv,
            selected=selected,
            deferred=deferred,
            dropped=dropped,
            terminal=terminal,
            clustering=clustering,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _boundary_cluster(
        scores: np.ndarray, clustering: Clustering, slots_remaining: int
    ) -> int:
        """Cluster id containing the K-th ranked active candidate."""
        order = np.argsort(-scores)
        kth_candidate = order[slots_remaining - 1]
        return int(clustering.labels[kth_candidate])
