"""Overlapped layer streaming (§4.2) and the shared weight plane (DESIGN.md §7).

Throughout inference only two weight buffers exist: while layer *i*
computes out of one buffer, layer *i+1* prefetches from the SSD into
the other; when layer *i* finishes, its buffer is released and recycled
for layer *i+2*.  The load latency hides entirely under the compute
window whenever the window is long enough (§3.2); when pruning shrinks
the active batch the window can fall short, and the residual wait is
surfaced through the executor's stall accounting (the 81 ms overhead in
Figure 16 is exactly that number).

``LayerStreamer`` owns buffer lifecycle and the prefetch schedule for
*one* pass; the engine calls :meth:`acquire` before computing a layer
and :meth:`advance` after.

``WeightPlane`` is the multi-request generalisation (DESIGN.md §7): one
refcounted, double-buffered set of layer buffers shared by every
in-flight pass on the device.  The first pass to need a layer triggers
the SSD read; later passes *attach* to the already-resident (or
in-flight) buffer for free, and the buffer is freed once every active
pass has advanced past the layer.  Concurrency then amortises — instead
of multiplying — the SSD weight traffic the paper optimises away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.executor import DeviceExecutor
from ..device.faults import DeviceFault
from ..device.memory import CATEGORY_WEIGHTS
from ..model.weights import WeightStore


class LayerStreamer:
    """Double-buffered weight streaming over the simulated SSD."""

    def __init__(
        self,
        store: WeightStore,
        executor: DeviceExecutor,
        lookahead: int = 1,
        tag_prefix: str = "",
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        self.store = store
        self.executor = executor
        self.lookahead = lookahead
        #: Namespace for buffer/transfer tags, so several streamers (one
        #: per in-flight request, DESIGN.md §6) can share one device.
        self.tag_prefix = tag_prefix
        self._resident: set[int] = set()
        self._inflight: set[int] = set()
        self._started = False

    @property
    def num_layers(self) -> int:
        return self.store.config.num_layers

    # ------------------------------------------------------------------
    def begin_pass(self) -> None:
        """Kick off the pass: prefetch layer 0 (and lookahead) async.

        Called at request start so the first loads overlap with the
        embedding stage instead of serialising in front of layer 0.
        """
        if self._started:
            raise RuntimeError("begin_pass called twice without finish")
        self._started = True
        for layer in range(min(1 + self.lookahead, self.num_layers)):
            self._prefetch(layer)

    def acquire(self, layer_idx: int) -> None:
        """Block until ``layer_idx``'s weights are resident; keep the
        pipeline primed by refilling the full lookahead window."""
        if not self._started:
            raise RuntimeError("acquire before begin_pass")
        if layer_idx not in self._resident:
            if layer_idx not in self._inflight:
                self._prefetch(layer_idx)
            self._wait(layer_idx)
        # Refill the *entire* lookahead window, not just its far edge:
        # after an on-demand miss the near slots are empty too, and
        # topping up one slot would leave a lookahead>1 pipeline running
        # at depth 1 for the rest of the pass.
        for nxt in range(layer_idx + 1, min(layer_idx + 1 + self.lookahead, self.num_layers)):
            if nxt not in self._resident and nxt not in self._inflight:
                self._prefetch(nxt)

    def advance(self, layer_idx: int) -> None:
        """Layer finished computing: release its buffer immediately."""
        if layer_idx in self._resident:
            self.executor.device.memory.free(self._buffer_tag(layer_idx))
            self._resident.discard(layer_idx)

    def finish_pass(self) -> None:
        """Tear down after the pass (early-terminated passes included)."""
        for layer in sorted(self._inflight):
            self._wait(layer)
        for layer in sorted(self._resident):
            self.advance(layer)
        self._started = False

    def fail_pass(self) -> None:
        """Tear down after a mid-pass failure; tolerant of any state."""
        if self._started:
            self.finish_pass()

    @property
    def resident_layers(self) -> set[int]:
        return set(self._resident)

    # ------------------------------------------------------------------
    def _buffer_tag(self, layer_idx: int) -> str:
        return f"{self.tag_prefix}stream/{self.store.layer_tag(layer_idx)}"

    def _prefetch(self, layer_idx: int) -> None:
        nbytes = self.store.layer_nbytes(layer_idx)
        # The destination buffer is allocated at issue time: the memory
        # is committed as soon as the DMA starts filling it.
        self.executor.device.memory.alloc(self._buffer_tag(layer_idx), nbytes, CATEGORY_WEIGHTS)
        self.executor.prefetch(self._io_tag(layer_idx), nbytes)
        self._inflight.add(layer_idx)

    def _wait(self, layer_idx: int) -> None:
        try:
            self.executor.wait_io(self._io_tag(layer_idx))
        except DeviceFault:
            # An injected read error (DESIGN.md §9) consumed the
            # transfer: drop the buffer here so the pass teardown
            # (``fail_pass``) finds a consistent streamer state.
            self._inflight.discard(layer_idx)
            self.executor.device.memory.free(self._buffer_tag(layer_idx))
            raise
        self._inflight.discard(layer_idx)
        self._resident.add(layer_idx)

    def _io_tag(self, layer_idx: int) -> str:
        return f"{self.tag_prefix}load/{self.store.layer_tag(layer_idx)}"


# ----------------------------------------------------------------------
# Shared weight plane (DESIGN.md §7)
# ----------------------------------------------------------------------
@dataclass
class PlaneStats:
    """Hit/traffic accounting of one :class:`WeightPlane`."""

    fetches: int = 0  # SSD reads actually issued
    attaches: int = 0  # acquires served from another pass's fetch
    fetched_bytes: int = 0  # bytes read from the SSD
    saved_bytes: int = 0  # redundant bytes *not* read thanks to sharing
    per_layer_fetches: dict[int, int] = field(default_factory=dict)
    per_layer_attaches: dict[int, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.fetches + self.attaches
        return self.attaches / total if total else 0.0


class PlanePass:
    """One pass's cursor into a :class:`WeightPlane`.

    Implements the per-pass protocol of :class:`LayerStreamer`
    (``begin_pass`` / ``acquire`` / ``advance`` / ``finish_pass``) so
    the engine's layer loop is agnostic to whether it streams privately
    or shares the plane.  ``frontier`` is the next layer index this
    pass may still acquire — the plane frees a layer only once *every*
    open pass's frontier has moved past it.
    """

    def __init__(self, plane: "WeightPlane") -> None:
        self.plane = plane
        self.frontier = 0  # next layer this pass may acquire
        self.held: set[int] = set()  # acquired, not yet advanced
        self.open = True
        self._started = False

    def begin_pass(self) -> None:
        if self._started:
            raise RuntimeError("begin_pass called twice without finish")
        if not self.open:
            raise RuntimeError("begin_pass on a closed PlanePass")
        self._started = True
        self.plane._begin(self)

    def acquire(self, layer_idx: int) -> None:
        if not self._started:
            raise RuntimeError("acquire before begin_pass")
        self.plane._acquire(self, layer_idx)
        self.frontier = max(self.frontier, layer_idx)
        self.held.add(layer_idx)

    def advance(self, layer_idx: int) -> None:
        if layer_idx in self.held:
            self.held.discard(layer_idx)
            self.frontier = max(self.frontier, layer_idx + 1)
            self.plane._release(layer_idx)

    def finish_pass(self) -> None:
        for layer in sorted(self.held):
            self.advance(layer)
        self._started = False
        if self.open:
            self.open = False
            self.plane._close(self)

    def fail_pass(self) -> None:
        """Release every held refcount after a mid-pass failure."""
        if self.open:
            self.finish_pass()


class WeightPlane:
    """Refcounted, shared layer-weight buffers for one device (DESIGN.md §7).

    One plane serves every concurrent pass of one engine.  Buffers are
    keyed by layer index and live outside any request's ``req{n}/``
    namespace: the first acquirer triggers the SSD read, later
    acquirers attach for free, and the buffer is freed once no pass
    holds it *and* every open pass has advanced past the layer (the
    refcount-plus-frontier discipline that makes back-to-back fused
    steps share one fetch).  The residency window therefore grows with
    the skew between the slowest and fastest open pass — the fusion
    policy's ``max_skew`` knob exists to bound exactly that.

    A solo pass through the plane issues the identical prefetch/wait/
    free sequence as a private :class:`LayerStreamer`, so solo results
    stay bit-identical (asserted in ``tests/test_weight_plane.py``).
    """

    def __init__(
        self,
        store: WeightStore,
        executor: DeviceExecutor,
        lookahead: int = 1,
        tag_prefix: str = "plane/",
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        self.store = store
        self.executor = executor
        self.lookahead = lookahead
        self.tag_prefix = tag_prefix
        self._resident: set[int] = set()
        self._inflight: set[int] = set()
        self._refcount: dict[int, int] = {}
        self._fetch_owner: dict[int, PlanePass] = {}
        self._passes: list[PlanePass] = []
        self.stats = PlaneStats()

    @property
    def num_layers(self) -> int:
        return self.store.config.num_layers

    @property
    def open_passes(self) -> int:
        return len(self._passes)

    @property
    def resident_layers(self) -> set[int]:
        return set(self._resident)

    def refcount(self, layer_idx: int) -> int:
        return self._refcount.get(layer_idx, 0)

    def open_pass(self) -> PlanePass:
        """Register a pass on the plane (no simulated work happens here).

        Registration is separate from ``begin_pass`` so a scheduler can
        admit several tasks before any of them steps: the plane then
        knows every admitted pass still needs layer 0 and will not free
        it under the first finisher's feet.
        """
        plane_pass = PlanePass(self)
        self._passes.append(plane_pass)
        return plane_pass

    # ------------------------------------------------------------------
    # pass-facing internals
    # ------------------------------------------------------------------
    def _begin(self, plane_pass: PlanePass) -> None:
        for layer in range(min(1 + self.lookahead, self.num_layers)):
            if layer not in self._resident and layer not in self._inflight:
                self._prefetch(plane_pass, layer)

    def _acquire(self, plane_pass: PlanePass, layer_idx: int) -> None:
        nbytes = self.store.layer_nbytes(layer_idx)
        if layer_idx in self._resident or layer_idx in self._inflight:
            if self._fetch_owner.get(layer_idx) is not plane_pass:
                self.stats.attaches += 1
                self.stats.saved_bytes += nbytes
                per_layer = self.stats.per_layer_attaches
                per_layer[layer_idx] = per_layer.get(layer_idx, 0) + 1
                self._emit("attach", layer=layer_idx, nbytes=nbytes)
        else:
            self._prefetch(plane_pass, layer_idx)
        if layer_idx in self._inflight:
            self._wait(layer_idx)
        self._refcount[layer_idx] = self._refcount.get(layer_idx, 0) + 1
        self._emit("acquire", layer=layer_idx, refcount=self._refcount[layer_idx])
        # Refill the full lookahead window (same discipline as
        # LayerStreamer.acquire), fetching only what nobody has yet.
        for nxt in range(layer_idx + 1, min(layer_idx + 1 + self.lookahead, self.num_layers)):
            if nxt not in self._resident and nxt not in self._inflight:
                self._prefetch(plane_pass, nxt)

    def _release(self, layer_idx: int) -> None:
        count = self._refcount.get(layer_idx, 0)
        if count <= 0:
            raise RuntimeError(f"release of unheld plane layer {layer_idx}")
        self._refcount[layer_idx] = count - 1
        self._emit("release", layer=layer_idx, refcount=count - 1)
        self._reap()

    def _emit(self, kind: str, **data) -> None:
        """Publish a plane event (DESIGN.md §10); no-op without a sink."""
        device = self.executor.device
        if device.events is not None:
            device.events.emit(
                kind,
                at=device.clock.now,
                tier="plane",
                replica=device.events_replica,
                **data,
            )

    def _close(self, plane_pass: PlanePass) -> None:
        self._passes.remove(plane_pass)
        self._reap()
        if not self._passes:
            # Last pass out: join in-flight prefetches and free what is
            # left so the device ends the wave with no stream buffers —
            # the plane analogue of LayerStreamer.finish_pass.
            for layer in sorted(self._inflight):
                self._wait(layer)
            self._reap()

    # ------------------------------------------------------------------
    def _min_frontier(self) -> int:
        """The lowest layer any open pass may still acquire."""
        if not self._passes:
            return self.num_layers
        return min(p.frontier for p in self._passes)

    def _reap(self) -> None:
        """Free resident buffers nobody holds or can still need."""
        floor = self._min_frontier()
        for layer in sorted(self._resident):
            if self._refcount.get(layer, 0) == 0 and layer < floor:
                self.executor.device.memory.free(self._buffer_tag(layer))
                self._resident.discard(layer)
                self._fetch_owner.pop(layer, None)
                self._refcount.pop(layer, None)

    def _prefetch(self, plane_pass: PlanePass, layer_idx: int) -> None:
        nbytes = self.store.layer_nbytes(layer_idx)
        self.executor.device.memory.alloc(self._buffer_tag(layer_idx), nbytes, CATEGORY_WEIGHTS)
        self.executor.prefetch(self._io_tag(layer_idx), nbytes)
        self._inflight.add(layer_idx)
        self._fetch_owner[layer_idx] = plane_pass
        self.stats.fetches += 1
        self.stats.fetched_bytes += nbytes
        per_layer = self.stats.per_layer_fetches
        per_layer[layer_idx] = per_layer.get(layer_idx, 0) + 1

    def _wait(self, layer_idx: int) -> None:
        try:
            self.executor.wait_io(self._io_tag(layer_idx))
        except DeviceFault:
            # A faulted fetch never becomes resident.  No pass holds a
            # refcount on an in-flight layer (counts are taken *after*
            # the wait), so the buffer can be dropped unconditionally.
            self._inflight.discard(layer_idx)
            self.executor.device.memory.free(self._buffer_tag(layer_idx))
            self._fetch_owner.pop(layer_idx, None)
            raise
        self._inflight.discard(layer_idx)
        self._resident.add(layer_idx)

    def _buffer_tag(self, layer_idx: int) -> str:
        return f"{self.tag_prefix}stream/{self.store.layer_tag(layer_idx)}"

    def _io_tag(self, layer_idx: int) -> str:
        return f"{self.tag_prefix}load/{self.store.layer_tag(layer_idx)}"
