"""Overlapped layer streaming (§4.2).

Throughout inference only two weight buffers exist: while layer *i*
computes out of one buffer, layer *i+1* prefetches from the SSD into
the other; when layer *i* finishes, its buffer is released and recycled
for layer *i+2*.  The load latency hides entirely under the compute
window whenever the window is long enough (§3.2); when pruning shrinks
the active batch the window can fall short, and the residual wait is
surfaced through the executor's stall accounting (the 81 ms overhead in
Figure 16 is exactly that number).

``LayerStreamer`` owns buffer lifecycle and the prefetch schedule; the
engine calls :meth:`acquire` before computing a layer and
:meth:`advance` after.
"""

from __future__ import annotations

from ..device.executor import DeviceExecutor
from ..device.memory import CATEGORY_WEIGHTS
from ..model.weights import WeightStore


class LayerStreamer:
    """Double-buffered weight streaming over the simulated SSD."""

    def __init__(
        self,
        store: WeightStore,
        executor: DeviceExecutor,
        lookahead: int = 1,
        tag_prefix: str = "",
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        self.store = store
        self.executor = executor
        self.lookahead = lookahead
        #: Namespace for buffer/transfer tags, so several streamers (one
        #: per in-flight request, DESIGN.md §6) can share one device.
        self.tag_prefix = tag_prefix
        self._resident: set[int] = set()
        self._inflight: set[int] = set()
        self._started = False

    @property
    def num_layers(self) -> int:
        return self.store.config.num_layers

    # ------------------------------------------------------------------
    def begin_pass(self) -> None:
        """Kick off the pass: prefetch layer 0 (and lookahead) async.

        Called at request start so the first loads overlap with the
        embedding stage instead of serialising in front of layer 0.
        """
        if self._started:
            raise RuntimeError("begin_pass called twice without finish")
        self._started = True
        for layer in range(min(1 + self.lookahead, self.num_layers)):
            self._prefetch(layer)

    def acquire(self, layer_idx: int) -> None:
        """Block until ``layer_idx``'s weights are resident; keep the
        pipeline primed by prefetching the next lookahead layer."""
        if not self._started:
            raise RuntimeError("acquire before begin_pass")
        if layer_idx not in self._resident:
            if layer_idx not in self._inflight:
                self._prefetch(layer_idx)
            self._wait(layer_idx)
        nxt = layer_idx + self.lookahead
        if nxt < self.num_layers and nxt not in self._resident and nxt not in self._inflight:
            self._prefetch(nxt)

    def advance(self, layer_idx: int) -> None:
        """Layer finished computing: release its buffer immediately."""
        if layer_idx in self._resident:
            self.executor.device.memory.free(self._buffer_tag(layer_idx))
            self._resident.discard(layer_idx)

    def finish_pass(self) -> None:
        """Tear down after the pass (early-terminated passes included)."""
        for layer in list(self._inflight):
            self._wait(layer)
        for layer in list(self._resident):
            self.advance(layer)
        self._started = False

    @property
    def resident_layers(self) -> set[int]:
        return set(self._resident)

    # ------------------------------------------------------------------
    def _buffer_tag(self, layer_idx: int) -> str:
        return f"{self.tag_prefix}stream/{self.store.layer_tag(layer_idx)}"

    def _prefetch(self, layer_idx: int) -> None:
        nbytes = self.store.layer_nbytes(layer_idx)
        # The destination buffer is allocated at issue time: the memory
        # is committed as soon as the DMA starts filling it.
        self.executor.device.memory.alloc(self._buffer_tag(layer_idx), nbytes, CATEGORY_WEIGHTS)
        self.executor.prefetch(self._io_tag(layer_idx), nbytes)
        self._inflight.add(layer_idx)

    def _wait(self, layer_idx: int) -> None:
        self.executor.wait_io(self._io_tag(layer_idx))
        self._inflight.discard(layer_idx)
        self._resident.add(layer_idx)

    def _io_tag(self, layer_idx: int) -> str:
        return f"{self.tag_prefix}load/{self.store.layer_tag(layer_idx)}"
