"""The resilience plane: health, failover, hedging, autoscaling (DESIGN.md §9).

The serving stack below this module is a fair-weather system — every
pass succeeds, every replica lives forever, fleet size is fixed at
construction.  This module adds the machinery that keeps selections
flowing when the hardware misbehaves:

* **Fault plane** — re-exported from :mod:`repro.device.faults`: a
  :class:`FaultPlan` of clock-scheduled :class:`FaultEvent`\\ s
  (SSD read error, degraded bandwidth, replica stall, replica crash)
  compiles into per-device :class:`FaultInjector`\\ s whose faults
  surface as typed :class:`DeviceFault`\\ s at layer boundaries,
  releasing shared weight-plane refcounts exactly like a cancel.
* **Health** — :class:`ReplicaHealth` tracks an EWMA of per-step
  service latency plus a consecutive-failure count per replica;
  :class:`ResilienceConfig` turns those probes into an unhealthy mark
  with a cooldown, and bounds failover retries.
* **Autoscaling** — :class:`AutoscalerConfig` drives the fleet's
  queue-depth/utilisation controller; every action is recorded as a
  :class:`ScalingEvent` so capacity over time is an observable, not a
  side effect.

The enforcement lives in :class:`~repro.core.fleet.FleetService`
(failover, hedging, scaling) and
:class:`~repro.core.scheduler.DeviceScheduler` (fault containment on
one device); this module owns the *policy* objects so they can be
validated, shared and serialised independently of any fleet instance.
With no plan installed and no autoscaler configured, every code path
is byte-identical to the fault-free stack (asserted in
``tests/test_resilience_plane.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.faults import (
    FAULT_BANDWIDTH_DEGRADATION,
    FAULT_KINDS,
    FAULT_REPLICA_CRASH,
    FAULT_REPLICA_STALL,
    FAULT_SSD_READ_ERROR,
    DeviceFault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)

__all__ = [
    "FAULT_BANDWIDTH_DEGRADATION",
    "FAULT_KINDS",
    "FAULT_REPLICA_CRASH",
    "FAULT_REPLICA_STALL",
    "FAULT_SSD_READ_ERROR",
    "AutoscalerConfig",
    "DeviceFault",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ReplicaHealth",
    "ResilienceConfig",
    "ScalingEvent",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Health-probe and failover knobs of a fleet (DESIGN.md §9).

    Parameters
    ----------
    max_retries:
        Most failover re-dispatches one request may consume after its
        first attempt; a request exhausting them is dropped with
        reason ``"failed"`` rather than retried forever.
    failure_threshold:
        Consecutive failures that mark a replica unhealthy.
    cooldown_s:
        How long (fleet time) an unhealthy replica is excluded from
        routing before it may serve again — the restart/repair window.
    health_alpha:
        Smoothing factor of the per-replica EWMA of *step* latency
        (service seconds per executed layer step).
    latency_degradation_factor:
        Optional slow-replica probe: a replica whose step-latency EWMA
        exceeds ``factor ×`` the median of its peers is marked
        unhealthy for ``cooldown_s`` (catches stalls and degraded
        bandwidth that never raise a fault).  ``None`` disables it.
    """

    max_retries: int = 2
    failure_threshold: int = 1
    cooldown_s: float = 1.0
    health_alpha: float = 0.25
    latency_degradation_factor: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if not 0 < self.health_alpha <= 1:
            raise ValueError("health_alpha must lie in (0, 1]")
        if (
            self.latency_degradation_factor is not None
            and self.latency_degradation_factor <= 1
        ):
            raise ValueError("latency_degradation_factor must exceed 1")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Queue-depth/utilisation scaling controller knobs (DESIGN.md §9).

    Parameters
    ----------
    min_replicas / max_replicas:
        Hard bounds on the live (non-retired) replica count.
    scale_up_queue_depth:
        Scale up when the outstanding work — admission queue plus the
        replicas' backlog expressed in requests (backlog seconds over
        the per-request latency estimate) — exceeds this many requests
        *per routable replica*.
    scale_down_idle_s:
        Retire a replica that has been idle this long while the queue
        is empty (never below ``min_replicas``).
    warmup_s:
        Clock charge between the scale-up decision and the new
        replica's first dispatch — provisioning is never free.
    action_cooldown_s:
        Minimum fleet time between two scaling actions, so one burst
        cannot thrash the controller.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_queue_depth: int = 4
    scale_down_idle_s: float = 1.0
    warmup_s: float = 0.5
    action_cooldown_s: float = 0.25

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.scale_up_queue_depth < 1:
            raise ValueError("scale_up_queue_depth must be >= 1")
        if self.scale_down_idle_s < 0:
            raise ValueError("scale_down_idle_s must be >= 0")
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be >= 0")
        if self.action_cooldown_s < 0:
            raise ValueError("action_cooldown_s must be >= 0")


@dataclass
class ReplicaHealth:
    """The coordinator's health view of one replica (DESIGN.md §9).

    All instants are on the fleet time axis.  ``ewma_step_latency``
    smooths the per-layer-step service latency of completed requests —
    a probe that degrades visibly under stalls and bandwidth faults
    even when no request outright fails.
    """

    ewma_step_latency: float = 0.0
    samples: int = 0
    consecutive_failures: int = 0
    failures: int = 0
    unhealthy_marks: int = 0
    unhealthy_until: float = 0.0

    def healthy(self, now: float) -> bool:
        return now >= self.unhealthy_until

    def record_success(self, step_latency: float, alpha: float) -> None:
        """Fold one completed request's per-step latency into the EWMA."""
        self.consecutive_failures = 0
        if self.samples == 0:
            self.ewma_step_latency = step_latency
        else:
            self.ewma_step_latency += alpha * (step_latency - self.ewma_step_latency)
        self.samples += 1

    def record_failure(self, now: float, config: ResilienceConfig) -> bool:
        """Count one failure; returns True if the replica just went unhealthy."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.consecutive_failures >= config.failure_threshold:
            self.mark_unhealthy(now, config.cooldown_s)
            return True
        return False

    def mark_unhealthy(self, now: float, cooldown_s: float) -> None:
        self.unhealthy_marks += 1
        self.unhealthy_until = max(self.unhealthy_until, now + cooldown_s)
        self.consecutive_failures = 0


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action on the fleet time axis."""

    at: float
    action: str  # "scale_up" | "scale_down"
    replica: int  # index of the replica added or retired
    num_active: int  # live replica count *after* the action
    reason: str  # "queue_depth" | "idle"
