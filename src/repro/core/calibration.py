"""Dispersion-threshold auto-calibration (§4.1).

The dispersion threshold trades precision for latency.  Instead of
hand-tuning it, PRISM lets the user specify a minimum precision target;
the system then (a) samples live requests and logs their pruned top-K
results, (b) re-executes the sampled requests *without pruning* while
the device is idle to obtain ground truth, (c) compares, and (d) walks
the threshold: raise it when sampled precision falls below the target,
lower it when there is headroom — converging to the lowest (fastest)
threshold that meets the constraint.

``ThresholdCalibrator`` implements that feedback loop over the
simulator.  The "idle-time ground-truth re-execution" is an unpruned
engine run over the same batches; its cost is *not* charged to request
latency, mirroring the paper's background execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.platforms import DeviceProfile
from ..model.transformer import CandidateBatch, CrossEncoderModel
from .config import PrismConfig
from .engine import PrismEngine
from .metrics import top_k_overlap


@dataclass
class CalibrationStep:
    """One round of the feedback loop."""

    threshold: float
    sampled_precision: float
    met_target: bool


@dataclass
class CalibrationResult:
    """Outcome of a calibration run."""

    threshold: float
    history: list[CalibrationStep] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.history)


class ThresholdCalibrator:
    """Feedback controller for the dispersion threshold.

    Parameters
    ----------
    model / profile:
        The reranker and target platform; each evaluation round runs on
        a fresh simulated device so rounds are independent.
    precision_target:
        Minimum acceptable agreement between pruned and unpruned top-K
        sets (the paper's "minimum precision target" mode measures
        sampled requests against ground truth; with full re-execution
        available in simulation, agreement *is* that precision).
    """

    def __init__(
        self,
        model: CrossEncoderModel,
        profile: DeviceProfile,
        precision_target: float = 0.95,
        step: float = 0.05,
        max_rounds: int = 12,
    ) -> None:
        if not 0 < precision_target <= 1:
            raise ValueError("precision_target must lie in (0, 1]")
        if step <= 0:
            raise ValueError("step must be positive")
        self.model = model
        self.profile = profile
        self.precision_target = precision_target
        self.step = step
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def calibrate(
        self,
        sample_batches: list[CandidateBatch],
        k: int,
        base_config: PrismConfig | None = None,
        initial_threshold: float | None = None,
    ) -> CalibrationResult:
        """Run the loop over logged sample requests; returns the tuned value."""
        if not sample_batches:
            raise ValueError("need at least one sample batch")
        config = base_config or PrismConfig()
        threshold = (
            initial_threshold if initial_threshold is not None else config.dispersion_threshold
        )
        ground_truth = [self._ground_truth(batch, k, config) for batch in sample_batches]

        history: list[CalibrationStep] = []
        best_meeting: float | None = None
        for _ in range(self.max_rounds):
            precision = self._sampled_precision(
                sample_batches, ground_truth, k, config.with_threshold(threshold)
            )
            met = precision >= self.precision_target
            history.append(CalibrationStep(threshold, precision, met))
            if met:
                # Headroom: remember this safe point, try a lower
                # (faster) threshold.
                best_meeting = threshold
                next_threshold = threshold - self.step
                if next_threshold <= 0:
                    break
                threshold = next_threshold
            else:
                # Below target: back off upward.
                threshold = threshold + self.step
                if best_meeting is not None and threshold >= best_meeting:
                    # We already know this level is safe; converged.
                    threshold = best_meeting
                    break
        final = best_meeting if best_meeting is not None else threshold
        return CalibrationResult(threshold=float(final), history=history)

    # ------------------------------------------------------------------
    def _ground_truth(self, batch: CandidateBatch, k: int, config: PrismConfig) -> np.ndarray:
        """Idle-time full inference (no pruning) over a logged request."""
        from dataclasses import replace

        device = self.profile.create()
        engine = PrismEngine(
            self.model, device, replace(config, pruning_enabled=False, numerics=False)
        )
        engine.prepare()
        return engine.start(batch, k).run().top_indices

    def _sampled_precision(
        self,
        batches: list[CandidateBatch],
        ground_truth: list[np.ndarray],
        k: int,
        config: PrismConfig,
    ) -> float:
        from dataclasses import replace

        device = self.profile.create()
        engine = PrismEngine(self.model, device, replace(config, numerics=False))
        engine.prepare()
        overlaps = []
        for batch, truth in zip(batches, ground_truth):
            result = engine.start(batch, k).run()
            overlaps.append(top_k_overlap(result.top_indices, truth, k))
        return float(np.mean(overlaps))
