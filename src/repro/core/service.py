"""Online serving with self-calibrating threshold (§4.1, deployed mode).

The paper's production story for the dispersion threshold: the user
states a minimum precision target; the system *samples requests at a
frequency and logs their top-K results; when the device is idle, it
re-executes full inference (without pruning) to obtain the ground
truth*, compares, and walks the threshold — up when sampled precision
falls below the target, down when there is headroom.

:class:`SemanticSelectionService` implements that loop around a live
:class:`~repro.core.engine.PrismEngine`:

* :meth:`select` serves requests at the current threshold, logging a
  deterministic ``sample_rate`` fraction of them;
* :meth:`select_concurrent` serves a wave of requests through the
  step-multiplexing :class:`~repro.core.scheduler.DeviceScheduler`
  (DESIGN.md §6): up to ``max_concurrency`` requests share the device,
  interleaved at layer boundaries, with the same deterministic
  :class:`SampleStride` feeding the idle-check log;
* :meth:`idle_maintenance` models the device-idle background pass — it
  replays the logged requests unpruned on a *shadow* device (so the
  serving clock and memory are untouched), measures top-K agreement,
  and applies one §4.1 threshold step.

The controller is deliberately incremental (one step per idle pass),
matching the paper's description, rather than re-running the full
offline search of :class:`~repro.core.calibration.ThresholdCalibrator`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from typing import TYPE_CHECKING, Sequence

from ..device.platforms import Device, DeviceProfile
from ..model.transformer import CandidateBatch, CrossEncoderModel
from .config import PrismConfig
from .data_plane import DataPlane, SharedEmbeddingCache, clone_result
from .engine import PrismEngine, RerankResult
from .metrics import top_k_overlap
from .scheduler import (
    LANE_BATCH,
    DeviceScheduler,
    DroppedRequest,
    ScheduledOutcome,
    SchedulerConfig,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports service)
    from .api import SelectionRequest


class SampleStride:
    """Deterministic request-sampling stride.

    Accumulates ``rate`` per request and trips each time the
    accumulator crosses 1.0, so exactly ``rate`` of requests are
    admitted with no RNG and no float drift at ``rate=1.0``.  Shared
    by the single-device service and the fleet admission layer so the
    two can never diverge on stride semantics.
    """

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.accumulator = 0.0

    def admit(self) -> bool:
        self.accumulator += self.rate
        if self.accumulator >= 1.0:
            self.accumulator -= 1.0
            return True
        return False


@dataclass
class SampledRequest:
    """One logged request awaiting ground-truth comparison."""

    batch: CandidateBatch
    k: int
    served_top: np.ndarray


@dataclass
class MaintenanceReport:
    """Outcome of one idle-time calibration pass."""

    samples_checked: int
    sampled_precision: float
    old_threshold: float
    new_threshold: float

    @property
    def adjusted(self) -> bool:
        return self.new_threshold != self.old_threshold


@dataclass
class ServiceStats:
    requests_served: int = 0
    requests_sampled: int = 0
    requests_dropped: int = 0  # shed or cancelled before completing
    maintenance_passes: int = 0
    history: list[MaintenanceReport] = field(default_factory=list)


@dataclass
class DeviceWave:
    """Internal record of one scheduler-driven serving wave.

    Produced by :meth:`SemanticSelectionService.serve_requests`; the
    :class:`~repro.core.api.DeviceServer` adapter turns it into
    :class:`~repro.core.api.SelectionResponse`\\ s, and the legacy
    ``select_concurrent`` shim returns its ``outcomes`` directly.
    ``request_ids`` aligns with the wave's input order, mapping each
    input to its scheduler-local id.
    """

    outcomes: list[ScheduledOutcome]
    dropped: list[DroppedRequest]
    scheduler: DeviceScheduler
    origin: float
    request_ids: list[int]


class SemanticSelectionService:
    """A self-calibrating top-K selection service over one device.

    Parameters
    ----------
    model / profile:
        Reranker and platform.  The serving engine runs on a device
        created from ``profile``; ground-truth re-execution happens on
        shadow devices so it never appears in serving latency — the
        paper's "when the device is idle" semantics.
    precision_target:
        Minimum acceptable agreement between served and unpruned top-K.
    sample_rate:
        Fraction of requests logged for idle-time checking
        (deterministic stride, so behaviour is reproducible).
    step:
        Threshold increment per idle pass.
    min_threshold / max_threshold:
        Clamp range for the walk.
    max_concurrency:
        In-flight request cap of the concurrent serving mode
        (:meth:`select_concurrent`); ``1`` keeps the service strictly
        serial.  Each in-flight request holds its own hidden-state and
        stream-buffer memory, so the cap bounds serving overhead.
    shared_weights:
        Serve concurrent requests from one refcounted weight plane
        (DESIGN.md §7) instead of per-request streamers: N in-flight
        same-model requests read each layer from the SSD once.  Pairs
        naturally with the ``fusion`` scheduling policy; solo requests
        stay bit-identical either way.
    """

    def __init__(
        self,
        model: CrossEncoderModel,
        profile: DeviceProfile,
        config: PrismConfig | None = None,
        precision_target: float = 0.95,
        sample_rate: float = 0.25,
        step: float = 0.05,
        min_threshold: float = 0.02,
        max_threshold: float = 1.5,
        max_concurrency: int = 1,
        shared_weights: bool = False,
        data_plane: DataPlane | None = None,
        embedding_plane: SharedEmbeddingCache | None = None,
        event_log=None,
        events_replica: int | None = None,
    ) -> None:
        if not 0 < precision_target <= 1:
            raise ValueError("precision_target must lie in (0, 1]")
        if not 0 < sample_rate <= 1:
            raise ValueError("sample_rate must lie in (0, 1]")
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0 <= min_threshold < max_threshold:
            raise ValueError("need 0 <= min_threshold < max_threshold")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.model = model
        self.profile = profile
        self.config = config or PrismConfig(numerics=False)
        if shared_weights:
            self.config = replace(self.config, shared_weight_plane=True)
        self.precision_target = precision_target
        self.sample_rate = sample_rate
        self.step = step
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_concurrency = max_concurrency

        self.device: Device = profile.create()
        #: Fleet-shared embedding residency (DESIGN.md §12 layer 3);
        #: ``None`` keeps the engine's private §4.4 cache.
        self.embedding_plane = embedding_plane
        self.engine = PrismEngine(
            model, self.device, self.config, embedding_plane=embedding_plane
        )
        self.engine.prepare()
        #: Device-tier data plane (DESIGN.md §12 layers 1+2, memoization
        #: and coalescing only — partial-overlap reuse is the fleet
        #: coordinator's job).  ``None`` serves every request by a full
        #: pass, byte-identical to a service built without the plane.
        self.data_plane = data_plane
        if data_plane is not None:
            data_plane.on_threshold(self.threshold, at=self.device.clock.now)
            if event_log is not None:
                data_plane.attach_event_log(
                    event_log, tier="device", replica=events_replica
                )
        #: Observability sink (DESIGN.md §10), attached *after* prepare
        #: so the log carries serving-time events, not the one-time
        #: weight-load prologue.  ``None`` observes nothing.
        self.events = event_log
        if event_log is not None:
            self.device.attach_event_log(event_log, replica=events_replica)
        self.stats = ServiceStats()
        self._pending_samples: list[SampledRequest] = []
        self._stride = SampleStride(sample_rate)
        #: The scheduler of the most recent :meth:`select_concurrent`
        #: wave — its ``stats()`` (lane percentiles, queue waits,
        #: throughput) and ``trace_text()`` stay reachable after the
        #: wave completes.
        self.last_scheduler: DeviceScheduler | None = None

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        return self.engine.pruner.dispersion_threshold

    def _set_threshold(self, value: float) -> None:
        value = float(np.clip(value, self.min_threshold, self.max_threshold))
        self.engine.pruner.dispersion_threshold = value
        self.config = replace(self.config, dispersion_threshold=value)
        if self.data_plane is not None:
            # Recalibration invalidates cached selections (DESIGN.md
            # §12): the plane bumps its epoch when the value changed.
            self.data_plane.on_threshold(value, at=self.device.clock.now)

    def apply_threshold(self, value: float) -> float:
        """Externally set the operating threshold (clamped); returns it.

        This is the hook a fleet coordinator uses to propagate a
        consensus threshold to every replica after a maintenance round
        (DESIGN.md §5); the clamp range stays authoritative.
        """
        self._set_threshold(value)
        return self.threshold

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    def select(
        self, batch: CandidateBatch, k: int, sample: bool | None = None
    ) -> RerankResult:
        """Deprecated: serve one request; log it for idle checking.

        Legacy shim over the request-centric API (DESIGN.md §8): wrap
        the arguments in a :class:`~repro.core.api.SelectionRequest`
        and submit through :class:`~repro.core.api.DeviceServer`
        instead (``docs/api.md`` maps every call site).

        ``sample`` overrides the internal sampling policy for this
        request: ``True`` forces the request into the idle-check log,
        ``False`` keeps it out, and ``None`` (default) applies the
        deterministic ``sample_rate`` stride.  External drivers (the
        fleet admission layer) use the override to keep the sampled
        stream uniform across replicas even under skewed routing.
        """
        warnings.warn(
            "SemanticSelectionService.select() is deprecated; submit a "
            "SelectionRequest through repro.core.api.DeviceServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        if k <= 0:
            raise ValueError("k must be positive")
        result = self._serve_solo(batch, k, sample=sample)
        assert result is not None  # no cancellation on the legacy path
        return result

    def _serve_solo(
        self,
        batch: CandidateBatch,
        k: int,
        sample: bool | None = None,
        cancel_at: float | None = None,
    ) -> RerankResult | None:
        """Serve one request to completion on the serving engine.

        The internal solo path shared by the legacy ``select`` shim and
        the fleet's serial dispatch.  ``cancel_at`` (absolute device
        time) cancels the pass at its next layer boundary — the task is
        closed (releasing any weight-plane refcounts) and ``None`` is
        returned; cancelled requests are neither counted as served nor
        logged for idle checking.
        """
        result = self.engine.start(batch, k).run(cancel_at=cancel_at)
        if result is None:
            self.stats.requests_dropped += 1
            return None
        self.stats.requests_served += 1
        if sample is None:
            sample = self._stride.admit()
        if sample:
            self.stats.requests_sampled += 1
            self._pending_samples.append(
                SampledRequest(batch=batch, k=k, served_top=result.top_indices.copy())
            )
        return result

    def select_concurrent(
        self,
        requests: Sequence[tuple[CandidateBatch, int]],
        arrivals: Sequence[float] | None = None,
        priorities: Sequence[int] | None = None,
        samples: Sequence[bool | None] | None = None,
        policy: str = "round_robin",
        quantum_layers: int = 1,
        max_skew: float = 0.0,
    ) -> list[ScheduledOutcome]:
        """Deprecated: serve a wave of requests concurrently.

        Legacy shim over :meth:`serve_requests` — it zips the parallel
        argument sequences into :class:`~repro.core.api.SelectionRequest`
        objects and returns the wave's raw
        :class:`~repro.core.scheduler.ScheduledOutcome`\\ s.  Migrate to
        :class:`~repro.core.api.DeviceServer` (``docs/api.md``).

        ``arrivals`` are offsets in seconds from the call instant
        (default: all due immediately); ``priorities`` pick scheduler
        lanes (default: batch lane); ``max_skew`` threads through to
        the ``fusion`` policy's group-join bound.  Sampling semantics
        match :meth:`select`: decided per request in submission order
        through the deterministic :class:`SampleStride` (or forced via
        ``samples``), so the idle-check log cannot depend on policy.
        """
        warnings.warn(
            "SemanticSelectionService.select_concurrent() is deprecated; submit "
            "SelectionRequests through repro.core.api.DeviceServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .api import SelectionRequest

        requests = list(requests)
        if arrivals is not None and len(arrivals) != len(requests):
            raise ValueError("arrivals must match requests")
        if priorities is not None and len(priorities) != len(requests):
            raise ValueError("priorities must match requests")
        if samples is not None and len(samples) != len(requests):
            raise ValueError("samples must match requests")
        # Construct (and thereby validate) the whole wave before any
        # state moves — SelectionRequest.__post_init__ enforces the
        # same bounds the parallel-sequence API documented.
        wave_requests = [
            SelectionRequest(
                batch=batch,
                k=k,
                request_id=index,
                arrival=arrivals[index] if arrivals is not None else None,
                priority=priorities[index] if priorities is not None else LANE_BATCH,
                sample=samples[index] if samples is not None else None,
            )
            for index, (batch, k) in enumerate(requests)
        ]
        wave = self.serve_requests(
            wave_requests,
            policy=policy,
            quantum_layers=quantum_layers,
            max_skew=max_skew,
        )
        return wave.outcomes

    def serve_requests(
        self,
        requests: "Sequence[SelectionRequest]",
        *,
        policy: str = "round_robin",
        quantum_layers: int = 1,
        max_skew: float = 0.0,
        edf: bool = False,
        cancels: Sequence[float | None] | None = None,
    ) -> DeviceWave:
        """Serve one wave of :class:`~repro.core.api.SelectionRequest`\\ s.

        The request-centric serving core (DESIGN.md §8): requests are
        submitted to a :class:`DeviceScheduler` (DESIGN.md §6) capped
        at the service's ``max_concurrency`` and driven to completion.
        Request ``arrival``/``deadline`` offsets are resolved against
        the call instant; ``cancels`` (aligned with ``requests``) adds
        per-request cancellation offsets on the same axis.  Deadline
        shedding and cancellation happen in the scheduler — a shed
        request never reaches the engine, and a mid-pass cancel closes
        its task at the next layer boundary.

        Sampling is decided per request *in submission order* through
        the deterministic :class:`SampleStride` (or the request's
        ``sample`` override); only completed requests enter the
        idle-check log.  The scheduler stays reachable as
        :attr:`last_scheduler` for ``stats()`` and ``trace_text()``.

        With a :attr:`data_plane` attached (DESIGN.md §12), requests
        first pass through the plane: memo hits and coalesced followers
        resolve without ever occupying a scheduler slot (their outcomes
        carry negative synthetic ids and ``cache`` provenance); only
        leaders — and requests opting out via ``memoize=False`` — enter
        the scheduler wave.
        """
        requests = list(requests)
        if cancels is not None and len(cancels) != len(requests):
            raise ValueError("cancels must match requests")
        if self.data_plane is not None:
            return self._serve_requests_plane(
                requests,
                policy=policy,
                quantum_layers=quantum_layers,
                max_skew=max_skew,
                edf=edf,
                cancels=cancels,
            )
        return self._serve_wave(
            requests,
            policy=policy,
            quantum_layers=quantum_layers,
            max_skew=max_skew,
            edf=edf,
            cancels=cancels,
        )

    def _serve_wave(
        self,
        requests: "list[SelectionRequest]",
        *,
        policy: str,
        quantum_layers: int,
        max_skew: float,
        edf: bool,
        cancels: Sequence[float | None] | None,
    ) -> DeviceWave:
        """The plane-less scheduler wave (the pre-§12 serving core)."""
        if self.engine.weight_plane is not None and policy == "fifo" and len(requests) > 1:
            # Run-to-completion over the plane keeps every admitted
            # task's frontier at layer 0 while the first runs, so
            # nothing can be reaped: the sweep caches the whole model
            # in memory.  Legitimate on big-RAM devices, but silent
            # OOM bait on the 8 GiB profiles — make it a choice.
            warnings.warn(
                "shared weight plane with the run-to-completion 'fifo' policy keeps "
                "every swept layer resident until the last admitted task passes it "
                "(whole-model residency); use 'fusion' or 'round_robin' to keep the "
                "double-buffered streaming window (DESIGN.md §7)",
                RuntimeWarning,
                stacklevel=2,
            )
        scheduler = DeviceScheduler(
            self.engine,
            SchedulerConfig(
                policy=policy,
                quantum_layers=quantum_layers,
                max_concurrency=self.max_concurrency,
                max_skew=max_skew,
                edf=edf,
            ),
            event_log=self.events,
        )
        origin = self.device.clock.now
        request_ids: list[int] = []
        for index, request in enumerate(requests):
            sample = request.sample
            if sample is None:
                sample = self._stride.admit()
            arrival = origin + request.arrival_offset
            cancel = cancels[index] if cancels is not None else None
            request_ids.append(
                scheduler.submit_request(
                    request.batch,
                    request.k,
                    arrival=arrival,
                    priority=request.priority,
                    sample=sample,
                    deadline=(
                        arrival + request.deadline if request.deadline is not None else None
                    ),
                    cancel_at=origin + cancel if cancel is not None else None,
                    client_id=request.request_id,
                )
            )
        self.last_scheduler = scheduler
        outcomes = scheduler.drain()
        by_id = {outcome.request_id: outcome for outcome in outcomes}
        self.stats.requests_served += len(outcomes)
        self.stats.requests_dropped += len(scheduler.dropped)
        for index, request in enumerate(requests):
            outcome = by_id.get(request_ids[index])
            if outcome is not None and outcome.sample:
                self.stats.requests_sampled += 1
                self._pending_samples.append(
                    SampledRequest(
                        batch=request.batch,
                        k=request.k,
                        served_top=outcome.result.top_indices.copy(),
                    )
                )
        return DeviceWave(
            outcomes=outcomes,
            dropped=list(scheduler.dropped),
            scheduler=scheduler,
            origin=origin,
            request_ids=request_ids,
        )

    # ------------------------------------------------------------------
    # data-plane serving path (DESIGN.md §12)
    # ------------------------------------------------------------------
    def _weight_bytes(self, result: RerankResult) -> int:
        """SSD weight traffic a pass of this result's depth swept."""
        store = self.engine.store
        return sum(
            store.layer_nbytes(layer) for layer in range(result.layers_executed)
        )

    def replay_selection(self, batch: CandidateBatch, k: int) -> RerankResult:
        """Full-batch selection replay on a zero-cost shadow engine.

        Pruning stays ON at the current config, so the replay is
        byte-identical to serving the batch solo (cross-tier
        determinism, DESIGN.md §8) — but it runs on a shadow device
        like :meth:`_ground_truth`, so serving clocks and memory are
        untouched.  This is how the fleet's partial-overlap path
        (DESIGN.md §12) recovers the exact full-batch selection after
        executing only the residue rows.
        """
        shadow = self.profile.create()
        engine = PrismEngine(self.model, shadow, self.config)
        engine.prepare()
        result = engine.start(batch, k).run()
        assert result is not None  # shadow passes are never cancelled
        return result

    def _serve_requests_plane(
        self,
        requests: "list[SelectionRequest]",
        *,
        policy: str,
        quantum_layers: int,
        max_skew: float,
        edf: bool,
        cancels: Sequence[float | None] | None,
    ) -> DeviceWave:
        """Device-tier plane serving: memoization + in-flight coalescing.

        Synthetic outcomes (memo hits, resolved followers) carry
        negative scheduler ids ``-(input_index + 1)`` so they can never
        collide with the wave scheduler's 0-based ids, and ``cache``
        provenance (``"hit"``/``"coalesced"``).  A leader that is
        dropped (shed/cancelled/faulted) invalidates its pending entry
        and its followers re-dispatch — the first becomes the new
        leader on the serving engine, siblings re-coalesce — so a dead
        leader never poisons the memo and never strands a follower.
        """
        plane = self.data_plane
        assert plane is not None
        origin = self.device.clock.now
        request_ids: list[int] = [0] * len(requests)
        synthetic_outcomes: list[ScheduledOutcome] = []
        synthetic_drops: list[DroppedRequest] = []
        leaders: list[tuple[int, "SelectionRequest", float | None, str | None]] = []
        redispatch: list[tuple[int, "SelectionRequest", float | None]] = []

        def abs_cancel(cancel: float | None) -> float | None:
            return origin + cancel if cancel is not None else None

        def synth_hit(index: int, request: "SelectionRequest", result, at: float) -> None:
            arrival = origin + request.arrival_offset
            self.stats.requests_served += 1
            synthetic_outcomes.append(
                ScheduledOutcome(
                    request_id=-(index + 1),
                    priority=request.priority,
                    arrival=arrival,
                    start=at,
                    finish=at,
                    service_seconds=0.0,
                    preempted=False,
                    result=result,
                    sample=False,
                    deadline=(
                        arrival + request.deadline
                        if request.deadline is not None
                        else None
                    ),
                    cache="hit",
                )
            )

        def resolve_followers(followers, result, finish: float) -> None:
            """Hand a completed leader's result to its followers."""
            for payload, attached_at in followers:
                f_index, f_request, f_cancel = payload
                f_cancel_abs = abs_cancel(f_cancel)
                done = max(finish, attached_at)
                if f_cancel_abs is not None and f_cancel_abs < done:
                    self.stats.requests_dropped += 1
                    synthetic_drops.append(
                        DroppedRequest(
                            request_id=-(f_index + 1),
                            priority=f_request.priority,
                            arrival=origin + f_request.arrival_offset,
                            at=f_cancel_abs,
                            reason="cancelled",
                            deadline=(
                                origin + f_request.arrival_offset + f_request.deadline
                                if f_request.deadline is not None
                                else None
                            ),
                            client_id=f_request.request_id,
                        )
                    )
                    continue
                self.stats.requests_served += 1
                synthetic_outcomes.append(
                    ScheduledOutcome(
                        request_id=-(f_index + 1),
                        priority=f_request.priority,
                        arrival=attached_at,
                        start=done,
                        finish=done,
                        service_seconds=0.0,
                        preempted=False,
                        result=clone_result(result),
                        sample=False,
                        deadline=(
                            origin + f_request.arrival_offset + f_request.deadline
                            if f_request.deadline is not None
                            else None
                        ),
                        cache="coalesced",
                    )
                )

        # ---- plane admission (input order) ---------------------------
        for index, request in enumerate(requests):
            cancel = cancels[index] if cancels is not None else None
            request_ids[index] = -(index + 1)
            if request.memoize is False:
                leaders.append((index, request, cancel, None))
                continue
            arrival = origin + request.arrival_offset
            cancel_abs = abs_cancel(cancel)
            if cancel_abs is not None and cancel_abs <= arrival:
                # Cancelled before it could arrive: the ordinary
                # scheduler drop path handles it, bypassing the plane.
                leaders.append((index, request, cancel, None))
                continue
            fp = plane.fingerprint(
                request.batch,
                request.k,
                threshold=self.threshold,
                sample_rate=self.sample_rate,
            )
            decision = plane.admit(
                fp,
                request.batch,
                payload=(index, request, cancel),
                at=arrival,
                request=request.request_id,
                overlap=False,
            )
            if decision.kind == "hit":
                synth_hit(index, request, decision.result, arrival)
            elif decision.kind == "coalesced":
                pass  # resolved when its leader completes or dies
            else:
                leaders.append((index, request, cancel, fp))

        # ---- leader wave through the ordinary scheduler --------------
        wave = self._serve_wave(
            [request for _, request, _, _ in leaders],
            policy=policy,
            quantum_layers=quantum_layers,
            max_skew=max_skew,
            edf=edf,
            cancels=[cancel for _, _, cancel, _ in leaders],
        )
        by_id = {outcome.request_id: outcome for outcome in wave.outcomes}
        dropped_by_id = {drop.request_id: drop for drop in wave.dropped}
        for (index, request, cancel, fp), scheduler_id in zip(
            leaders, wave.request_ids
        ):
            request_ids[index] = scheduler_id
            if fp is None:
                continue
            outcome = by_id.get(scheduler_id)
            if outcome is not None:
                followers = plane.complete(
                    fp,
                    request.batch,
                    outcome.result,
                    service_seconds=outcome.service_seconds,
                    weight_bytes=self._weight_bytes(outcome.result),
                    at=outcome.finish,
                    request=request.request_id,
                )
                resolve_followers(followers, outcome.result, outcome.finish)
            else:
                drop = dropped_by_id[scheduler_id]
                redispatch.extend(
                    payload
                    for payload, _ in plane.invalidate(
                        fp, at=drop.at, reason=drop.reason, request=request.request_id
                    )
                )

        # ---- continuation: re-dispatch stranded followers ------------
        # Served solo on the serving engine at the post-wave clock; the
        # first stranded follower of each dead leader becomes the new
        # leader, later siblings re-coalesce onto it.  Terminates: every
        # follower either completes, coalesces onto a completing
        # leader, or drops on an already-due cancel/deadline.
        pending = list(redispatch)
        while pending:
            f_index, f_request, f_cancel = pending.pop(0)
            sid = -(f_index + 1)
            now = self.device.clock.now
            cancel_abs = abs_cancel(f_cancel)
            arrival = origin + f_request.arrival_offset
            deadline_abs = (
                arrival + f_request.deadline if f_request.deadline is not None else None
            )
            if cancel_abs is not None and cancel_abs <= now:
                self.stats.requests_dropped += 1
                synthetic_drops.append(
                    DroppedRequest(
                        request_id=sid,
                        priority=f_request.priority,
                        arrival=arrival,
                        at=max(arrival, cancel_abs),
                        reason="cancelled",
                        deadline=deadline_abs,
                        client_id=f_request.request_id,
                    )
                )
                continue
            if deadline_abs is not None and now >= deadline_abs:
                self.stats.requests_dropped += 1
                synthetic_drops.append(
                    DroppedRequest(
                        request_id=sid,
                        priority=f_request.priority,
                        arrival=arrival,
                        at=now,
                        reason="shed",
                        deadline=deadline_abs,
                        client_id=f_request.request_id,
                    )
                )
                continue
            fp = plane.fingerprint(
                f_request.batch,
                f_request.k,
                threshold=self.threshold,
                sample_rate=self.sample_rate,
            )
            decision = plane.admit(
                fp,
                f_request.batch,
                payload=(f_index, f_request, f_cancel),
                at=now,
                request=f_request.request_id,
                overlap=False,
            )
            if decision.kind == "hit":
                synth_hit(f_index, f_request, decision.result, now)
                continue
            if decision.kind == "coalesced":
                continue
            start = self.device.clock.now
            result = self._serve_solo(
                f_request.batch, f_request.k, sample=False, cancel_at=cancel_abs
            )
            finish = self.device.clock.now
            if result is None:  # cancelled mid-pass (already counted)
                synthetic_drops.append(
                    DroppedRequest(
                        request_id=sid,
                        priority=f_request.priority,
                        arrival=arrival,
                        at=finish,
                        reason="cancelled",
                        deadline=deadline_abs,
                        client_id=f_request.request_id,
                    )
                )
                pending.extend(
                    payload
                    for payload, _ in plane.invalidate(
                        fp, at=finish, reason="cancelled", request=f_request.request_id
                    )
                )
                continue
            followers = plane.complete(
                fp,
                f_request.batch,
                result,
                service_seconds=finish - start,
                weight_bytes=self._weight_bytes(result),
                at=finish,
                request=f_request.request_id,
            )
            synthetic_outcomes.append(
                ScheduledOutcome(
                    request_id=sid,
                    priority=f_request.priority,
                    arrival=arrival,
                    start=start,
                    finish=finish,
                    service_seconds=finish - start,
                    preempted=False,
                    result=result,
                    sample=False,
                    deadline=deadline_abs,
                )
            )
            resolve_followers(followers, result, finish)

        outcomes = wave.outcomes + synthetic_outcomes
        outcomes.sort(key=lambda o: (o.finish, o.request_id))
        return DeviceWave(
            outcomes=outcomes,
            dropped=wave.dropped + synthetic_drops,
            scheduler=wave.scheduler,
            origin=origin,
            request_ids=request_ids,
        )

    # ------------------------------------------------------------------
    # idle path
    # ------------------------------------------------------------------
    def _ground_truth(self, sample: SampledRequest) -> np.ndarray:
        """Full unpruned inference on a shadow device (idle time)."""
        shadow = self.profile.create()
        engine = PrismEngine(
            self.model, shadow, replace(self.config, pruning_enabled=False)
        )
        engine.prepare()
        return engine.start(sample.batch, sample.k).run().top_indices

    def _sampled_precision(self) -> tuple[int, float]:
        overlaps = [
            top_k_overlap(sample.served_top, self._ground_truth(sample), sample.k)
            for sample in self._pending_samples
        ]
        return len(overlaps), float(np.mean(overlaps)) if overlaps else 1.0

    def idle_maintenance(self) -> MaintenanceReport | None:
        """Run one background calibration pass; returns its report.

        No-op (returns None) when no samples are pending.  Applies one
        §4.1 step: precision below target → raise the threshold (be
        more conservative); at or above target → lower it (go faster).
        """
        if not self._pending_samples:
            return None
        checked, precision = self._sampled_precision()
        old = self.threshold
        if precision < self.precision_target:
            self._set_threshold(old + self.step)
        else:
            self._set_threshold(old - self.step)
        self._pending_samples.clear()
        report = MaintenanceReport(
            samples_checked=checked,
            sampled_precision=precision,
            old_threshold=old,
            new_threshold=self.threshold,
        )
        self.stats.maintenance_passes += 1
        self.stats.history.append(report)
        return report

    @property
    def pending_samples(self) -> int:
        return len(self._pending_samples)
