"""Online serving with self-calibrating threshold (§4.1, deployed mode).

The paper's production story for the dispersion threshold: the user
states a minimum precision target; the system *samples requests at a
frequency and logs their top-K results; when the device is idle, it
re-executes full inference (without pruning) to obtain the ground
truth*, compares, and walks the threshold — up when sampled precision
falls below the target, down when there is headroom.

:class:`SemanticSelectionService` implements that loop around a live
:class:`~repro.core.engine.PrismEngine`:

* :meth:`select` serves requests at the current threshold, logging a
  deterministic ``sample_rate`` fraction of them;
* :meth:`select_concurrent` serves a wave of requests through the
  step-multiplexing :class:`~repro.core.scheduler.DeviceScheduler`
  (DESIGN.md §6): up to ``max_concurrency`` requests share the device,
  interleaved at layer boundaries, with the same deterministic
  :class:`SampleStride` feeding the idle-check log;
* :meth:`idle_maintenance` models the device-idle background pass — it
  replays the logged requests unpruned on a *shadow* device (so the
  serving clock and memory are untouched), measures top-K agreement,
  and applies one §4.1 threshold step.

The controller is deliberately incremental (one step per idle pass),
matching the paper's description, rather than re-running the full
offline search of :class:`~repro.core.calibration.ThresholdCalibrator`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from typing import TYPE_CHECKING, Sequence

from ..device.platforms import Device, DeviceProfile
from ..model.transformer import CandidateBatch, CrossEncoderModel
from .config import PrismConfig
from .engine import PrismEngine, RerankResult
from .metrics import top_k_overlap
from .scheduler import (
    LANE_BATCH,
    DeviceScheduler,
    DroppedRequest,
    ScheduledOutcome,
    SchedulerConfig,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports service)
    from .api import SelectionRequest


class SampleStride:
    """Deterministic request-sampling stride.

    Accumulates ``rate`` per request and trips each time the
    accumulator crosses 1.0, so exactly ``rate`` of requests are
    admitted with no RNG and no float drift at ``rate=1.0``.  Shared
    by the single-device service and the fleet admission layer so the
    two can never diverge on stride semantics.
    """

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.accumulator = 0.0

    def admit(self) -> bool:
        self.accumulator += self.rate
        if self.accumulator >= 1.0:
            self.accumulator -= 1.0
            return True
        return False


@dataclass
class SampledRequest:
    """One logged request awaiting ground-truth comparison."""

    batch: CandidateBatch
    k: int
    served_top: np.ndarray


@dataclass
class MaintenanceReport:
    """Outcome of one idle-time calibration pass."""

    samples_checked: int
    sampled_precision: float
    old_threshold: float
    new_threshold: float

    @property
    def adjusted(self) -> bool:
        return self.new_threshold != self.old_threshold


@dataclass
class ServiceStats:
    requests_served: int = 0
    requests_sampled: int = 0
    requests_dropped: int = 0  # shed or cancelled before completing
    maintenance_passes: int = 0
    history: list[MaintenanceReport] = field(default_factory=list)


@dataclass
class DeviceWave:
    """Internal record of one scheduler-driven serving wave.

    Produced by :meth:`SemanticSelectionService.serve_requests`; the
    :class:`~repro.core.api.DeviceServer` adapter turns it into
    :class:`~repro.core.api.SelectionResponse`\\ s, and the legacy
    ``select_concurrent`` shim returns its ``outcomes`` directly.
    ``request_ids`` aligns with the wave's input order, mapping each
    input to its scheduler-local id.
    """

    outcomes: list[ScheduledOutcome]
    dropped: list[DroppedRequest]
    scheduler: DeviceScheduler
    origin: float
    request_ids: list[int]


class SemanticSelectionService:
    """A self-calibrating top-K selection service over one device.

    Parameters
    ----------
    model / profile:
        Reranker and platform.  The serving engine runs on a device
        created from ``profile``; ground-truth re-execution happens on
        shadow devices so it never appears in serving latency — the
        paper's "when the device is idle" semantics.
    precision_target:
        Minimum acceptable agreement between served and unpruned top-K.
    sample_rate:
        Fraction of requests logged for idle-time checking
        (deterministic stride, so behaviour is reproducible).
    step:
        Threshold increment per idle pass.
    min_threshold / max_threshold:
        Clamp range for the walk.
    max_concurrency:
        In-flight request cap of the concurrent serving mode
        (:meth:`select_concurrent`); ``1`` keeps the service strictly
        serial.  Each in-flight request holds its own hidden-state and
        stream-buffer memory, so the cap bounds serving overhead.
    shared_weights:
        Serve concurrent requests from one refcounted weight plane
        (DESIGN.md §7) instead of per-request streamers: N in-flight
        same-model requests read each layer from the SSD once.  Pairs
        naturally with the ``fusion`` scheduling policy; solo requests
        stay bit-identical either way.
    """

    def __init__(
        self,
        model: CrossEncoderModel,
        profile: DeviceProfile,
        config: PrismConfig | None = None,
        precision_target: float = 0.95,
        sample_rate: float = 0.25,
        step: float = 0.05,
        min_threshold: float = 0.02,
        max_threshold: float = 1.5,
        max_concurrency: int = 1,
        shared_weights: bool = False,
        event_log=None,
        events_replica: int | None = None,
    ) -> None:
        if not 0 < precision_target <= 1:
            raise ValueError("precision_target must lie in (0, 1]")
        if not 0 < sample_rate <= 1:
            raise ValueError("sample_rate must lie in (0, 1]")
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0 <= min_threshold < max_threshold:
            raise ValueError("need 0 <= min_threshold < max_threshold")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.model = model
        self.profile = profile
        self.config = config or PrismConfig(numerics=False)
        if shared_weights:
            self.config = replace(self.config, shared_weight_plane=True)
        self.precision_target = precision_target
        self.sample_rate = sample_rate
        self.step = step
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_concurrency = max_concurrency

        self.device: Device = profile.create()
        self.engine = PrismEngine(model, self.device, self.config)
        self.engine.prepare()
        #: Observability sink (DESIGN.md §10), attached *after* prepare
        #: so the log carries serving-time events, not the one-time
        #: weight-load prologue.  ``None`` observes nothing.
        self.events = event_log
        if event_log is not None:
            self.device.attach_event_log(event_log, replica=events_replica)
        self.stats = ServiceStats()
        self._pending_samples: list[SampledRequest] = []
        self._stride = SampleStride(sample_rate)
        #: The scheduler of the most recent :meth:`select_concurrent`
        #: wave — its ``stats()`` (lane percentiles, queue waits,
        #: throughput) and ``trace_text()`` stay reachable after the
        #: wave completes.
        self.last_scheduler: DeviceScheduler | None = None

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        return self.engine.pruner.dispersion_threshold

    def _set_threshold(self, value: float) -> None:
        value = float(np.clip(value, self.min_threshold, self.max_threshold))
        self.engine.pruner.dispersion_threshold = value
        self.config = replace(self.config, dispersion_threshold=value)

    def apply_threshold(self, value: float) -> float:
        """Externally set the operating threshold (clamped); returns it.

        This is the hook a fleet coordinator uses to propagate a
        consensus threshold to every replica after a maintenance round
        (DESIGN.md §5); the clamp range stays authoritative.
        """
        self._set_threshold(value)
        return self.threshold

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    def select(
        self, batch: CandidateBatch, k: int, sample: bool | None = None
    ) -> RerankResult:
        """Deprecated: serve one request; log it for idle checking.

        Legacy shim over the request-centric API (DESIGN.md §8): wrap
        the arguments in a :class:`~repro.core.api.SelectionRequest`
        and submit through :class:`~repro.core.api.DeviceServer`
        instead (``docs/api.md`` maps every call site).

        ``sample`` overrides the internal sampling policy for this
        request: ``True`` forces the request into the idle-check log,
        ``False`` keeps it out, and ``None`` (default) applies the
        deterministic ``sample_rate`` stride.  External drivers (the
        fleet admission layer) use the override to keep the sampled
        stream uniform across replicas even under skewed routing.
        """
        warnings.warn(
            "SemanticSelectionService.select() is deprecated; submit a "
            "SelectionRequest through repro.core.api.DeviceServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        if k <= 0:
            raise ValueError("k must be positive")
        result = self._serve_solo(batch, k, sample=sample)
        assert result is not None  # no cancellation on the legacy path
        return result

    def _serve_solo(
        self,
        batch: CandidateBatch,
        k: int,
        sample: bool | None = None,
        cancel_at: float | None = None,
    ) -> RerankResult | None:
        """Serve one request to completion on the serving engine.

        The internal solo path shared by the legacy ``select`` shim and
        the fleet's serial dispatch.  ``cancel_at`` (absolute device
        time) cancels the pass at its next layer boundary — the task is
        closed (releasing any weight-plane refcounts) and ``None`` is
        returned; cancelled requests are neither counted as served nor
        logged for idle checking.
        """
        result = self.engine.start(batch, k).run(cancel_at=cancel_at)
        if result is None:
            self.stats.requests_dropped += 1
            return None
        self.stats.requests_served += 1
        if sample is None:
            sample = self._stride.admit()
        if sample:
            self.stats.requests_sampled += 1
            self._pending_samples.append(
                SampledRequest(batch=batch, k=k, served_top=result.top_indices.copy())
            )
        return result

    def select_concurrent(
        self,
        requests: Sequence[tuple[CandidateBatch, int]],
        arrivals: Sequence[float] | None = None,
        priorities: Sequence[int] | None = None,
        samples: Sequence[bool | None] | None = None,
        policy: str = "round_robin",
        quantum_layers: int = 1,
        max_skew: float = 0.0,
    ) -> list[ScheduledOutcome]:
        """Deprecated: serve a wave of requests concurrently.

        Legacy shim over :meth:`serve_requests` — it zips the parallel
        argument sequences into :class:`~repro.core.api.SelectionRequest`
        objects and returns the wave's raw
        :class:`~repro.core.scheduler.ScheduledOutcome`\\ s.  Migrate to
        :class:`~repro.core.api.DeviceServer` (``docs/api.md``).

        ``arrivals`` are offsets in seconds from the call instant
        (default: all due immediately); ``priorities`` pick scheduler
        lanes (default: batch lane); ``max_skew`` threads through to
        the ``fusion`` policy's group-join bound.  Sampling semantics
        match :meth:`select`: decided per request in submission order
        through the deterministic :class:`SampleStride` (or forced via
        ``samples``), so the idle-check log cannot depend on policy.
        """
        warnings.warn(
            "SemanticSelectionService.select_concurrent() is deprecated; submit "
            "SelectionRequests through repro.core.api.DeviceServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .api import SelectionRequest

        requests = list(requests)
        if arrivals is not None and len(arrivals) != len(requests):
            raise ValueError("arrivals must match requests")
        if priorities is not None and len(priorities) != len(requests):
            raise ValueError("priorities must match requests")
        if samples is not None and len(samples) != len(requests):
            raise ValueError("samples must match requests")
        # Construct (and thereby validate) the whole wave before any
        # state moves — SelectionRequest.__post_init__ enforces the
        # same bounds the parallel-sequence API documented.
        wave_requests = [
            SelectionRequest(
                batch=batch,
                k=k,
                request_id=index,
                arrival=arrivals[index] if arrivals is not None else None,
                priority=priorities[index] if priorities is not None else LANE_BATCH,
                sample=samples[index] if samples is not None else None,
            )
            for index, (batch, k) in enumerate(requests)
        ]
        wave = self.serve_requests(
            wave_requests,
            policy=policy,
            quantum_layers=quantum_layers,
            max_skew=max_skew,
        )
        return wave.outcomes

    def serve_requests(
        self,
        requests: "Sequence[SelectionRequest]",
        *,
        policy: str = "round_robin",
        quantum_layers: int = 1,
        max_skew: float = 0.0,
        edf: bool = False,
        cancels: Sequence[float | None] | None = None,
    ) -> DeviceWave:
        """Serve one wave of :class:`~repro.core.api.SelectionRequest`\\ s.

        The request-centric serving core (DESIGN.md §8): requests are
        submitted to a :class:`DeviceScheduler` (DESIGN.md §6) capped
        at the service's ``max_concurrency`` and driven to completion.
        Request ``arrival``/``deadline`` offsets are resolved against
        the call instant; ``cancels`` (aligned with ``requests``) adds
        per-request cancellation offsets on the same axis.  Deadline
        shedding and cancellation happen in the scheduler — a shed
        request never reaches the engine, and a mid-pass cancel closes
        its task at the next layer boundary.

        Sampling is decided per request *in submission order* through
        the deterministic :class:`SampleStride` (or the request's
        ``sample`` override); only completed requests enter the
        idle-check log.  The scheduler stays reachable as
        :attr:`last_scheduler` for ``stats()`` and ``trace_text()``.
        """
        requests = list(requests)
        if cancels is not None and len(cancels) != len(requests):
            raise ValueError("cancels must match requests")
        if self.engine.weight_plane is not None and policy == "fifo" and len(requests) > 1:
            # Run-to-completion over the plane keeps every admitted
            # task's frontier at layer 0 while the first runs, so
            # nothing can be reaped: the sweep caches the whole model
            # in memory.  Legitimate on big-RAM devices, but silent
            # OOM bait on the 8 GiB profiles — make it a choice.
            warnings.warn(
                "shared weight plane with the run-to-completion 'fifo' policy keeps "
                "every swept layer resident until the last admitted task passes it "
                "(whole-model residency); use 'fusion' or 'round_robin' to keep the "
                "double-buffered streaming window (DESIGN.md §7)",
                RuntimeWarning,
                stacklevel=2,
            )
        scheduler = DeviceScheduler(
            self.engine,
            SchedulerConfig(
                policy=policy,
                quantum_layers=quantum_layers,
                max_concurrency=self.max_concurrency,
                max_skew=max_skew,
                edf=edf,
            ),
            event_log=self.events,
        )
        origin = self.device.clock.now
        request_ids: list[int] = []
        for index, request in enumerate(requests):
            sample = request.sample
            if sample is None:
                sample = self._stride.admit()
            arrival = origin + request.arrival_offset
            cancel = cancels[index] if cancels is not None else None
            request_ids.append(
                scheduler.submit_request(
                    request.batch,
                    request.k,
                    arrival=arrival,
                    priority=request.priority,
                    sample=sample,
                    deadline=(
                        arrival + request.deadline if request.deadline is not None else None
                    ),
                    cancel_at=origin + cancel if cancel is not None else None,
                    client_id=request.request_id,
                )
            )
        self.last_scheduler = scheduler
        outcomes = scheduler.drain()
        by_id = {outcome.request_id: outcome for outcome in outcomes}
        self.stats.requests_served += len(outcomes)
        self.stats.requests_dropped += len(scheduler.dropped)
        for index, request in enumerate(requests):
            outcome = by_id.get(request_ids[index])
            if outcome is not None and outcome.sample:
                self.stats.requests_sampled += 1
                self._pending_samples.append(
                    SampledRequest(
                        batch=request.batch,
                        k=request.k,
                        served_top=outcome.result.top_indices.copy(),
                    )
                )
        return DeviceWave(
            outcomes=outcomes,
            dropped=list(scheduler.dropped),
            scheduler=scheduler,
            origin=origin,
            request_ids=request_ids,
        )

    # ------------------------------------------------------------------
    # idle path
    # ------------------------------------------------------------------
    def _ground_truth(self, sample: SampledRequest) -> np.ndarray:
        """Full unpruned inference on a shadow device (idle time)."""
        shadow = self.profile.create()
        engine = PrismEngine(
            self.model, shadow, replace(self.config, pruning_enabled=False)
        )
        engine.prepare()
        return engine.start(sample.batch, sample.k).run().top_indices

    def _sampled_precision(self) -> tuple[int, float]:
        overlaps = [
            top_k_overlap(sample.served_top, self._ground_truth(sample), sample.k)
            for sample in self._pending_samples
        ]
        return len(overlaps), float(np.mean(overlaps)) if overlaps else 1.0

    def idle_maintenance(self) -> MaintenanceReport | None:
        """Run one background calibration pass; returns its report.

        No-op (returns None) when no samples are pending.  Applies one
        §4.1 step: precision below target → raise the threshold (be
        more conservative); at or above target → lower it (go faster).
        """
        if not self._pending_samples:
            return None
        checked, precision = self._sampled_precision()
        old = self.threshold
        if precision < self.precision_target:
            self._set_threshold(old + self.step)
        else:
            self._set_threshold(old - self.step)
        self._pending_samples.clear()
        report = MaintenanceReport(
            samples_checked=checked,
            sampled_precision=precision,
            old_threshold=old,
            new_threshold=self.threshold,
        )
        self.stats.maintenance_passes += 1
        self.stats.history.append(report)
        return report

    @property
    def pending_samples(self) -> int:
        return len(self._pending_samples)
