"""Online serving with self-calibrating threshold (§4.1, deployed mode).

The paper's production story for the dispersion threshold: the user
states a minimum precision target; the system *samples requests at a
frequency and logs their top-K results; when the device is idle, it
re-executes full inference (without pruning) to obtain the ground
truth*, compares, and walks the threshold — up when sampled precision
falls below the target, down when there is headroom.

:class:`SemanticSelectionService` implements that loop around a live
:class:`~repro.core.engine.PrismEngine`:

* :meth:`select` serves requests at the current threshold, logging a
  deterministic ``sample_rate`` fraction of them;
* :meth:`idle_maintenance` models the device-idle background pass — it
  replays the logged requests unpruned on a *shadow* device (so the
  serving clock and memory are untouched), measures top-K agreement,
  and applies one §4.1 threshold step.

The controller is deliberately incremental (one step per idle pass),
matching the paper's description, rather than re-running the full
offline search of :class:`~repro.core.calibration.ThresholdCalibrator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..device.platforms import Device, DeviceProfile
from ..model.transformer import CandidateBatch, CrossEncoderModel
from .config import PrismConfig
from .engine import PrismEngine, RerankResult
from .metrics import top_k_overlap


class SampleStride:
    """Deterministic request-sampling stride.

    Accumulates ``rate`` per request and trips each time the
    accumulator crosses 1.0, so exactly ``rate`` of requests are
    admitted with no RNG and no float drift at ``rate=1.0``.  Shared
    by the single-device service and the fleet admission layer so the
    two can never diverge on stride semantics.
    """

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.accumulator = 0.0

    def admit(self) -> bool:
        self.accumulator += self.rate
        if self.accumulator >= 1.0:
            self.accumulator -= 1.0
            return True
        return False


@dataclass
class SampledRequest:
    """One logged request awaiting ground-truth comparison."""

    batch: CandidateBatch
    k: int
    served_top: np.ndarray


@dataclass
class MaintenanceReport:
    """Outcome of one idle-time calibration pass."""

    samples_checked: int
    sampled_precision: float
    old_threshold: float
    new_threshold: float

    @property
    def adjusted(self) -> bool:
        return self.new_threshold != self.old_threshold


@dataclass
class ServiceStats:
    requests_served: int = 0
    requests_sampled: int = 0
    maintenance_passes: int = 0
    history: list[MaintenanceReport] = field(default_factory=list)


class SemanticSelectionService:
    """A self-calibrating top-K selection service over one device.

    Parameters
    ----------
    model / profile:
        Reranker and platform.  The serving engine runs on a device
        created from ``profile``; ground-truth re-execution happens on
        shadow devices so it never appears in serving latency — the
        paper's "when the device is idle" semantics.
    precision_target:
        Minimum acceptable agreement between served and unpruned top-K.
    sample_rate:
        Fraction of requests logged for idle-time checking
        (deterministic stride, so behaviour is reproducible).
    step:
        Threshold increment per idle pass.
    min_threshold / max_threshold:
        Clamp range for the walk.
    """

    def __init__(
        self,
        model: CrossEncoderModel,
        profile: DeviceProfile,
        config: PrismConfig | None = None,
        precision_target: float = 0.95,
        sample_rate: float = 0.25,
        step: float = 0.05,
        min_threshold: float = 0.02,
        max_threshold: float = 1.5,
    ) -> None:
        if not 0 < precision_target <= 1:
            raise ValueError("precision_target must lie in (0, 1]")
        if not 0 < sample_rate <= 1:
            raise ValueError("sample_rate must lie in (0, 1]")
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0 <= min_threshold < max_threshold:
            raise ValueError("need 0 <= min_threshold < max_threshold")
        self.model = model
        self.profile = profile
        self.config = config or PrismConfig(numerics=False)
        self.precision_target = precision_target
        self.sample_rate = sample_rate
        self.step = step
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold

        self.device: Device = profile.create()
        self.engine = PrismEngine(model, self.device, self.config)
        self.engine.prepare()
        self.stats = ServiceStats()
        self._pending_samples: list[SampledRequest] = []
        self._stride = SampleStride(sample_rate)

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        return self.engine.pruner.dispersion_threshold

    def _set_threshold(self, value: float) -> None:
        value = float(np.clip(value, self.min_threshold, self.max_threshold))
        self.engine.pruner.dispersion_threshold = value
        self.config = replace(self.config, dispersion_threshold=value)

    def apply_threshold(self, value: float) -> float:
        """Externally set the operating threshold (clamped); returns it.

        This is the hook a fleet coordinator uses to propagate a
        consensus threshold to every replica after a maintenance round
        (DESIGN.md §5); the clamp range stays authoritative.
        """
        self._set_threshold(value)
        return self.threshold

    # ------------------------------------------------------------------
    # serving path
    # ------------------------------------------------------------------
    def select(
        self, batch: CandidateBatch, k: int, sample: bool | None = None
    ) -> RerankResult:
        """Serve one request; log it for idle checking per the rate.

        ``sample`` overrides the internal sampling policy for this
        request: ``True`` forces the request into the idle-check log,
        ``False`` keeps it out, and ``None`` (default) applies the
        deterministic ``sample_rate`` stride.  External drivers (the
        fleet admission layer) use the override to keep the sampled
        stream uniform across replicas even under skewed routing.
        """
        result = self.engine.rerank(batch, k)
        self.stats.requests_served += 1
        if sample is None:
            sample = self._stride.admit()
        if sample:
            self.stats.requests_sampled += 1
            self._pending_samples.append(
                SampledRequest(batch=batch, k=k, served_top=result.top_indices.copy())
            )
        return result

    # ------------------------------------------------------------------
    # idle path
    # ------------------------------------------------------------------
    def _ground_truth(self, sample: SampledRequest) -> np.ndarray:
        """Full unpruned inference on a shadow device (idle time)."""
        shadow = self.profile.create()
        engine = PrismEngine(
            self.model, shadow, replace(self.config, pruning_enabled=False)
        )
        engine.prepare()
        return engine.rerank(sample.batch, sample.k).top_indices

    def _sampled_precision(self) -> tuple[int, float]:
        overlaps = [
            top_k_overlap(sample.served_top, self._ground_truth(sample), sample.k)
            for sample in self._pending_samples
        ]
        return len(overlaps), float(np.mean(overlaps)) if overlaps else 1.0

    def idle_maintenance(self) -> MaintenanceReport | None:
        """Run one background calibration pass; returns its report.

        No-op (returns None) when no samples are pending.  Applies one
        §4.1 step: precision below target → raise the threshold (be
        more conservative); at or above target → lower it (go faster).
        """
        if not self._pending_samples:
            return None
        checked, precision = self._sampled_precision()
        old = self.threshold
        if precision < self.precision_target:
            self._set_threshold(old + self.step)
        else:
            self._set_threshold(old - self.step)
        self._pending_samples.clear()
        report = MaintenanceReport(
            samples_checked=checked,
            sampled_precision=precision,
            old_threshold=old,
            new_threshold=self.threshold,
        )
        self.stats.maintenance_passes += 1
        self.stats.history.append(report)
        return report

    @property
    def pending_samples(self) -> int:
        return len(self._pending_samples)
