"""Fleet-shared semantic data plane (DESIGN.md §12).

PR 3's :class:`~repro.core.streaming.WeightPlane` removed redundant
*weight* reads across concurrent passes; this module removes the same
redundancy from the *inputs*.  At fleet scale the request stream is
Zipf-skewed — users repeat queries, share candidate chunks and re-embed
the same tokens — so a fleet-shared cache plane over semantic selection
data pays for itself at modest overlap.  Three layers, cheapest first:

1. **Request-level memoization** — a canonical fingerprint of (model,
   query, candidate set, k, sampling/threshold config) short-circuits a
   request that is byte-identical to one already completed (memo hit)
   or still in flight (the follower *attaches* to the leader's pending
   result, exactly like :class:`~repro.core.streaming.PlanePass`
   attach).  A hit never occupies a scheduler slot.
2. **Partial-overlap candidate reuse** — per-(model, query, candidate)
   score entries let a request sharing only *some* candidate rows skip
   the shared rows and run a reduced pass over the residue.  This is
   exact by construction: candidate rows are scored independently
   (:class:`~repro.model.semantics.ScoreDynamics` keys each trajectory
   on (model_seed, uid, relevance, layer), never on batch
   composition), so cached rows make the selection algebra a pure
   scalar computation and only residue rows need the model forward.
   The final selection is recovered by a zero-cost full-batch replay
   on a shadow engine (`SemanticSelectionService.replay_selection`),
   byte-identical to a full serving pass by the repo's cross-tier
   determinism.
3. **Fleet-shared embedding residency** — :class:`SharedEmbeddingCache`
   promotes the per-engine §4.4 row cache to plane scope with
   refcounted pins, so a row any replica faulted in stays resident for
   the whole fleet and cannot be evicted mid-pass under a reader.

Invalidation is epoch-keyed: threshold recalibration (§4.1 consensus
maintenance) bumps the plane epoch, which purges every memo and row
entry in one sweep (fingerprints embed the epoch, so stale entries are
unreachable even before the purge).  The plane publishes ``cache_hit``
and ``cache_evict`` events into the §10 event log and mirrors
:class:`~repro.core.streaming.PlaneStats` with :class:`DataPlaneStats`.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from typing import Any

import numpy as np

from ..device.executor import DeviceExecutor
from ..device.memory import CATEGORY_EMBEDDING
from ..model.transformer import CandidateBatch
from .embedding_cache import CacheLookup
from .events import EVENT_CACHE_EVICT, EVENT_CACHE_HIT, EventLog


def clone_result(result: Any) -> Any:
    """Deep-enough copy of a ``RerankResult`` for cache hand-out.

    Hits and followers each receive their own index/score arrays so a
    caller mutating its selection cannot corrupt the memo entry (or a
    sibling's response).  Scalars are immutable; ``prune_events`` is
    shallow-copied (events are append-only records).
    """
    return replace(
        result,
        top_indices=np.array(result.top_indices, copy=True),
        top_scores=np.array(result.top_scores, copy=True),
        prune_events=list(result.prune_events),
    )


# ---------------------------------------------------------------------------
# configuration & statistics
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DataPlaneConfig:
    """Tunables for the :class:`DataPlane`."""

    #: LRU capacity of the request-level memo (completed results).
    max_entries: int = 256
    #: LRU capacity of the per-candidate row directory that drives
    #: partial-overlap reuse.
    max_row_entries: int = 65536
    #: Minimum shared-row fraction for the overlap path to engage; below
    #: it a reduced pass saves too little to be worth the replay.
    min_overlap: float = 0.25
    #: Layer 1+2 toggle: request memoization and in-flight coalescing.
    memoize: bool = True
    #: Layer 2 toggle: partial-overlap candidate reuse.
    overlap_reuse: bool = True

    def __post_init__(self) -> None:
        if self.max_entries <= 0 or self.max_row_entries <= 0:
            raise ValueError("cache capacities must be positive")
        if not 0.0 < self.min_overlap <= 1.0:
            raise ValueError("min_overlap must lie in (0, 1]")


@dataclass
class DataPlaneStats:
    """Counters mirroring :class:`~repro.core.streaming.PlaneStats`.

    ``seconds_saved`` is virtual service time the plane kept off the
    device clocks; ``bytes_saved`` is SSD traffic (weight sweeps +
    embedding misses) not re-read thanks to the plane.
    """

    requests: int = 0
    memo_hits: int = 0
    coalesced: int = 0
    overlap_hits: int = 0
    misses: int = 0
    shared_rows: int = 0
    residue_rows: int = 0
    bytes_saved: int = 0
    seconds_saved: float = 0.0
    evictions: int = 0
    invalidations: int = 0
    redispatched: int = 0
    epoch: int = 0
    memo_entries: int = 0
    row_entries: int = 0

    @property
    def hits(self) -> int:
        """Every request the plane answered without a full pass."""
        return self.memo_hits + self.coalesced + self.overlap_hits

    @property
    def hit_rate(self) -> float | None:
        """Hit fraction, or ``None`` for a plane that saw no requests
        (mirrors the FleetStats empty-sample helpers)."""
        if self.requests == 0:
            return None
        return self.hits / self.requests


class _MemoEntry:
    """One completed result held by the request-level memo."""

    __slots__ = ("result", "service_seconds", "weight_bytes")

    def __init__(self, result: Any, service_seconds: float, weight_bytes: int) -> None:
        self.result = result
        self.service_seconds = service_seconds
        self.weight_bytes = weight_bytes


class _PendingEntry:
    """An in-flight leader and the followers attached to its result."""

    __slots__ = ("leader", "followers")

    def __init__(self, leader: Any) -> None:
        self.leader = leader
        self.followers: list[tuple[Any, float]] = []


@dataclass
class AdmitDecision:
    """What the plane decided for one admitted request.

    ``kind`` is ``"hit"`` (memoized result attached, never reaches a
    scheduler), ``"coalesced"`` (attached to an in-flight leader's
    pending result) or ``"leader"`` (must run; ``shared``/``residue``
    carry the partial-overlap plan when layer 2 engaged).
    """

    kind: str
    result: Any = None
    service_seconds: float = 0.0
    weight_bytes: int = 0
    shared: np.ndarray | None = None
    residue: np.ndarray | None = None


# ---------------------------------------------------------------------------
# the plane
# ---------------------------------------------------------------------------
class DataPlane:
    """Fleet-shared memo + candidate-row cache (DESIGN.md §12).

    The plane is a passive directory: it never touches a clock or a
    scheduler.  Owners (:class:`~repro.core.fleet.FleetService`, or a
    :class:`~repro.core.service.SemanticSelectionService` for
    device-tier use) drive it through four calls — :meth:`fingerprint`,
    :meth:`admit`, :meth:`complete`, :meth:`invalidate` — and remain
    responsible for serving leaders and resolving follower outcomes.
    Follower payloads are opaque to the plane.
    """

    def __init__(
        self,
        config: DataPlaneConfig | None = None,
        *,
        model_key: str = "",
        threshold: float | None = None,
    ) -> None:
        self.config = config or DataPlaneConfig()
        self.model_key = model_key
        self.epoch = 0
        self._threshold = threshold
        self._memo: OrderedDict[str, _MemoEntry] = OrderedDict()
        self._rows: OrderedDict[bytes, None] = OrderedDict()
        self._pending: dict[str, _PendingEntry] = {}
        self._stats = DataPlaneStats()
        self.events: EventLog | None = None
        self.events_tier = "fleet"
        self.events_replica: int | None = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_event_log(
        self, log: EventLog | None, tier: str = "fleet", replica: int | None = None
    ) -> None:
        self.events = log
        self.events_tier = tier
        self.events_replica = replica

    def _emit(self, kind: str, at: float, request: Any = None, **data: Any) -> None:
        if self.events is None:
            return
        self.events.emit(
            kind,
            at=at,
            tier=self.events_tier,
            request=request,
            replica=self.events_replica,
            **data,
        )

    def stats(self) -> DataPlaneStats:
        """A snapshot of the counters plus current directory sizes."""
        return replace(
            self._stats,
            epoch=self.epoch,
            memo_entries=len(self._memo),
            row_entries=len(self._rows),
        )

    # ------------------------------------------------------------------
    # fingerprints
    # ------------------------------------------------------------------
    def fingerprint(
        self,
        batch: CandidateBatch,
        k: int,
        *,
        threshold: float,
        sample_rate: float | None = None,
    ) -> str:
        """Canonical fingerprint of one request's full semantic identity.

        Covers the model (name + seed via ``model_key``), the plane
        epoch, every selection-relevant config scalar (k, dispersion
        threshold, sampling rate) and the byte-exact candidate batch.
        The query is implicitly covered: ``batch_pairs`` concatenates
        the query tokens into every candidate row.
        """
        h = blake2b(digest_size=16)
        h.update(self.model_key.encode())
        h.update(struct.pack("<qqd", self.epoch, int(k), float(threshold)))
        h.update(repr(sample_rate).encode())
        for name in ("tokens", "lengths", "uids", "relevance"):
            h.update(np.ascontiguousarray(getattr(batch, name)).tobytes())
        return h.hexdigest()

    def row_keys(self, batch: CandidateBatch) -> list[bytes]:
        """Per-(model, query, candidate) key for each batch row.

        No epoch: the row directory is purged wholesale on epoch bumps,
        so membership alone implies epoch validity.
        """
        tokens = np.ascontiguousarray(batch.tokens)
        keys: list[bytes] = []
        for i in range(batch.size):
            h = blake2b(digest_size=16)
            h.update(self.model_key.encode())
            h.update(tokens[i].tobytes())
            h.update(
                struct.pack(
                    "<qqd",
                    int(batch.lengths[i]),
                    int(batch.uids[i]),
                    float(batch.relevance[i]),
                )
            )
            keys.append(h.digest())
        return keys

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(
        self,
        fp: str,
        batch: CandidateBatch,
        *,
        payload: Any = None,
        at: float = 0.0,
        request: Any = None,
        overlap: bool = True,
    ) -> AdmitDecision:
        """Route one request through the plane.

        ``payload`` is the owner's opaque handle (e.g. the FleetRequest)
        stored on pending entries so :meth:`complete`/:meth:`invalidate`
        can hand followers back for resolution or re-dispatch.
        ``overlap=False`` disables layer 2 for this admission — the
        device-tier owner has no reduced-pass machinery, so letting the
        planner engage would count overlap hits it cannot serve.
        """
        stats = self._stats
        stats.requests += 1

        if self.config.memoize:
            entry = self._memo.get(fp)
            if entry is not None:
                self._memo.move_to_end(fp)
                stats.memo_hits += 1
                stats.seconds_saved += entry.service_seconds
                stats.bytes_saved += entry.weight_bytes
                self._emit(EVENT_CACHE_HIT, at, request=request, mode="memo", fp=fp)
                return AdmitDecision(
                    kind="hit",
                    result=clone_result(entry.result),
                    service_seconds=entry.service_seconds,
                    weight_bytes=entry.weight_bytes,
                )
            pending = self._pending.get(fp)
            if pending is not None:
                pending.followers.append((payload, at))
                stats.coalesced += 1
                self._emit(
                    EVENT_CACHE_HIT, at, request=request, mode="coalesced", fp=fp
                )
                return AdmitDecision(kind="coalesced")
            self._pending[fp] = _PendingEntry(leader=payload)

        decision = AdmitDecision(kind="leader")
        if self.config.overlap_reuse and overlap:
            plan = self._overlap_plan(batch)
            if plan is not None:
                decision.shared, decision.residue = plan
                stats.overlap_hits += 1
                stats.shared_rows += int(decision.shared.size)
                stats.residue_rows += int(decision.residue.size)
                self._emit(
                    EVENT_CACHE_HIT,
                    at,
                    request=request,
                    mode="overlap",
                    fp=fp,
                    shared=int(decision.shared.size),
                    residue=int(decision.residue.size),
                )
                return decision
        stats.misses += 1
        return decision

    def _overlap_plan(
        self, batch: CandidateBatch
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Split a batch into (shared, residue) row positions, or None
        when too few rows are cached to clear ``min_overlap``."""
        if not self._rows or batch.size == 0:
            return None
        keys = self.row_keys(batch)
        shared = [i for i, key in enumerate(keys) if key in self._rows]
        if not shared or len(shared) < self.config.min_overlap * batch.size:
            return None
        shared_set = set(shared)
        residue = [i for i in range(batch.size) if i not in shared_set]
        for i in shared:
            self._rows.move_to_end(keys[i])
        return (
            np.asarray(shared, dtype=np.int64),
            np.asarray(residue, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # completion / invalidation
    # ------------------------------------------------------------------
    def complete(
        self,
        fp: str,
        batch: CandidateBatch,
        result: Any,
        *,
        service_seconds: float,
        weight_bytes: int,
        at: float,
        request: Any = None,
    ) -> list[tuple[Any, float]]:
        """A leader finished: memoize, index its rows, hand back the
        followers (as ``(payload, attached_at)``) for resolution.

        Each resolved follower's savings are the leader's full cost —
        they would each have run the identical pass."""
        pending = self._pending.pop(fp, None)
        followers = pending.followers if pending is not None else []
        stats = self._stats
        if self.config.memoize:
            self._memo[fp] = _MemoEntry(
                clone_result(result), service_seconds, weight_bytes
            )
            self._memo.move_to_end(fp)
            evicted = 0
            while len(self._memo) > self.config.max_entries:
                self._memo.popitem(last=False)
                evicted += 1
            if evicted:
                stats.evictions += evicted
                self._emit(
                    EVENT_CACHE_EVICT, at, request=request,
                    scope="memo", count=evicted, reason="lru",
                )
        if self.config.overlap_reuse:
            for key in self.row_keys(batch):
                self._rows[key] = None
                self._rows.move_to_end(key)
            evicted = 0
            while len(self._rows) > self.config.max_row_entries:
                self._rows.popitem(last=False)
                evicted += 1
            if evicted:
                stats.evictions += evicted
                self._emit(
                    EVENT_CACHE_EVICT, at, request=request,
                    scope="rows", count=evicted, reason="lru",
                )
        for _payload, _attached in followers:
            stats.seconds_saved += service_seconds
            stats.bytes_saved += weight_bytes
        return followers

    def invalidate(
        self, fp: str, *, at: float, reason: str, request: Any = None
    ) -> list[tuple[Any, float]]:
        """A leader died (shed / cancelled / faulted): drop the pending
        entry so the failure never poisons the memo, and hand the
        followers back for re-dispatch."""
        pending = self._pending.pop(fp, None)
        if pending is None:
            return []
        stats = self._stats
        stats.invalidations += 1
        stats.redispatched += len(pending.followers)
        self._emit(
            EVENT_CACHE_EVICT, at, request=request,
            scope="pending", reason=reason, followers=len(pending.followers),
        )
        return pending.followers

    def note_saved(self, seconds: float, nbytes: int) -> None:
        """Owner-reported savings (the overlap path's reduced pass)."""
        self._stats.seconds_saved += seconds
        self._stats.bytes_saved += nbytes

    # ------------------------------------------------------------------
    # invalidation epochs
    # ------------------------------------------------------------------
    def on_threshold(self, threshold: float, *, at: float = 0.0) -> None:
        """Threshold recalibration hook: a changed consensus threshold
        bumps the epoch (stale scores were selected under different
        pruning behaviour — fingerprints already embed the threshold,
        the bump frees the memory and makes the purge observable)."""
        if self._threshold is not None and threshold != self._threshold:
            self.bump_epoch(at=at, reason="threshold")
        self._threshold = threshold

    def bump_epoch(self, *, at: float = 0.0, reason: str = "epoch") -> None:
        """Advance the model/config epoch, purging memo + row entries.

        Pending leaders are left untouched: they complete against their
        own fingerprint and must still resolve their followers (their
        results stay exact — the epoch only gates *reuse* by later
        requests, which fingerprint under the new epoch)."""
        purged = len(self._memo) + len(self._rows)
        self._memo.clear()
        self._rows.clear()
        self.epoch += 1
        self._stats.invalidations += purged
        self._emit(
            EVENT_CACHE_EVICT, at, scope="epoch",
            count=purged, reason=reason, epoch=self.epoch,
        )


# ---------------------------------------------------------------------------
# fleet-shared embedding residency (layer 3)
# ---------------------------------------------------------------------------
class EmbeddingPin:
    """A pass's refcount on the rows it resolved; release at pass end.

    Double-release safe, and released automatically by the engine on
    both the normal and the fault/cancel teardown paths."""

    __slots__ = ("_plane", "_tokens")

    def __init__(self, plane: "SharedEmbeddingCache", tokens: list[int]) -> None:
        self._plane = plane
        self._tokens = tokens

    def release(self) -> None:
        if self._tokens:
            self._plane._release(self._tokens)
            self._tokens = []


class SharedEmbeddingCache:
    """Embedding-row residency promoted from per-engine to plane scope.

    One directory serves every attached replica: a row any replica
    faulted in is a hit for the whole fleet.  Residency is refcounted —
    :meth:`lookup` pins the rows a pass touches until the returned
    :class:`EmbeddingPin` is released at the pass boundary, and the LRU
    never evicts a pinned row (capacity may transiently overflow when
    every row is pinned; ``pinned_overflow`` counts those admissions).
    Each attached device charges its own fixed cache slab to its own
    memory tracker, and a miss's disk read is charged on the *calling*
    replica's executor — accounting stays per-device while residency is
    fleet-wide.
    """

    def __init__(self, fraction: float = 0.10, capacity_rows: int | None = None) -> None:
        if capacity_rows is not None and capacity_rows <= 0:
            raise ValueError("capacity_rows must be positive")
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        self.fraction = fraction
        self.capacity_rows = capacity_rows
        self.row_nbytes: int | None = None
        self.tag = "embedding-plane"
        self._resident: OrderedDict[int, int] = OrderedDict()  # token -> refcount
        self._attached: list[DeviceExecutor] = []
        self.total_hits = 0
        self.total_misses = 0
        self.total_evictions = 0
        self.pinned_overflow = 0

    # ------------------------------------------------------------------
    def attach(self, executor: DeviceExecutor, vocab_size: int, row_nbytes: int) -> None:
        """Fix capacity on first attach; charge this device's slab."""
        if self.capacity_rows is None:
            self.capacity_rows = max(1, int(vocab_size * self.fraction))
        if self.row_nbytes is None:
            self.row_nbytes = row_nbytes
        elif self.row_nbytes != row_nbytes:
            raise ValueError(
                f"embedding plane row size mismatch: {self.row_nbytes} != {row_nbytes}"
            )
        if executor in self._attached:
            return
        executor.device.memory.alloc(
            self.tag, self.capacity_rows * self.row_nbytes, CATEGORY_EMBEDDING
        )
        self._attached.append(executor)

    def detach(self, executor: DeviceExecutor) -> None:
        if executor in self._attached:
            executor.device.memory.free(self.tag)
            self._attached.remove(executor)

    # ------------------------------------------------------------------
    def lookup(
        self, token_ids: np.ndarray, executor: DeviceExecutor
    ) -> tuple[CacheLookup, EmbeddingPin]:
        """Resolve a pass's tokens against the shared directory.

        Misses are read in one batched disk request on the *calling*
        executor; every resolved row is pinned until the returned
        :class:`EmbeddingPin` is released."""
        if executor not in self._attached:
            raise RuntimeError("SharedEmbeddingCache.lookup before attach()")
        assert self.capacity_rows is not None and self.row_nbytes is not None
        unique = np.unique(np.asarray(token_ids).ravel())
        tokens = [int(t) for t in unique.tolist()]
        resident = self._resident
        miss_set = set(tokens).difference(resident.keys())
        missing = [t for t in tokens if t in miss_set]
        hits = len(tokens) - len(missing)
        for token in tokens:
            if token not in miss_set:
                resident[token] += 1
                resident.move_to_end(token)

        io_seconds = 0.0
        miss_bytes = len(missing) * self.row_nbytes
        if missing:
            before = executor.now
            executor.read_blocking(f"{self.tag}/miss", miss_bytes)
            io_seconds = executor.now - before
            for token in missing:
                self._admit(token)

        self.total_hits += hits
        self.total_misses += len(missing)
        lookup = CacheLookup(
            unique_tokens=int(unique.size),
            hits=hits,
            misses=len(missing),
            miss_bytes=miss_bytes,
            io_seconds=io_seconds,
        )
        return lookup, EmbeddingPin(self, tokens)

    def _admit(self, token: int) -> None:
        resident = self._resident
        if token in resident:
            resident[token] += 1
            resident.move_to_end(token)
            return
        while len(resident) >= self.capacity_rows:
            victim = next(
                (t for t, refs in resident.items() if refs == 0), None
            )
            if victim is None:
                # every row is pinned by an in-flight pass: admit over
                # capacity rather than evict under a reader.
                self.pinned_overflow += 1
                break
            del resident[victim]
            self.total_evictions += 1
        resident[token] = 1  # admitted pinned by the resolving pass

    def _release(self, tokens: list[int]) -> None:
        resident = self._resident
        for token in tokens:
            refs = resident.get(token)
            if refs is not None and refs > 0:
                resident[token] = refs - 1

    # ------------------------------------------------------------------
    @property
    def resident_rows(self) -> int:
        return len(self._resident)

    @property
    def pinned_rows(self) -> int:
        return sum(1 for refs in self._resident.values() if refs > 0)

    def is_resident(self, token: int) -> bool:
        return token in self._resident

    @property
    def hit_rate(self) -> float | None:
        total = self.total_hits + self.total_misses
        if total == 0:
            return None
        return self.total_hits / total
