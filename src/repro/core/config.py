"""PRISM engine configuration.

Each boolean maps to one of the four techniques, so the Figure 16
ablation is expressed as a sequence of configs, and the threshold knob
exposes the precision-latency spectrum of Figure 10 (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..device.memory import MiB


@dataclass(frozen=True)
class PrismConfig:
    """Feature flags and tunables for :class:`~repro.core.engine.PrismEngine`."""

    # --- progressive cluster pruning (§4.1) ---
    pruning_enabled: bool = True
    #: CV trigger: clustering/pruning only fires once score dispersion
    #: exceeds this.  Lower = more aggressive (faster, riskier); higher
    #: = conservative.  Figure 10 sweeps this.  The default sits at the
    #: aggressive end — the statistical-distinctness guard in
    #: :mod:`repro.core.clustering` keeps routing precision-safe there.
    dispersion_threshold: float = 0.22
    #: Do not evaluate the trigger before this many layers have run
    #: (provisional scores straight out of the embedding carry no signal).
    min_layers_before_pruning: int = 2
    #: §7 "exact rank order" mode: only drop hopeless candidates; keep
    #: winners computing so the returned top-K carries exact final scores.
    exact_rank_mode: bool = False
    max_clusters: int = 6
    #: CPU-side costs charged per §4.1 (~1 ms K-Means, negligible CV check).
    clustering_latency: float = 1.0e-3
    cv_check_latency: float = 5.0e-5

    # --- chunked execution (§4.3) ---
    chunked_execution: bool = True
    #: Peak bytes allowed for one chunk's transient intermediate tensors.
    chunk_memory_budget: int = 160 * MiB
    #: Lower bound on a chunk's per-layer compute window, so chunks stay
    #: large enough to saturate the device (§4.3).
    min_chunk_compute_window: float = 2.0e-3
    #: Hidden-state offloading: "off", "on", or "auto" (enable only when
    #: the aggregate hidden slab exceeds ``hidden_memory_budget``).
    hidden_offload: str = "auto"
    hidden_memory_budget: int = 256 * MiB

    # --- overlapped layer streaming (§4.2) ---
    layer_streaming: bool = True
    #: Share one refcounted weight plane across concurrent passes
    #: (DESIGN.md §7): the first in-flight request to need a layer
    #: triggers its SSD read, the rest attach for free.  Requires
    #: ``layer_streaming``; ignored without it.  Off by default — solo
    #: serving gains nothing and the plane's residency window grows
    #: with inter-request skew.
    shared_weight_plane: bool = False

    # --- embedding table caching (§4.4) ---
    embedding_cache: bool = True
    #: Cache capacity as a fraction of the vocabulary (paper: 10 %).
    embedding_cache_fraction: float = 0.10

    # --- execution mode ---
    quantized: bool = False  # W4A16 weights (PRISM Quant)
    numerics: bool = True  # run the reduced-width numpy tensors

    def __post_init__(self) -> None:
        if self.dispersion_threshold < 0:
            raise ValueError("dispersion_threshold must be non-negative")
        if self.min_layers_before_pruning < 0:
            raise ValueError("min_layers_before_pruning must be non-negative")
        if self.hidden_offload not in ("off", "on", "auto"):
            raise ValueError(f"bad hidden_offload {self.hidden_offload!r}")
        if not 0 < self.embedding_cache_fraction <= 1:
            raise ValueError("embedding_cache_fraction must lie in (0, 1]")
        if self.chunk_memory_budget <= 0 or self.hidden_memory_budget <= 0:
            raise ValueError("memory budgets must be positive")
        if self.max_clusters < 2:
            raise ValueError("max_clusters must be at least 2")

    # ------------------------------------------------------------------
    # convenience constructors used by the evaluation
    # ------------------------------------------------------------------
    def with_threshold(self, threshold: float) -> "PrismConfig":
        return replace(self, dispersion_threshold=threshold)

    @classmethod
    def full(cls, **overrides) -> "PrismConfig":
        """All four techniques on (the system evaluated as "PRISM")."""
        return cls(**overrides)

    @classmethod
    def quant(cls, **overrides) -> "PrismConfig":
        """PRISM Quant: all techniques over W4A16 weights."""
        return cls(quantized=True, **overrides)

    @classmethod
    def ablation_pruning_only(cls, **overrides) -> "PrismConfig":
        """Figure 16 step 1: + progressive cluster pruning."""
        return cls(
            chunked_execution=False,
            layer_streaming=False,
            embedding_cache=False,
            **overrides,
        )

    @classmethod
    def ablation_chunked(cls, **overrides) -> "PrismConfig":
        """Figure 16 step 2: + chunked execution."""
        return cls(layer_streaming=False, embedding_cache=False, **overrides)

    @classmethod
    def ablation_streaming(cls, **overrides) -> "PrismConfig":
        """Figure 16 step 3: + overlapped layer streaming (dual buffer)."""
        return cls(embedding_cache=False, **overrides)
