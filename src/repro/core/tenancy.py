"""Tenant-aware fair admission: SLO classes, token buckets, WFQ (DESIGN.md §13).

A fleet serving thousands of tenants cannot hand its admission queue
to whoever shouts loudest: one tenant's burst would starve everyone
else's interactive traffic.  This module provides the fleet's
multi-tenant admission plane:

* **SLO classes** — every tenant belongs to one of three classes
  (``interactive`` / ``batch`` / ``best_effort``), each carrying a
  scheduler lane, an optional per-class deadline, a fair-queuing
  weight and a *shed bound*: the largest fraction of a tenant's
  traffic the fleet may shed under overload before the class's SLO is
  considered violated (the bound ``perf_gate.py`` enforces in CI).
* **Token buckets** — per-tenant rate limits.  Buckets start full
  (``burst`` tokens) and refill continuously at ``rate`` tokens per
  simulated second; a request that finds no token is shed at
  admission with detail ``"rate_limit"``, before it can occupy a
  replica.  Refill is computed from the fleet-clock instant of the
  admission decision, so the outcome is independent of dispatch
  batching order — deterministic by construction.
* **Weighted fair queuing** — admitted requests are ordered by
  start-time fair queuing (SFQ): each request is stamped with a
  virtual *start tag* ``max(vtime, tenant.finish)`` and advances its
  tenant's finish tag by ``1 / (class.weight × tenant.weight)``; the
  dispatcher always flushes the smallest start tags first.  SFQ is
  work-conserving (the queue never idles while backlog exists) and
  starvation-free: a tenant's next tag grows only when it is served,
  so a backlogged tenant's tag is eventually the minimum no matter
  how heavy its neighbours are.

**Starvation-freedom guarantee.**  Buckets start full with
``burst >= 1``, so every tenant's first request is admitted; the
fleet's drain loop serves everything admitted; and SFQ bounds how
long any admitted request can be overtaken.  Hence every tenant that
sends traffic completes at least one request, at any overload — the
property ``benchmarks/test_multitenant.py`` pins at 10x overload with
1000+ tenants.

The plane deliberately sits *in front of* the existing priority/EDF
lanes and the §12 data plane: a memoized cache hit costs the fleet
nothing and therefore consumes no token.  With ``tenancy=None`` (the
default) :class:`~repro.core.fleet.FleetService` never touches this
module and serving stays byte-identical to a fleet built before it
existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from .scheduler import LANE_BATCH, LANE_INTERACTIVE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports us)
    from .fleet import RequestOutcome
    from .scheduler import DroppedRequest


# ---------------------------------------------------------------------------
# SLO classes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SLOClass:
    """One service-level class: lane, deadline, weight, shed bound.

    ``shed_bound`` is the contract the CI gate enforces: under any
    overload, no tenant of this class may have more than this fraction
    of its submitted requests shed.  ``deadline_s`` is the class's
    default completion deadline (``None`` = no deadline), applied by
    consumers that opt into deadline enforcement.
    """

    name: str
    priority: int
    deadline_s: float | None
    shed_bound: float
    weight: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.shed_bound <= 1.0:
            raise ValueError("shed_bound must lie in [0, 1]")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


SLO_INTERACTIVE = SLOClass(
    name="interactive",
    priority=LANE_INTERACTIVE,
    deadline_s=2.0,
    shed_bound=0.25,
    weight=4.0,
)
SLO_BATCH = SLOClass(
    name="batch", priority=LANE_BATCH, deadline_s=10.0, shed_bound=0.80, weight=2.0
)
SLO_BEST_EFFORT = SLOClass(
    name="best_effort", priority=LANE_BATCH, deadline_s=None, shed_bound=0.995, weight=1.0
)

#: name → class, the closed taxonomy tenants are assigned from.
SLO_CLASSES: dict[str, SLOClass] = {
    c.name: c for c in (SLO_INTERACTIVE, SLO_BATCH, SLO_BEST_EFFORT)
}


# ---------------------------------------------------------------------------
# per-tenant policy & config
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TenantPolicy:
    """Admission contract of one tenant (or the default for unknowns).

    ``rate`` is the token-bucket refill rate in requests per simulated
    second (``None`` = unlimited: the bucket never denies); ``burst``
    is the bucket depth — the short burst a tenant may send above its
    sustained rate.  ``weight`` multiplies the SLO class's weight in
    the fair queue.
    """

    slo: str = SLO_BEST_EFFORT.name
    weight: float = 1.0
    rate: float | None = None
    burst: float = 2.0

    def __post_init__(self) -> None:
        if self.slo not in SLO_CLASSES:
            known = ", ".join(sorted(SLO_CLASSES))
            raise ValueError(f"unknown SLO class {self.slo!r}; known: {known}")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.rate is not None and self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.burst < 1:
            # The starvation-freedom guarantee needs every tenant's
            # first request admitted: a bucket that starts below one
            # token could deny a tenant forever.
            raise ValueError("burst must be >= 1")

    @property
    def slo_class(self) -> SLOClass:
        return SLO_CLASSES[self.slo]


@dataclass(frozen=True)
class TenancyConfig:
    """The fleet's multi-tenant admission configuration.

    ``policies`` maps tenant id → :class:`TenantPolicy`; tenants not
    listed (including the anonymous ``None`` tenant) fall back to
    ``default``.  ``max_tenant_queue`` caps how many of one tenant's
    requests may sit in the dispatch queue at once (excess is shed
    with detail ``"queue_limit"``); ``None`` leaves the queue uncapped.
    """

    policies: Mapping[str, TenantPolicy] = field(default_factory=dict)
    default: TenantPolicy = field(default_factory=TenantPolicy)
    max_tenant_queue: int | None = None

    def __post_init__(self) -> None:
        if self.max_tenant_queue is not None and self.max_tenant_queue < 1:
            raise ValueError("max_tenant_queue must be >= 1")

    def policy_for(self, tenant: str | None) -> TenantPolicy:
        if tenant is not None and tenant in self.policies:
            return self.policies[tenant]
        return self.default


# ---------------------------------------------------------------------------
# token bucket
# ---------------------------------------------------------------------------
@dataclass
class TokenBucket:
    """Continuous-refill token bucket on the fleet's virtual clock.

    Starts full.  Refill is a pure function of the elapsed virtual
    time since the last refill, so admission outcomes depend only on
    request arrival instants — never on host wall time or dispatch
    interleaving.
    """

    rate: float | None
    burst: float
    tokens: float = field(init=False)
    _last: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.tokens = float(self.burst)

    def refill(self, at: float) -> None:
        if at <= self._last:
            return
        if self.rate is not None:
            self.tokens = min(float(self.burst), self.tokens + self.rate * (at - self._last))
        self._last = at

    def try_take(self, at: float, cost: float = 1.0) -> bool:
        """Refill to ``at``; take ``cost`` tokens if available."""
        self.refill(at)
        if self.rate is None:
            return True
        if self.tokens + 1e-12 >= cost:
            self.tokens -= cost
            return True
        return False

    @property
    def debt(self) -> float:
        """How far below full the bucket sits (0 = fully recovered).

        The per-tenant ``token_debt`` surfaced in
        :class:`~repro.core.fleet.FleetStats` — a tenant deep in debt
        has been spending its burst allowance faster than it refills.
        """
        if self.rate is None:
            return 0.0
        return max(0.0, float(self.burst) - self.tokens)


# ---------------------------------------------------------------------------
# fair admission (WFQ over tenants)
# ---------------------------------------------------------------------------
@dataclass
class TenantState:
    """The admission plane's live view of one tenant."""

    tenant: str | None
    policy: TenantPolicy
    bucket: TokenBucket
    finish_tag: float = 0.0
    queued: int = 0

    @property
    def effective_weight(self) -> float:
        return self.policy.weight * self.policy.slo_class.weight


class FairAdmission:
    """Token-bucket admission + start-time fair queuing over tenants.

    The fleet's drain loop calls :meth:`admit` once per arriving
    request (a ``None`` verdict admits; a string verdict names the
    shed detail), :meth:`note_queued` for requests that re-enter the
    queue without a fresh charge (failover retries, re-dispatched
    data-plane followers), :meth:`order_key` to sort the dispatch
    queue fairly, and :meth:`on_flush` when requests leave the queue.
    """

    def __init__(self, config: TenancyConfig) -> None:
        self.config = config
        self.states: dict[str | None, TenantState] = {}
        #: SFQ virtual time: the largest start tag dispatched so far.
        self.vtime = 0.0
        #: request id → (start tag, admission sequence) — the fair order.
        self._tags: dict[int, tuple[float, int]] = {}
        self._seq = 0
        #: Sheds by detail, for the dashboard (``rate_limit`` / ``queue_limit``).
        self.shed_counts: dict[str, int] = {}

    def state(self, tenant: str | None) -> TenantState:
        if tenant not in self.states:
            policy = self.config.policy_for(tenant)
            self.states[tenant] = TenantState(
                tenant=tenant,
                policy=policy,
                bucket=TokenBucket(rate=policy.rate, burst=policy.burst),
            )
        return self.states[tenant]

    # -- admission ------------------------------------------------------
    def admit(self, tenant: str | None, request_id: int, at: float) -> str | None:
        """Charge one request; ``None`` admits, else the shed detail."""
        state = self.state(tenant)
        cap = self.config.max_tenant_queue
        if cap is not None and state.queued >= cap:
            self.shed_counts["queue_limit"] = self.shed_counts.get("queue_limit", 0) + 1
            return "queue_limit"
        if not state.bucket.try_take(at):
            self.shed_counts["rate_limit"] = self.shed_counts.get("rate_limit", 0) + 1
            return "rate_limit"
        self._stamp(state, request_id)
        state.queued += 1
        return None

    def note_queued(self, tenant: str | None, request_id: int) -> None:
        """A request re-entered the queue without a fresh token charge
        (failover retry / re-dispatched follower); keep its original
        fair tag if it has one, stamp a fresh one otherwise."""
        state = self.state(tenant)
        if request_id not in self._tags:
            self._stamp(state, request_id)
        state.queued += 1

    def _stamp(self, state: TenantState, request_id: int) -> None:
        start = max(self.vtime, state.finish_tag)
        state.finish_tag = start + 1.0 / state.effective_weight
        self._tags[request_id] = (start, self._seq)
        self._seq += 1

    # -- fair ordering --------------------------------------------------
    def order_key(self, request) -> tuple[float, int]:
        """Sort key of one queued request: (start tag, admission seq)."""
        tag = self._tags.get(request.request_id)
        if tag is None:  # defensive: untagged requests keep FIFO order
            return (self.vtime, self._seq + request.request_id)
        return tag

    def on_flush(self, requests: Iterable) -> None:
        """Requests left the queue for dispatch: advance virtual time."""
        for request in requests:
            tag = self._tags.pop(request.request_id, None)
            if tag is not None:
                self.vtime = max(self.vtime, tag[0])
            state = self.states.get(getattr(request, "tenant", None))
            if state is not None and state.queued > 0:
                state.queued -= 1

    # -- stats ----------------------------------------------------------
    def tenant_stats(
        self,
        outcomes: "Iterable[RequestOutcome]",
        dropped: "Iterable[DroppedRequest]",
    ) -> dict[str | None, "TenantStats"]:
        """Per-tenant rollup over every terminated request so far."""
        latencies: dict[str | None, list[float]] = {}
        sheds: dict[str | None, int] = {}
        other: dict[str | None, int] = {}
        for outcome in outcomes:
            latencies.setdefault(outcome.tenant, []).append(outcome.latency)
        for drop in dropped:
            bucket = sheds if drop.reason == "shed" else other
            bucket[drop.tenant] = bucket.get(drop.tenant, 0) + 1
        tenants = set(latencies) | set(sheds) | set(other) | set(self.states)
        stats: dict[str | None, TenantStats] = {}
        for tenant in tenants:
            state = self.state(tenant)
            done = latencies.get(tenant, [])
            shed = sheds.get(tenant, 0)
            lost = other.get(tenant, 0)
            submitted = len(done) + shed + lost
            stats[tenant] = TenantStats(
                tenant=tenant,
                slo=state.policy.slo,
                weight=state.policy.weight,
                submitted=submitted,
                completed=len(done),
                shed=shed,
                # Empty samples have no percentiles: ``None`` here, and
                # the harness renders it as "-" (the PR 6/8 convention)
                # instead of crashing on a tenant that never completed.
                p50_latency=float(np.percentile(done, 50)) if done else None,
                p99_latency=float(np.percentile(done, 99)) if done else None,
                shed_rate=(shed / submitted) if submitted else 0.0,
                token_debt=state.bucket.debt,
                shed_bound=state.policy.slo_class.shed_bound,
            )
        return stats


@dataclass
class TenantStats:
    """Per-tenant serving rollup surfaced via ``FleetStats.tenants``."""

    tenant: str | None
    slo: str
    weight: float
    submitted: int
    completed: int
    shed: int
    #: ``None`` when the tenant completed nothing — render as "-".
    p50_latency: float | None
    p99_latency: float | None
    shed_rate: float
    token_debt: float
    shed_bound: float

    @property
    def within_bound(self) -> bool:
        """Did the tenant's shed rate stay within its class's SLO bound?"""
        return self.shed_rate <= self.shed_bound


# ---------------------------------------------------------------------------
# traffic-trace bridge (repro.traffic v1 → fleet admission)
# ---------------------------------------------------------------------------
def tenancy_from_trace(trace) -> TenancyConfig:
    """Build the fleet's :class:`TenancyConfig` from a generated
    :class:`~repro.data.traffic.TrafficTrace` header: one
    :class:`TenantPolicy` per tenant profile, defaults for strays."""
    policies = {
        tenant: TenantPolicy(
            slo=profile.slo,
            weight=profile.weight,
            rate=profile.rate,
            burst=profile.burst,
        )
        for tenant, profile in trace.tenants.items()
    }
    return TenancyConfig(policies=policies)


def selection_requests_from_trace(
    trace, tokenizer, max_len: int, *, deadlines: bool = False
) -> list:
    """Materialise a traffic trace as :class:`~repro.core.api.SelectionRequest`\\ s.

    Arrival offsets, SLO-class lanes and tenant ids come from the
    trace; ``deadlines=True`` additionally applies each class's
    default deadline (``SLO_CLASSES[slo].deadline_s``).
    """
    from ..data.workloads import build_batch
    from .api import SelectionRequest

    requests = []
    for index, record in enumerate(trace.requests):
        slo = SLO_CLASSES[record.slo]
        requests.append(
            SelectionRequest(
                batch=build_batch(record.query, tokenizer, max_len),
                k=record.k,
                request_id=f"{record.tenant}/{index}",
                priority=slo.priority,
                arrival=record.arrival,
                deadline=slo.deadline_s if deadlines else None,
                tenant=record.tenant,
            )
        )
    return requests
