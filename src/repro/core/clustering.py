"""1-D k-means for provisional-score clustering (§4.1).

The pruning trigger partitions the current provisional scores into
clusters; everything downstream (selected/deferred/dropped routing)
operates at cluster granularity.  The paper runs K-Means on the CPU
with ~1 ms overhead; scores are scalars, so this is one-dimensional
clustering:

* Lloyd iterations with quantile initialisation (deterministic — no
  random restarts, so engine runs are exactly reproducible);
* the number of clusters is selected by scanning k = 1..k_max and
  keeping the smallest k whose within-cluster variance reduction has
  levelled off (elbow rule), which tracks the "statistically distinct
  clusters" the paper observes scores diverging into.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Clustering:
    """Result of clustering a score vector.

    ``labels[i]`` is the cluster id of score *i*; ids are ordered by
    **descending cluster mean** (cluster 0 is the best-scoring band).
    """

    labels: np.ndarray
    centers: np.ndarray  # descending
    inertia: float

    @property
    def num_clusters(self) -> int:
        return int(self.centers.size)

    def members(self, cluster_id: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster_id)

    def sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_clusters)


def kmeans_1d(scores: np.ndarray, k: int, max_iter: int = 50) -> Clustering:
    """Deterministic Lloyd's k-means over scalar scores."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    k = min(k, np.unique(scores).size)
    if k <= 1:
        labels = np.zeros(scores.size, dtype=np.int64)
        center = np.array([scores.mean()])
        inertia = float(np.square(scores - center[0]).sum())
        return Clustering(labels=labels, centers=center, inertia=inertia)

    # Quantile initialisation: evenly spaced percentiles of the data.
    quantiles = (np.arange(k) + 0.5) / k
    centers = np.quantile(scores, quantiles)
    # Perturb exact duplicates so each centre owns a distinct region.
    for i in range(1, k):
        if centers[i] <= centers[i - 1]:
            centers[i] = np.nextafter(centers[i - 1], np.inf)

    labels = np.zeros(scores.size, dtype=np.int64)
    for _ in range(max_iter):
        distances = np.abs(scores[:, None] - centers[None, :])
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            mask = labels == c
            if mask.any():
                centers[c] = scores[mask].mean()

    # Drop empty clusters, then order by descending mean.
    occupied = np.unique(labels)
    centers = np.array([scores[labels == c].mean() for c in occupied])
    order = np.argsort(-centers)
    remap = {int(occupied[orig]): rank for rank, orig in enumerate(order)}
    labels = np.array([remap[int(c)] for c in labels], dtype=np.int64)
    centers = centers[order]
    inertia = float(np.square(scores - centers[labels]).sum())
    return Clustering(labels=labels, centers=centers, inertia=inertia)


#: Minimum ratio between a cluster boundary's gap (closest points
#: across the boundary) and the median within-cluster neighbour
#: spacing, for clusters to count as "statistically distinct" (§3.1).
#: Calibrated empirically: k-means splits of a unimodal Gaussian blob
#: of ~20 points achieve ratios of ≈2.8 on average (95th percentile
#: ≈6.5), while genuine relevance tiers — including singleton leaders —
#: reach 8–60.  7.0 therefore rejects noise splits while accepting
#: real tier boundaries.
MIN_SEPARATION = 7.0


def _well_separated(scores: np.ndarray, clustering: Clustering, min_separation: float) -> bool:
    """True when every *adjacent pair* of clusters is statistically distinct.

    Distinctness is a dip test on the sorted scores: the empty gap at
    each cluster boundary must dwarf the typical spacing of points
    inside clusters.  Unlike centre-distance tests, this handles the
    two hard cases of 1-D score data directly — singleton leaders
    (whose "spread" is undefined but whose boundary gap is huge) and
    small-sample half-splits of one blob (where k-means places the
    boundary at the widest internal gap, inflating centre distances
    but not the boundary-to-spacing ratio).
    """
    k = clustering.num_clusters
    if k < 2:
        return True
    members = [np.sort(scores[clustering.labels == c]) for c in range(k)]
    spacings: list[float] = []
    for m in members:
        if m.size > 1:
            spacings.extend(np.diff(m).tolist())
    if not spacings:
        return True  # all-singleton clustering: nothing to compare against
    scale = float(np.median(spacings))
    if scale == 0.0:
        return True  # duplicate-heavy scores: any gap is distinct
    for c in range(k - 1):
        # Cluster ids are ordered by descending mean: boundary gap is
        # lowest point of the upper cluster minus highest of the lower.
        gap = float(members[c].min() - members[c + 1].max())
        if gap < min_separation * scale:
            return False
    return True


def cluster_scores(
    scores: np.ndarray,
    max_clusters: int = 6,
    elbow_ratio: float = 0.18,
    min_separation: float = MIN_SEPARATION,
) -> Clustering:
    """Cluster scores with automatic k selection (elbow + separation).

    Increasing k is accepted while (a) it still removes at least
    ``elbow_ratio`` of the remaining within-cluster variance and (b) the
    resulting clusters are *statistically distinct* — adjacent centres
    at least ``min_separation`` pooled within-cluster standard
    deviations apart.  The separation test is what keeps early-layer
    noise blobs in a single cluster (the paper's cluster-γ ≈ 1 premise,
    Figure 2b); without it, 1-D k-means would happily split unimodal
    noise.  ``max_clusters`` bounds the scan (pools of ~20 candidates
    form a handful of tiers).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("scores must be non-empty")
    max_clusters = max(1, min(max_clusters, scores.size))
    best = kmeans_1d(scores, 1)
    if max_clusters == 1 or best.inertia == 0.0:
        return best
    for k in range(2, max_clusters + 1):
        candidate = kmeans_1d(scores, k)
        if best.inertia <= 0:
            break
        improvement = (best.inertia - candidate.inertia) / best.inertia
        if improvement < elbow_ratio:
            break
        if not _well_separated(scores, candidate, min_separation):
            # This k draws a boundary through a blob, but a finer k may
            # separate cleanly (e.g. k=2 lumping two true tiers into one
            # over-wide cluster while k=3 resolves them) — keep scanning.
            continue
        best = candidate
        if best.inertia == 0.0:
            break
    return best
