"""DeviceScheduler: concurrent multi-request serving on one device (DESIGN.md §6).

One engine used to serve strictly one request at a time — `rerank()`
held the device for the whole monolithic pass.  The step-based
execution core (:class:`~repro.core.engine.RerankTask`) turns a pass
into a resumable sequence of layer steps, and this module adds the
scheduler that time-multiplexes several in-flight passes on the single
:class:`~repro.device.clock.VirtualClock`:

* **Admission** — requests are :meth:`~DeviceScheduler.submit`\\ ted
  with arrival times on the device clock; at most ``max_concurrency``
  tasks hold device resources at once (memory for hidden states and
  stream buffers is per in-flight task), the rest wait in the queue.
  One exception keeps the priority guarantee honest: under the
  ``priority`` policy an arrival may be admitted over the cap while a
  strictly lower-priority task is in flight, so a cap saturated by
  batch work can still be preempted (reserve memory headroom for the
  interactive lane accordingly).
* **Policies** — ``fifo`` runs admitted tasks to completion in arrival
  order (the pre-scheduler behaviour, now expressed as a policy);
  ``round_robin`` deals each in-flight task a quantum of
  ``quantum_layers`` steps in rotation; ``priority`` serves lanes
  (interactive preempts batch) and preempts a lower-priority task at
  its next layer boundary the moment a higher-priority request arrives.
* **Clock coherence** — steps execute one at a time on the shared
  compute stream, so every step occupies a disjoint interval of the
  one simulated timeline; a request's end-to-end latency is simply its
  span on that axis, and queue/service/e2e decompose exactly.
* **Determinism** — the simulator has no hidden randomness, so the
  schedule itself is a deterministic artifact: :meth:`trace_text`
  renders the step sequence canonically and identical inputs produce
  byte-identical schedules (asserted in ``tests/test_scheduler.py``).
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..device.faults import FAULT_REPLICA_CRASH, DeviceFault
from ..model.transformer import CandidateBatch
from .engine import EngineBase, RerankResult, RerankTask

#: Priority lanes: lower number = served first.
LANE_INTERACTIVE = 0
LANE_BATCH = 1

#: Known scheduling policies.
SCHEDULING_POLICIES = ("fifo", "round_robin", "priority", "fusion")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for a :class:`DeviceScheduler`.

    Parameters
    ----------
    policy:
        One of :data:`SCHEDULING_POLICIES`.
    quantum_layers:
        Layer steps a task runs before the scheduler re-decides
        (``round_robin``/``priority``; ``fifo`` ignores it, ``fusion``
        always re-decides after one step to keep the gang in lockstep).
    max_concurrency:
        Most tasks holding device resources at once.  Each in-flight
        task keeps its hidden states (and stream buffers) resident, so
        this bounds the serving memory overhead of multiplexing.  The
        ``priority`` policy may admit a higher-priority arrival over
        the cap to preempt in-flight batch work (overshoot bounded by
        the number of concurrent higher-priority requests).
    max_skew:
        ``fusion`` only: the longest (simulated seconds) an arrival may
        be held back to join a *fresh* fused group at layer 0 rather
        than start skewed behind a group already deep into its sweep.
        ``0.0`` admits arrivals immediately (they catch up and fuse
        from wherever the plane stands); larger values trade admission
        latency for fused-sweep purity and a bounded shared-buffer
        residency window (DESIGN.md §7).
    edf:
        Earliest-deadline-first admission ordering (DESIGN.md §8):
        requests carrying a deadline are started before later-deadline
        (or deadline-less) ones — inside each priority lane under the
        ``priority`` policy, globally otherwise.  Orthogonal to the
        in-flight policy: EDF decides *who starts next*, the policy
        decides *whose quantum runs*.
    """

    policy: str = "fifo"
    quantum_layers: int = 1
    max_concurrency: int = 4
    max_skew: float = 0.0
    edf: bool = False

    def __post_init__(self) -> None:
        if self.policy not in SCHEDULING_POLICIES:
            known = ", ".join(SCHEDULING_POLICIES)
            raise ValueError(f"unknown scheduling policy {self.policy!r}; known: {known}")
        if self.quantum_layers < 1:
            raise ValueError("quantum_layers must be >= 1")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_skew < 0:
            raise ValueError("max_skew must be >= 0")


@dataclass(frozen=True)
class ScheduledRequest:
    """One admitted request awaiting service."""

    request_id: int
    batch: CandidateBatch
    k: int
    arrival: float
    priority: int = LANE_BATCH
    sample: bool | None = None  # sampling override threaded to the service layer
    #: Caller correlation id; duplicates among in-flight requests are
    #: rejected at submission so outcome correlation cannot collide.
    client_id: str | int | None = None
    #: Absolute device-clock instant the request must complete by; a
    #: request that has not *started* by its deadline is shed at
    #: admission and never reaches the engine (DESIGN.md §8).
    deadline: float | None = None
    #: Absolute device-clock instant at which the request is cancelled:
    #: dropped at admission if still waiting, closed at its next layer
    #: boundary (releasing weight-plane refcounts) if in flight.
    cancel_at: float | None = None


@dataclass
class DroppedRequest:
    """One request the scheduler dropped instead of completing.

    ``reason`` is ``"shed"`` (deadline-aware admission), ``"cancelled"``
    (caller intent) or ``"failed"`` (an injected device fault,
    DESIGN.md §9 — ``detail`` then names the fault kind); ``at`` is the
    drop instant on the device clock.  ``client_id`` carries the
    caller's correlation id on tiers that have one (the fleet layer
    reuses this record type).
    """

    request_id: int
    priority: int
    arrival: float
    at: float
    reason: str
    deadline: float | None = None
    client_id: str | int | None = None
    detail: str = ""
    #: Failover provenance on tiers that retry (the fleet layer):
    #: dispatch attempts consumed and the replicas that failed them.
    attempts: int = 1
    failed_over_from: tuple[int, ...] = ()
    #: Submitting tenant on tiers with multi-tenant admission
    #: (DESIGN.md §13); ``None`` outside the tenancy plane.
    tenant: str | None = None


@dataclass
class StepEvent:
    """One executed layer step — the unit of the schedule trace."""

    request_id: int
    step_index: int  # per-task step counter
    start: float
    end: float


@dataclass
class ScheduledOutcome:
    """Completion record of one request on the device time axis."""

    request_id: int
    priority: int
    arrival: float
    start: float  # first step began (service start)
    finish: float  # last step ended
    service_seconds: float  # time spent in this task's own steps
    preempted: bool  # another task's step ran between this task's steps
    result: RerankResult
    sample: bool | None = None
    deadline: float | None = None  # absolute device-clock deadline, if any
    #: Data-plane provenance (DESIGN.md §12): ``"hit"`` (memoized,
    #: never occupied a scheduler slot), ``"coalesced"`` (attached to
    #: an in-flight leader) or ``None`` (served by a full pass).
    cache: str | None = None

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival

    @property
    def e2e_latency(self) -> float:
        return self.finish - self.arrival

    @property
    def deadline_met(self) -> bool | None:
        """Completed by the deadline?  ``None`` when none was set."""
        if self.deadline is None:
            return None
        return self.finish <= self.deadline

    @property
    def preemption_seconds(self) -> float:
        """Time the task spent preempted while in flight."""
        return (self.finish - self.start) - self.service_seconds


@dataclass
class SchedulerStats:
    """Aggregate view over a drain's completed outcomes."""

    outcomes: list[ScheduledOutcome] = field(default_factory=list)
    makespan: float = 0.0

    def lane(self, priority: int) -> list[ScheduledOutcome]:
        return [o for o in self.outcomes if o.priority == priority]

    def latency_percentile(self, p: float, priority: int | None = None) -> float:
        pool = self.outcomes if priority is None else self.lane(priority)
        if not pool:
            return float("nan")
        return float(np.percentile([o.e2e_latency for o in pool], p))

    def mean_queue_wait(self, priority: int | None = None) -> float:
        pool = self.outcomes if priority is None else self.lane(priority)
        if not pool:
            return float("nan")
        return float(np.mean([o.queue_wait for o in pool]))

    @property
    def throughput_rps(self) -> float:
        if not self.outcomes or self.makespan <= 0:
            return float("nan")
        return len(self.outcomes) / self.makespan


@dataclass
class _InFlight:
    """Scheduler-internal record of a started task."""

    request: ScheduledRequest
    task: RerankTask
    started_order: int
    start: float | None = None  # first step began (service start)
    service_seconds: float = 0.0
    last_step_end: float | None = None
    preempted: bool = False


class DeviceScheduler:
    """Time-multiplexes :class:`RerankTask` steps on one engine.

    The engine must already be ``prepare()``\\ d.  Typical use::

        scheduler = DeviceScheduler(engine, SchedulerConfig(policy="priority"))
        scheduler.submit(batch_a, k=10)                       # batch lane
        scheduler.submit(batch_b, k=3, priority=LANE_INTERACTIVE, at=0.1)
        outcomes = scheduler.drain()

    ``drain()`` replays arrivals on the device clock and runs the
    policy loop until every submitted request completes; per-request
    selections are byte-identical to solo execution because candidate
    scores depend only on (model seed, uid, layer), never on what else
    shares the device (DESIGN.md §2, §6).
    """

    def __init__(
        self,
        engine: EngineBase,
        config: SchedulerConfig | None = None,
        event_log=None,
    ) -> None:
        if not engine._prepared:
            raise RuntimeError(f"{engine.name}: DeviceScheduler over an unprepared engine")
        self.engine = engine
        self.config = config or SchedulerConfig()
        #: Observability sink (DESIGN.md §10); ``None`` observes nothing
        #: and changes nothing — selections stay byte-identical.
        self.events = event_log
        self.trace: list[StepEvent] = []
        #: Requests dropped instead of completed (shed / cancelled),
        #: in drop order; see :class:`DroppedRequest`.
        self.dropped: list[DroppedRequest] = []
        self._pending: list[ScheduledRequest] = []
        self._pending_client_ids: set[str | int] = set()
        self._outcomes: list[ScheduledOutcome] = []
        self._next_id = 0
        self._started_counter = 0
        self._first_arrival: float | None = None
        self._rr_cursor = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def clock(self):
        return self.engine.device.clock

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    def submit(
        self,
        batch: CandidateBatch,
        k: int,
        at: float | None = None,
        priority: int = LANE_BATCH,
        sample: bool | None = None,
    ) -> int:
        """Deprecated: admit one request; returns its scheduler-local id.

        Legacy shim over :meth:`submit_request` — the request-centric
        path is a :class:`~repro.core.api.SelectionRequest` submitted
        through :class:`~repro.core.api.DeviceServer` (DESIGN.md §8,
        ``docs/api.md``).  ``at`` is the arrival instant on the device
        clock (defaults to *now*); ``priority`` selects the lane.
        """
        warnings.warn(
            "DeviceScheduler.submit() is deprecated; submit a SelectionRequest "
            "through repro.core.api.DeviceServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit_request(batch, k, arrival=at, priority=priority, sample=sample)

    def submit_request(
        self,
        batch: CandidateBatch,
        k: int,
        *,
        arrival: float | None = None,
        priority: int = LANE_BATCH,
        sample: bool | None = None,
        deadline: float | None = None,
        cancel_at: float | None = None,
        client_id: str | int | None = None,
    ) -> int:
        """Admit one request with full intent; returns its scheduler id.

        ``arrival``, ``deadline`` and ``cancel_at`` are absolute
        instants on the device clock (``arrival=None`` means *now*).
        ``client_id`` is the caller's correlation id; a duplicate among
        the in-flight (submitted, not yet drained) requests raises
        ``ValueError`` instead of silently colliding when outcomes are
        correlated back to callers.
        """
        arrival = self.clock.now if arrival is None else float(arrival)
        if arrival < self.clock.now:
            raise ValueError(
                f"arrival {arrival!r} lies before device time {self.clock.now!r}"
            )
        if priority < 0:
            raise ValueError("priority must be non-negative")
        if k <= 0:
            # Fail here, not mid-drain: by the time the queue pops this
            # request, other requests may already have consumed device time.
            raise ValueError("k must be positive")
        if deadline is not None and deadline <= arrival:
            raise ValueError("deadline must lie after the request's arrival")
        if client_id is not None:
            if client_id in self._pending_client_ids:
                raise ValueError(
                    f"duplicate in-flight request id {client_id!r}: already "
                    "submitted and not yet drained"
                )
            self._pending_client_ids.add(client_id)
        request = ScheduledRequest(
            request_id=self._next_id,
            batch=batch,
            k=k,
            arrival=arrival,
            priority=priority,
            sample=sample,
            deadline=deadline,
            cancel_at=cancel_at,
            client_id=client_id,
        )
        self._next_id += 1
        self._pending.append(request)
        if self._first_arrival is None or arrival < self._first_arrival:
            self._first_arrival = arrival
        self._emit(
            "admit",
            request,
            arrival=arrival,
            k=k,
            priority=priority,
            deadline=deadline,
            cancel_at=cancel_at,
        )
        return request.request_id

    # ------------------------------------------------------------------
    # the policy loop
    # ------------------------------------------------------------------
    def drain(self) -> list[ScheduledOutcome]:
        """Serve every submitted request; returns outcomes in completion order.

        Under the ``fusion`` policy the drain runs inside the engine's
        group-stepping mode (:meth:`~repro.core.engine.EngineBase.gang_step`,
        DESIGN.md §11): the lockstep gang's layer crossings execute as
        one stacked forward per layer instead of one per member.  The
        schedule itself — step order, clock intervals, events — is
        byte-identical to sequential execution; only the harness's own
        wall-clock drops.
        """
        gang_mode = (
            self.engine.gang_step()
            if self.config.policy == "fusion"
            else contextlib.nullcontext()
        )
        with gang_mode:
            return self._drain_loop()

    def _drain_loop(self) -> list[ScheduledOutcome]:
        pending = sorted(self._pending, key=lambda r: (r.arrival, r.request_id))
        self._pending.clear()
        self._pending_client_ids.clear()
        waiting: list[ScheduledRequest] = []  # arrived, not yet holding resources
        active: list[_InFlight] = []
        completed: list[ScheduledOutcome] = []
        i = 0

        def admit() -> None:
            """Move arrivals into the wait queue and start what fits.

            Under the ``priority`` policy a waiter may be admitted *over*
            ``max_concurrency`` when a strictly lower-priority task is in
            flight — otherwise a cap saturated by batch work could never
            be preempted and the interactive lane would queue behind
            whole batch passes.  The overshoot is bounded by the number
            of concurrently in-flight higher-priority requests.
            """
            nonlocal i
            while i < len(pending) and pending[i].arrival <= self.clock.now:
                waiting.append(pending[i])
                i += 1
            waiting.sort(key=self._wait_order)
            while waiting:
                request = waiting[0]
                # Intent checks precede capacity checks, so a doomed
                # request at the head can never wedge the queue.
                if request.cancel_at is not None and request.cancel_at <= self.clock.now:
                    waiting.pop(0)
                    self._drop(request, "cancelled")
                    continue
                if request.deadline is not None and self.clock.now >= request.deadline:
                    # Shed: it cannot start before its deadline, so it
                    # never reaches the engine (DESIGN.md §8).
                    waiting.pop(0)
                    self._drop(request, "shed")
                    continue
                over_cap_preemption = self.config.policy == "priority" and any(
                    flight.request.priority > request.priority for flight in active
                )
                if len(active) >= self.config.max_concurrency and not over_cap_preemption:
                    # waiting is sorted, so nothing behind the head fits either.
                    break
                if self.config.policy == "fusion" and self._fusion_hold(request, active):
                    break
                waiting.pop(0)
                if self.config.policy == "fusion" and active:
                    self._emit("fuse", request, group_size=len(active) + 1)
                self._emit("dispatch", request, in_flight=len(active) + 1)
                active.append(
                    _InFlight(
                        request=request,
                        task=self.engine.start(request.batch, request.k),
                        started_order=self._started_counter,
                    )
                )
                self._started_counter += 1

        def reap_cancelled() -> None:
            """Close in-flight tasks whose cancellation instant passed.

            A mid-pass cancel lands at the task's next layer boundary —
            :meth:`RerankTask.close` runs the pass teardown, so shared
            weight-plane refcounts are released immediately, not when
            the drain ends (DESIGN.md §8).
            """
            for flight in list(active):
                cancel_at = flight.request.cancel_at
                if cancel_at is not None and self.clock.now >= cancel_at:
                    flight.task.close()
                    active.remove(flight)
                    self._drop(flight.request, "cancelled")

        try:
            while active or waiting or i < len(pending):
                admit()  # completions free capacity; arrivals may be due
                reap_cancelled()
                if not active:
                    if waiting or i >= len(pending):
                        # Drops may have emptied the in-flight set while
                        # waiters still queue; re-admit before advancing.
                        if waiting:
                            continue
                        break
                    # admit() starts waiters whenever capacity is free, so an
                    # empty active set means a future arrival is all that is left.
                    self.clock.advance_to(pending[i].arrival)
                    continue
                flight = self._pick(active)
                for _ in range(self.config.quantum_layers):
                    before = self.clock.now
                    if flight.start is None:
                        flight.start = before
                    try:
                        done = flight.task.step()
                    except DeviceFault as fault:
                        self._on_fault(fault, flight, active, waiting)
                        if fault.kind == FAULT_REPLICA_CRASH:
                            # The whole device died: everything not yet
                            # served fails, future arrivals included.
                            while i < len(pending):
                                self._fail(pending[i], fault)
                                i += 1
                        break
                    now = self.clock.now
                    flight.service_seconds += now - before
                    if flight.last_step_end is not None and before > flight.last_step_end:
                        flight.preempted = True
                    flight.last_step_end = now
                    self.trace.append(
                        StepEvent(
                            request_id=flight.request.request_id,
                            step_index=flight.task.steps_taken - 1,
                            start=before,
                            end=now,
                        )
                    )
                    admit()  # the step advanced the clock; new arrivals may be due
                    if done:
                        active.remove(flight)
                        outcome = self._finish(flight)
                        completed.append(outcome)
                        # Record immediately: stats must survive a later
                        # request failing mid-drain (e.g. OOM under load).
                        self._outcomes.append(outcome)
                        break
                    reap_cancelled()
                    if flight not in active:
                        break  # this task was cancelled at the boundary
                    if self._should_preempt(flight, active):
                        break
        except BaseException:
            # One request failing (OOM under load) abandons the rest of
            # the drain: close the survivors so admitted-but-unfinished
            # tasks release shared resources (a never-stepped task would
            # otherwise pin the weight plane's reap floor forever).
            for flight in active:
                flight.task.close()
            raise

        return completed

    def _wait_order(self, request: ScheduledRequest):
        deadline = request.deadline if request.deadline is not None else float("inf")
        if self.config.policy == "priority":
            if self.config.edf:
                return (request.priority, deadline, request.arrival, request.request_id)
            return (request.priority, request.arrival, request.request_id)
        if self.config.edf:
            return (deadline, request.arrival, request.request_id)
        return (request.arrival, request.request_id)

    def drop_counts(self) -> dict[str, int]:
        """Drops so far, keyed ``reason`` or ``reason/detail`` (§14).

        The same normalization the live telemetry plane applies to shed
        events — a bare deadline shed (empty detail) counts under its
        reason alone — so a scheduler-level rollup can be compared
        directly against ``repro_requests_shed_total`` label values.
        """
        counts: dict[str, int] = {}
        for drop in self.dropped:
            key = f"{drop.reason}/{drop.detail}" if drop.detail else drop.reason
            counts[key] = counts.get(key, 0) + 1
        return counts

    def _drop(self, request: ScheduledRequest, reason: str, detail: str = "") -> None:
        self.dropped.append(
            DroppedRequest(
                request_id=request.request_id,
                priority=request.priority,
                arrival=request.arrival,
                at=self.clock.now,
                reason=reason,
                deadline=request.deadline,
                client_id=request.client_id,
                detail=detail,
            )
        )
        kind = {"shed": "shed", "cancelled": "cancel", "failed": "fail"}[reason]
        self._emit(kind, request, detail=detail)

    def _emit(self, kind: str, request: ScheduledRequest, **data) -> None:
        """Publish a device-tier event (DESIGN.md §10); no-op without a sink."""
        if self.events is not None:
            label = request.client_id if request.client_id is not None else request.request_id
            self.events.emit(
                kind,
                at=self.clock.now,
                tier="device",
                request=label,
                replica=self.engine.device.events_replica,
                **data,
            )

    def _fail(self, request: ScheduledRequest, fault: DeviceFault) -> None:
        self._drop(request, "failed", detail=fault.kind)

    def _on_fault(
        self,
        fault: DeviceFault,
        flight: _InFlight,
        active: list[_InFlight],
        waiting: list[ScheduledRequest],
    ) -> None:
        """Fail what an injected fault killed (DESIGN.md §9).

        The faulting task is already torn down (its step closed it on
        the way out, releasing weight-plane refcounts like a cancel).
        A *crash* additionally takes the whole device with it: every
        other in-flight task is closed and every waiter failed.
        """
        active.remove(flight)
        flight.task.close()  # idempotent; a crash already closed it
        self._fail(flight.request, fault)
        if fault.kind == FAULT_REPLICA_CRASH:
            for other in active:
                other.task.close()
                self._fail(other.request, fault)
            active.clear()
            for request in waiting:
                self._fail(request, fault)
            waiting.clear()

    def _fusion_hold(self, request: ScheduledRequest, active: list[_InFlight]) -> bool:
        """Should a fusion arrival wait for a fresh group at layer 0?

        A group that has not stepped yet can still be joined losslessly;
        one already deep into its sweep cannot (layers behind its
        frontier are gone from the weight plane).  The arrival is held
        back — for at most ``max_skew`` simulated seconds — hoping the
        running group drains first; past the bound it is admitted
        anyway and catches up skewed.
        """
        if not active:
            return False
        if max(flight.task.steps_taken for flight in active) == 0:
            return False  # the group has not stepped yet — join it losslessly
        return (self.clock.now - request.arrival) < self.config.max_skew

    def _pick(self, active: list[_InFlight]) -> _InFlight:
        """Choose the in-flight task that runs the next quantum."""
        policy = self.config.policy
        if policy == "fifo":
            # Run-to-completion in start order: always the oldest task.
            return min(active, key=lambda f: f.started_order)
        if policy == "round_robin":
            # Deal quanta in start order, cycling.
            ordered = sorted(active, key=lambda f: f.started_order)
            flight = ordered[self._rr_cursor % len(ordered)]
            self._rr_cursor += 1
            return flight
        if policy == "fusion":
            # Gang lockstep: always the task furthest behind, so every
            # in-flight task crosses each layer boundary back-to-back
            # and one plane fetch serves the whole group (DESIGN.md §7).
            return min(active, key=lambda f: (f.task.steps_taken, f.started_order))
        # priority: best lane first; FIFO inside a lane.
        return min(active, key=lambda f: (f.request.priority, f.started_order))

    def _should_preempt(self, flight: _InFlight, active: list[_InFlight]) -> bool:
        """After a quantum: must the running task yield the device?"""
        if self.config.policy == "fusion":
            # Re-decide after every step: lockstep order is a property
            # of the whole gang, not of the task that just ran.
            return True
        if self.config.policy != "priority":
            return False
        return any(f.request.priority < flight.request.priority for f in active)

    def _finish(self, flight: _InFlight) -> ScheduledOutcome:
        assert flight.start is not None  # a task cannot finish without stepping
        self._emit(
            "complete",
            flight.request,
            start=flight.start,
            service_seconds=flight.service_seconds,
            steps=flight.task.steps_taken,
        )
        return ScheduledOutcome(
            request_id=flight.request.request_id,
            priority=flight.request.priority,
            arrival=flight.request.arrival,
            start=flight.start,
            finish=self.clock.now,
            service_seconds=flight.service_seconds,
            preempted=flight.preempted,
            result=flight.task.result,
            sample=flight.request.sample,
            deadline=flight.request.deadline,
        )

    # ------------------------------------------------------------------
    # statistics & trace
    # ------------------------------------------------------------------
    def stats(self) -> SchedulerStats:
        first = self._first_arrival if self._first_arrival is not None else 0.0
        last = max([o.finish for o in self._outcomes], default=first)
        return SchedulerStats(
            outcomes=list(self._outcomes), makespan=max(0.0, last - first)
        )

    def fused_group_sizes(self) -> list[int]:
        """Sizes of the back-to-back same-layer step groups in the trace.

        A *fused group* is a maximal run of consecutive steps sharing
        one step index — the signature of several tasks crossing the
        same layer boundary back-to-back (one weight fetch through the
        shared plane, per-task compute charged in sequence).  FIFO
        yields groups of 1; a perfect gang of N yields groups of N.
        """
        sizes: list[int] = []
        current_index: int | None = None
        for event in self.trace:
            if current_index is not None and event.step_index == current_index:
                sizes[-1] += 1
            else:
                sizes.append(1)
                current_index = event.step_index
        return sizes

    @property
    def mean_fused_occupancy(self) -> float:
        """Mean fused-group size over the executed schedule."""
        sizes = self.fused_group_sizes()
        return float(np.mean(sizes)) if sizes else 0.0

    def fused_group_ids(self) -> dict[int, int]:
        """Map each request to the fused group its first step joined.

        Group ids index the runs counted by :meth:`fused_group_sizes`;
        requests sharing an id entered the schedule back-to-back at the
        same layer boundary.  Provenance for
        :class:`~repro.core.api.SelectionResponse`.
        """
        groups: dict[int, int] = {}
        group_id = -1
        current_index: int | None = None
        for event in self.trace:
            if current_index is None or event.step_index != current_index:
                group_id += 1
                current_index = event.step_index
            groups.setdefault(event.request_id, group_id)
        return groups

    def trace_text(self) -> str:
        """Canonical rendering of the schedule — byte-comparable.

        One line per executed step: which request ran its n-th step
        over which interval of the simulated timeline.  Two runs over
        identical inputs must produce identical bytes (determinism is
        an acceptance bar, not an aspiration).
        """
        lines = [
            f"r{e.request_id:03d} step{e.step_index:04d} "
            f"{e.start:.9f} -> {e.end:.9f}"
            for e in self.trace
        ]
        return "\n".join(lines)
