"""The unified request-centric serving API (DESIGN.md §8).

Three serving tiers grew three front doors: ``EngineBase.rerank``
(direct execution), ``DeviceScheduler.submit``/``drain`` +
``SemanticSelectionService.select``/``select_concurrent`` (one shared
device), and ``FleetService.submit``/``drain`` (replicated fleet).
Apps and experiments were hard-wired to one tier and could not express
per-request intent — priority, deadline, sampling, cancellation —
uniformly.

This module is the single front door.  One :class:`SelectionRequest`
carries everything a caller may want to say about a request; one
:class:`SelectionResponse` carries everything a tier can say back
(unified result + queue/service/e2e timing + provenance); and one
:class:`Server` protocol — ``submit() -> RequestHandle``,
``handle.result()``, ``handle.cancel()``, ``drain()`` — is implemented
by three adapters:

* :class:`EngineServer` — direct execution on one engine;
* :class:`DeviceServer` — the :class:`~repro.core.scheduler.DeviceScheduler`
  + :class:`~repro.core.service.SemanticSelectionService`
  threshold/sampling loop on one shared device;
* :class:`FleetServer` — the batched, routed
  :class:`~repro.core.fleet.FleetService`.

The same request list runs unchanged on any tier, and (solo, no
shedding) produces byte-identical selection indices on all three —
candidate scores depend only on (model seed, uid, layer), never on
where the request ran (DESIGN.md §2).

Intent fields are real, not decorative: a ``deadline`` makes every
tier shed the request at admission once it can no longer start in
time (``SchedulerConfig(edf=True)`` additionally orders admission by
earliest deadline), and ``handle.cancel()`` propagates through
:meth:`~repro.core.engine.RerankTask.close` so a cancelled mid-pass
request releases its :class:`~repro.core.streaming.WeightPlane`
refcounts at the next layer boundary.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence, runtime_checkable

from ..device.faults import DeviceFault
from ..model.transformer import CandidateBatch
from .engine import EngineBase, RerankResult
from .fleet import FleetService
from .scheduler import LANE_BATCH, DroppedRequest
from .service import SemanticSelectionService

#: Request completed normally; ``response.result`` holds the selection.
REQUEST_OK = "ok"
#: Deadline-aware admission dropped the request before it reached an
#: engine (it could no longer start in time).
REQUEST_SHED = "shed"
#: The caller cancelled the request (before service, or mid-pass at a
#: layer boundary).
REQUEST_CANCELLED = "cancelled"
#: An injected device fault killed the request (DESIGN.md §9) and —
#: on tiers with failover — its retries were exhausted.
REQUEST_FAILED = "failed"

#: Every status a :class:`SelectionResponse` may carry.
REQUEST_STATUSES = (REQUEST_OK, REQUEST_SHED, REQUEST_CANCELLED, REQUEST_FAILED)


@dataclass(frozen=True)
class SelectionRequest:
    """One top-K selection request, tier-agnostic (DESIGN.md §8).

    Parameters
    ----------
    batch / k:
        The candidate pool and how many winners to select.
    request_id:
        Caller-chosen correlation id carried end-to-end into the
        :class:`SelectionResponse` (and, on the fleet tier, into
        :class:`~repro.core.fleet.RequestOutcome`).  ``None`` lets the
        server assign ``r0, r1, ...`` at submission.
    priority:
        Scheduler lane (:data:`~repro.core.scheduler.LANE_INTERACTIVE`
        preempts :data:`~repro.core.scheduler.LANE_BATCH` under the
        ``priority`` policy).
    arrival:
        Arrival offset in seconds from the serving wave's origin
        (``None`` = due immediately).  Offsets, not absolutes: the
        serving clock is already deep into its own timeline.
    deadline:
        Seconds after arrival by which the request must complete on
        the virtual clock.  A request that cannot start before its
        deadline is *shed* at admission and never reaches an engine.
    sample:
        Idle-check sampling override threaded to the service layer
        (``True`` forces logging, ``False`` suppresses it, ``None``
        applies the deterministic stride).
    hedge_after_ms:
        Fleet tier, serial replicas: if the request has not completed
        this many milliseconds after arrival, duplicate it onto a
        second healthy replica — first result wins, the loser is
        cancelled at its next layer boundary (DESIGN.md §9).
    memoize:
        Data-plane opt-out (DESIGN.md §12): ``False`` bypasses the
        request memo/coalescing cache entirely and forces a full pass;
        ``None``/``True`` lets the serving tier's plane (when one is
        attached) answer from cache.
    tenant:
        Submitting tenant id for the multi-tenant workload plane
        (DESIGN.md §13).  On the fleet tier with a
        :class:`~repro.core.tenancy.TenancyConfig` attached, fair
        admission charges this tenant's token bucket and orders the
        flush by its fair-queueing tag; the id is echoed into
        :class:`SelectionResponse`, :class:`~repro.core.fleet.RequestOutcome`
        and every emitted event.  ``None`` = untenanted.  (Before §13
        callers smuggled the id through ``metadata["tenant"]``; that
        spelling still works but is deprecated — see ``__post_init__``.)
    metadata:
        Free-form caller annotations, echoed untouched.
    """

    batch: CandidateBatch
    k: int
    request_id: str | int | None = None
    priority: int = LANE_BATCH
    arrival: float | None = None
    deadline: float | None = None
    sample: bool | None = None
    hedge_after_ms: float | None = None
    memoize: bool | None = None
    tenant: str | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tenant is None and "tenant" in self.metadata:
            # Deprecation shim: pre-§13 callers tagged tenants via
            # metadata; promote the value to the first-class field.
            warnings.warn(
                "passing the tenant id via SelectionRequest.metadata['tenant'] "
                "is deprecated; use the first-class SelectionRequest.tenant field",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "tenant", str(self.metadata["tenant"]))
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")
        if self.arrival is not None and self.arrival < 0:
            raise ValueError("arrivals are offsets from now; must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (seconds after arrival)")
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ValueError("hedge_after_ms must be positive")

    @property
    def arrival_offset(self) -> float:
        return 0.0 if self.arrival is None else float(self.arrival)


@dataclass
class SelectionResponse:
    """Unified completion record of one request, any tier (DESIGN.md §8).

    ``status`` is one of :data:`REQUEST_STATUSES`; ``result`` is
    ``None`` unless the status is ``"ok"``.  All times are instants on
    the serving tier's clock; the derived ``queue``/``service``/``e2e``
    seconds are base-independent.
    """

    request_id: str | int
    status: str
    tier: str  # "engine" | "device" | "fleet"
    lane: int
    result: RerankResult | None = None
    arrival: float = 0.0
    start: float | None = None  # first service instant; None if never served
    finish: float | None = None  # completion / drop instant
    service_seconds: float = 0.0
    deadline: float | None = None  # absolute, on the serving clock
    # ---- provenance ---------------------------------------------------
    replica: int | None = None  # fleet tier: which replica served it
    policy: str | None = None  # scheduling / routing policy in effect
    fused_group: int | None = None  # gang id in the fused schedule trace
    threshold: float | None = None  # dispersion threshold in effect
    #: Data-plane provenance (DESIGN.md §12): ``"hit"`` (memoized),
    #: ``"coalesced"`` (attached to an in-flight leader) or ``None``
    #: (served by a full or residue pass).
    cache: str | None = None
    #: Submitting tenant id (DESIGN.md §13); ``None`` = untenanted.
    tenant: str | None = None
    # ---- resilience provenance (DESIGN.md §9) -------------------------
    attempts: int = 1  # dispatch attempts the request consumed
    failed_over_from: tuple[int, ...] = ()  # replicas that failed it first
    hedged: bool = False  # a hedge duplicate raced this request

    @property
    def ok(self) -> bool:
        return self.status == REQUEST_OK

    @property
    def dropped(self) -> bool:
        """Shed or cancelled — the request produced no selection."""
        return self.status != REQUEST_OK

    @property
    def queue_seconds(self) -> float:
        anchor = self.start if self.start is not None else self.finish
        return max(0.0, (anchor if anchor is not None else self.arrival) - self.arrival)

    @property
    def e2e_seconds(self) -> float:
        return (self.finish if self.finish is not None else self.arrival) - self.arrival

    @property
    def deadline_met(self) -> bool | None:
        """Whether the request completed by its deadline (None = no deadline)."""
        if self.deadline is None:
            return None
        if not self.ok or self.finish is None:
            return False
        return self.finish <= self.deadline


class RequestHandle:
    """The caller's grip on one submitted request.

    ``result()`` drives the owning server's :meth:`ServerBase.drain`
    if the request has not completed yet — the synchronous-simulation
    analogue of blocking on a future.  ``cancel()`` before the drain
    prevents the request from ever starting; ``cancel(at=...)``
    schedules a cancellation instant on the virtual clock (same offset
    axis as ``SelectionRequest.arrival``), which a mid-pass request
    honours at its next layer boundary, releasing shared weight-plane
    refcounts on the way out.
    """

    def __init__(self, server: "ServerBase", request: SelectionRequest) -> None:
        self._server = server
        self.request = request

    @property
    def request_id(self) -> str | int:
        assert self.request.request_id is not None  # assigned at submit
        return self.request.request_id

    @property
    def done(self) -> bool:
        return self._server._response_for(self.request_id) is not None

    def cancel(self, at: float | None = None) -> bool:
        """Request cancellation; returns False if already completed."""
        return self._server._cancel(self.request_id, at)

    def result(self) -> SelectionResponse:
        """The response, draining the server if still pending."""
        response = self._server._response_for(self.request_id)
        if response is None:
            self._server.drain()
            response = self._server._response_for(self.request_id)
        if response is None:  # pragma: no cover - defensive
            raise RuntimeError(f"request {self.request_id!r} produced no response")
        return response


@runtime_checkable
class Server(Protocol):
    """The one submission surface every serving tier implements."""

    tier: str

    def submit(self, request: SelectionRequest) -> RequestHandle: ...

    def drain(self) -> list[SelectionResponse]: ...


class ServerBase:
    """Shared submit/cancel/response bookkeeping for the adapters.

    Subclasses implement ``_serve(pending) -> list[SelectionResponse]``
    over the requests admitted since the last drain; cancellation
    intents are looked up via :meth:`_cancel_offset`.

    Completed responses are retained for :meth:`RequestHandle.result`
    up to ``max_retained`` (oldest evicted first), so a long-lived
    server — an app serving thousands of requests — holds bounded
    memory rather than every result ever produced.
    """

    tier = "base"

    def __init__(self, max_retained: int = 1024) -> None:
        if max_retained < 1:
            raise ValueError("max_retained must be >= 1")
        self.max_retained = max_retained
        self._pending: list[SelectionRequest] = []
        self._responses: dict[str | int, SelectionResponse] = {}
        self._cancels: dict[str | int, float] = {}
        self._auto_id = 0

    # ------------------------------------------------------------------
    def submit(self, request: SelectionRequest) -> RequestHandle:
        """Admit one request; returns its handle (service happens at drain)."""
        taken = self._responses.keys() | {p.request_id for p in self._pending}
        if request.request_id is None:
            from dataclasses import replace

            while f"r{self._auto_id}" in taken:
                self._auto_id += 1
            request = replace(request, request_id=f"r{self._auto_id}")
            self._auto_id += 1
        elif request.request_id in taken:
            raise ValueError(f"duplicate request id {request.request_id!r}")
        self._pending.append(request)
        return RequestHandle(self, request)

    def drain(self) -> list[SelectionResponse]:
        """Serve every pending request; responses in completion order."""
        pending, self._pending = self._pending, []
        if not pending:
            return []
        responses = self._serve(pending)
        for response in responses:
            self._responses[response.request_id] = response
        for request in pending:
            self._cancels.pop(request.request_id, None)
        while len(self._responses) > self.max_retained:
            # dicts iterate in insertion order: evict the oldest.
            self._responses.pop(next(iter(self._responses)))
        return responses

    # ------------------------------------------------------------------
    def _serve(self, pending: list[SelectionRequest]) -> list[SelectionResponse]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _response_for(self, request_id: str | int) -> SelectionResponse | None:
        return self._responses.get(request_id)

    def _cancel(self, request_id: str | int, at: float | None) -> bool:
        if request_id in self._responses:
            return False
        # ``None`` = cancel before it ever starts: offset 0 precedes or
        # coincides with every arrival, so the request is dropped at
        # admission regardless of its arrival offset.
        self._cancels[request_id] = 0.0 if at is None else float(at)
        return True

    def _cancel_offset(self, request: SelectionRequest) -> float | None:
        return self._cancels.get(request.request_id)  # type: ignore[arg-type]

    @staticmethod
    def _order(pending: list[SelectionRequest]) -> list[SelectionRequest]:
        order = {id(request): seq for seq, request in enumerate(pending)}
        return sorted(pending, key=lambda r: (r.arrival_offset, order[id(r)]))


# ----------------------------------------------------------------------
# Tier adapters
# ----------------------------------------------------------------------
class EngineServer(ServerBase):
    """Direct execution: one engine, requests served in arrival order.

    The lowest tier — no scheduler, no sampling loop.  Requests run to
    completion serially; deadlines shed at service start, cancellation
    closes the in-flight :class:`~repro.core.engine.RerankTask` at its
    next layer boundary.
    """

    tier = "engine"

    def __init__(self, engine: EngineBase) -> None:
        super().__init__()
        self.engine = engine

    def _serve(self, pending: list[SelectionRequest]) -> list[SelectionResponse]:
        device = self.engine.device
        clock = device.clock
        origin = clock.now
        log = device.events  # observability sink (DESIGN.md §10)

        def emit(kind: str, request: SelectionRequest, at: float, **data) -> None:
            if log is not None:
                log.emit(
                    kind,
                    at=at,
                    tier=self.tier,
                    request=request.request_id,
                    replica=device.events_replica,
                    tenant=request.tenant,
                    **data,
                )

        responses = []
        for request in self._order(pending):
            arrival = origin + request.arrival_offset
            deadline = arrival + request.deadline if request.deadline is not None else None
            cancel = self._cancel_offset(request)
            cancel_at = origin + cancel if cancel is not None else None
            emit(
                "admit",
                request,
                at=clock.now,
                arrival=arrival,
                k=request.k,
                priority=request.priority,
                deadline=deadline,
                cancel_at=cancel_at,
            )
            response = SelectionResponse(
                request_id=request.request_id,  # type: ignore[arg-type]
                status=REQUEST_OK,
                tier=self.tier,
                lane=request.priority,
                arrival=arrival,
                deadline=deadline,
                threshold=self._threshold(),
                tenant=request.tenant,
            )
            responses.append(response)
            if cancel_at is not None and cancel_at <= max(arrival, clock.now):
                response.status = REQUEST_CANCELLED
                response.finish = max(arrival, clock.now)
                emit("cancel", request, at=response.finish)
                continue
            clock.advance_to(arrival)
            if deadline is not None and clock.now >= deadline:
                # Cannot start before the deadline: shed, never
                # touching the engine.
                response.status = REQUEST_SHED
                response.finish = clock.now
                emit("shed", request, at=response.finish)
                continue
            response.start = clock.now
            emit("dispatch", request, at=response.start)
            try:
                result = self.engine.start(request.batch, request.k).run(
                    cancel_at=cancel_at
                )
            except DeviceFault as fault:
                # The engine tier has nowhere to fail over to: an
                # injected fault (DESIGN.md §9) fails the request.
                response.status = REQUEST_FAILED
                response.finish = clock.now
                response.service_seconds = response.finish - response.start
                emit("fail", request, at=response.finish, detail=fault.kind)
                continue
            response.finish = clock.now
            response.service_seconds = response.finish - response.start
            if result is None:
                response.status = REQUEST_CANCELLED
                emit("cancel", request, at=response.finish)
            else:
                response.result = result
                emit(
                    "complete",
                    request,
                    at=response.finish,
                    start=response.start,
                    service_seconds=response.service_seconds,
                )
        return responses

    def _threshold(self) -> float | None:
        pruner = getattr(self.engine, "pruner", None)
        return None if pruner is None else float(pruner.dispersion_threshold)


class DeviceServer(ServerBase):
    """One shared device: scheduler multiplexing + the §4.1 service loop.

    Wraps a :class:`~repro.core.service.SemanticSelectionService`; a
    drain serves the pending wave through a
    :class:`~repro.core.scheduler.DeviceScheduler` configured with this
    server's policy knobs, with the service's deterministic sampling
    stride feeding the idle-check log.  ``edf=True`` orders admission
    by earliest deadline (DESIGN.md §8).
    """

    tier = "device"

    def __init__(
        self,
        service: SemanticSelectionService,
        policy: str = "fifo",
        quantum_layers: int = 1,
        max_skew: float = 0.0,
        edf: bool = False,
    ) -> None:
        super().__init__()
        self.service = service
        self.policy = policy
        self.quantum_layers = quantum_layers
        self.max_skew = max_skew
        self.edf = edf

    def _serve(self, pending: list[SelectionRequest]) -> list[SelectionResponse]:
        cancels = [self._cancel_offset(request) for request in pending]
        wave = self.service.serve_requests(
            pending,
            policy=self.policy,
            quantum_layers=self.quantum_layers,
            max_skew=self.max_skew,
            edf=self.edf,
            cancels=cancels,
        )
        threshold = self.service.threshold
        by_scheduler_id = {
            scheduler_id: request
            for scheduler_id, request in zip(wave.request_ids, pending)
        }
        fused_groups = wave.scheduler.fused_group_ids()
        responses = []
        for outcome in wave.outcomes:
            request = by_scheduler_id[outcome.request_id]
            responses.append(
                SelectionResponse(
                    request_id=request.request_id,  # type: ignore[arg-type]
                    status=REQUEST_OK,
                    tier=self.tier,
                    lane=outcome.priority,
                    result=outcome.result,
                    arrival=outcome.arrival,
                    start=outcome.start,
                    finish=outcome.finish,
                    service_seconds=outcome.service_seconds,
                    deadline=outcome.deadline,
                    policy=self.policy,
                    fused_group=fused_groups.get(outcome.request_id),
                    threshold=threshold,
                    cache=outcome.cache,
                    tenant=request.tenant,
                )
            )
        responses.extend(
            _drop_response(by_scheduler_id[drop.request_id], drop, self.tier, self.policy)
            for drop in wave.dropped
        )
        responses.sort(key=lambda r: (r.finish if r.finish is not None else r.arrival))
        return responses


class FleetServer(ServerBase):
    """Replicated serving: batched admission, routed dispatch.

    Wraps a :class:`~repro.core.fleet.FleetService`; provenance names
    the replica that served each request, and the fleet's routing
    policy.  Deadlines shed at dispatch; cancellation drops pending
    requests and closes mid-pass tasks on replicas serving with
    ``intra_concurrency > 1``.
    """

    tier = "fleet"

    def __init__(self, fleet: FleetService) -> None:
        super().__init__()
        self.fleet = fleet

    def _serve(self, pending: list[SelectionRequest]) -> list[SelectionResponse]:
        fleet = self.fleet
        origin = fleet.clock.now
        by_fleet_id: dict[int, SelectionRequest] = {}
        for request in self._order(pending):
            cancel = self._cancel_offset(request)
            fleet_id = fleet.submit_request(
                request.batch,
                request.k,
                at=origin + request.arrival_offset,
                priority=request.priority,
                deadline=(
                    origin + request.arrival_offset + request.deadline
                    if request.deadline is not None
                    else None
                ),
                cancel_at=origin + cancel if cancel is not None else None,
                client_id=request.request_id,
                sample=request.sample,
                hedge_after_ms=request.hedge_after_ms,
                memoize=request.memoize if request.memoize is not None else True,
                tenant=request.tenant,
            )
            by_fleet_id[fleet_id] = request
        drop_mark = len(fleet.dropped_requests)
        outcomes = fleet.drain()
        threshold = fleet.threshold
        responses = []
        for outcome in outcomes:
            request = by_fleet_id[outcome.request_id]
            service_start = (
                outcome.service_start if outcome.service_start is not None else outcome.start
            )
            responses.append(
                SelectionResponse(
                    request_id=request.request_id,  # type: ignore[arg-type]
                    status=REQUEST_OK,
                    tier=self.tier,
                    lane=outcome.lane,
                    result=outcome.result,
                    arrival=outcome.arrival,
                    start=service_start,
                    finish=outcome.finish,
                    service_seconds=(
                        outcome.service_seconds
                        if outcome.service_seconds is not None
                        else outcome.finish - outcome.start
                    ),
                    deadline=outcome.deadline,
                    replica=outcome.replica,
                    policy=fleet.fleet_config.routing,
                    threshold=threshold,
                    attempts=outcome.attempts,
                    failed_over_from=outcome.failed_over_from,
                    hedged=outcome.hedged,
                    cache=outcome.cache,
                    tenant=outcome.tenant,
                )
            )
        responses.extend(
            _drop_response(
                by_fleet_id[drop.request_id],
                drop,
                self.tier,
                fleet.fleet_config.routing,
            )
            for drop in fleet.dropped_requests[drop_mark:]
        )
        responses.sort(key=lambda r: (r.finish if r.finish is not None else r.arrival))
        return responses


def _drop_response(
    request: SelectionRequest, drop: DroppedRequest, tier: str, policy: str | None
) -> SelectionResponse:
    """Render one scheduler/fleet drop record as a SelectionResponse."""
    status = {
        "shed": REQUEST_SHED,
        "cancelled": REQUEST_CANCELLED,
    }.get(drop.reason, REQUEST_FAILED)
    return SelectionResponse(
        request_id=request.request_id,  # type: ignore[arg-type]
        status=status,
        tier=tier,
        lane=drop.priority,
        arrival=drop.arrival,
        finish=drop.at,
        deadline=drop.deadline,
        policy=policy,
        attempts=drop.attempts,
        failed_over_from=drop.failed_over_from,
        tenant=drop.tenant if drop.tenant is not None else request.tenant,
    )


# ----------------------------------------------------------------------
# Convenience: serve a request list on any tier
# ----------------------------------------------------------------------
def serve_all(
    server: Server, requests: Sequence[SelectionRequest]
) -> list[SelectionResponse]:
    """Submit a request list and drain; responses in completion order."""
    for request in requests:
        server.submit(request)
    return server.drain()


__all__ = [
    "REQUEST_CANCELLED",
    "REQUEST_FAILED",
    "REQUEST_OK",
    "REQUEST_SHED",
    "REQUEST_STATUSES",
    "DeviceServer",
    "EngineServer",
    "FleetServer",
    "RequestHandle",
    "SelectionRequest",
    "SelectionResponse",
    "Server",
    "ServerBase",
    "serve_all",
]
