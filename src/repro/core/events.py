"""Typed, versioned event log on the virtual clock (DESIGN.md §10).

Every serving layer — :class:`~repro.core.scheduler.DeviceScheduler`,
:class:`~repro.core.fleet.FleetService`,
:class:`~repro.core.streaming.WeightPlane`,
:class:`~repro.device.ssd.SSDDevice`, the fault injectors and the
autoscaler — publishes its lifecycle into one :class:`EventLog` through
cheap, ``None``-guarded hooks.  The log is *observational only*: it
never touches a clock, a tracker or a queue, so execution with a sink
attached is byte-identical to execution without one (equivalence-tested
in ``tests/test_trace_replay.py``).

An :class:`Event` is stamped with the emitting tier's virtual-clock
time plus request/replica/tenant identity, and renders to one canonical
JSON line — the unit of trace record/replay
(:mod:`repro.core.trace`).  Two executions are *event-identical* when
their logs render to identical line sequences.

Time axes: events on the ``fleet`` and ``trace`` tiers live on the
fleet coordinator clock; ``device``/``engine``/``plane``/``ssd`` events
live on the emitting device's own clock (replicas run in parallel, so
cross-replica instants are not comparable — ``replica`` labels the
axis).  Within one axis the stamps are monotone, which is what the
invariant suite in ``tests/test_event_invariants.py`` pins.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Bumped whenever the event record schema changes shape.
EVENTS_VERSION = 1

# ---------------------------------------------------------------------------
# event taxonomy (DESIGN.md §10)
# ---------------------------------------------------------------------------
#: A request was admitted by a serving tier (carries its intent).
EVENT_ADMIT = "admit"
#: A request entered a dispatch queue (fleet admission, failover requeue).
EVENT_QUEUE = "queue"
#: A request (or batch member) was handed to an executor/replica.
EVENT_DISPATCH = "dispatch"
#: One layer step of a task executed on a device.
EVENT_STEP = "step"
#: An SSD transfer was issued on the I/O stream.
EVENT_FETCH = "fetch"
#: A weight-plane acquire was served by another pass's fetch.
EVENT_ATTACH = "attach"
#: A pass took a refcount on a shared plane layer.
EVENT_ACQUIRE = "acquire"
#: A pass dropped a refcount on a shared plane layer.
EVENT_RELEASE = "release"
#: A request joined a fused gang under the ``fusion`` policy.
EVENT_FUSE = "fuse"
#: Terminal: the request completed with a selection.
EVENT_COMPLETE = "complete"
#: Terminal: deadline-aware admission shed the request.
EVENT_SHED = "shed"
#: Terminal: the caller cancelled the request.
EVENT_CANCEL = "cancel"
#: Terminal: the request failed (fault surfaced, retries exhausted).
EVENT_FAIL = "fail"
#: A scheduled device fault fired (DESIGN.md §9).
EVENT_FAULT = "fault"
#: A faulted request re-entered the fleet queue for another replica.
EVENT_FAILOVER = "failover"
#: A straggler hedge duplicate raced the primary copy.
EVENT_HEDGE = "hedge"
#: The autoscaler changed fleet capacity.
EVENT_SCALE = "scale"
#: The data plane served a request from cache (memo/coalesced/overlap)
#: without a full engine pass (DESIGN.md §12).
EVENT_CACHE_HIT = "cache_hit"
#: The data plane dropped entries (LRU pressure, epoch invalidation,
#: or a poisoned pending leader) (DESIGN.md §12).
EVENT_CACHE_EVICT = "cache_evict"

#: Every kind an :class:`Event` may carry.
EVENT_KINDS = (
    EVENT_ADMIT,
    EVENT_QUEUE,
    EVENT_DISPATCH,
    EVENT_STEP,
    EVENT_FETCH,
    EVENT_ATTACH,
    EVENT_ACQUIRE,
    EVENT_RELEASE,
    EVENT_FUSE,
    EVENT_COMPLETE,
    EVENT_SHED,
    EVENT_CANCEL,
    EVENT_FAIL,
    EVENT_FAULT,
    EVENT_FAILOVER,
    EVENT_HEDGE,
    EVENT_SCALE,
    EVENT_CACHE_HIT,
    EVENT_CACHE_EVICT,
)

#: The terminal kinds: every admitted request ends in exactly one.
TERMINAL_KINDS = (EVENT_COMPLETE, EVENT_SHED, EVENT_CANCEL, EVENT_FAIL)

#: The tiers that admit requests (and therefore owe them a terminal).
SERVING_TIERS = ("engine", "device", "fleet")


@dataclass(frozen=True)
class Event:
    """One typed event record (DESIGN.md §10).

    ``seq`` is the log-local emission index (total order), ``at`` the
    instant on the emitting tier's virtual clock, ``tier`` names the
    time axis (``trace``/``fleet``/``device``/``engine``/``plane``/
    ``ssd``), ``request``/``replica``/``tenant`` carry identity, and
    ``data`` holds kind-specific fields (JSON scalars/containers only).
    """

    seq: int
    at: float
    kind: str
    tier: str
    request: str | int | None = None
    replica: int | None = None
    tenant: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "at": self.at,
            "kind": self.kind,
            "tier": self.tier,
            "request": self.request,
            "replica": self.replica,
            "tenant": self.tenant,
            "data": self.data,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Event":
        return cls(
            seq=int(payload["seq"]),
            at=float(payload["at"]),
            kind=str(payload["kind"]),
            tier=str(payload["tier"]),
            request=payload.get("request"),
            replica=payload.get("replica"),
            tenant=payload.get("tenant"),
            data=dict(payload.get("data", {})),
        )

    def line(self) -> str:
        """Canonical one-line JSON rendering — the byte-comparable unit.

        Keys are sorted and floats use Python's shortest round-trip
        repr, so identical executions render identical bytes and a
        recorded line parses back to the exact same float instants.
        """
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        """Human-oriented rendering for ``cli trace tail``."""
        who = []
        if self.request is not None:
            who.append(f"request={self.request}")
        if self.replica is not None:
            who.append(f"replica={self.replica}")
        if self.tenant is not None:
            who.append(f"tenant={self.tenant}")
        extras = " ".join(f"{key}={value}" for key, value in self.data.items())
        parts = [f"[{self.seq:05d}] t={self.at:.6f} {self.tier}/{self.kind}"]
        if who:
            parts.append(" ".join(who))
        if extras:
            parts.append(extras)
        return "  ".join(parts)


class EventSubscription:
    """A bounded live tap on an :class:`EventLog` (DESIGN.md §14).

    Fan-out is *zero-perturbation by construction*: :meth:`_offer` is
    the only producer-side operation and it either appends to a bounded
    queue or bumps :attr:`dropped` — it never blocks, never raises into
    the emitter, and never touches a clock.  A subscriber slower than
    the event rate therefore loses events (accounted, never silent)
    instead of stalling the simulation, and a run with N subscribers
    attached executes byte-identically to an unobserved run.

    The queue is a :class:`collections.deque`; producer ``append`` and
    consumer ``popleft`` are each atomic under the GIL, so one emitting
    thread and one draining thread (the live-server pump,
    :mod:`repro.harness.live`) need no further locking.

    ``kinds`` / ``tiers`` / ``tenants`` restrict delivery at fan-out
    time; events filtered out count toward neither ``delivered`` nor
    ``dropped``.
    """

    def __init__(
        self,
        log: "EventLog",
        capacity: int = 4096,
        kinds: tuple[str, ...] | None = None,
        tiers: tuple[str, ...] | None = None,
        tenants: tuple[str, ...] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("subscription capacity must be >= 1")
        for kind in kinds or ():
            if kind not in EVENT_KINDS:
                known = ", ".join(EVENT_KINDS)
                raise ValueError(f"unknown event kind {kind!r}; known: {known}")
        self._log = log
        self.capacity = capacity
        self.kinds = tuple(kinds) if kinds else None
        self.tiers = tuple(tiers) if tiers else None
        self.tenants = tuple(tenants) if tenants else None
        self._queue: deque[Event] = deque()
        #: Events appended to the queue so far (filtered-out ones excluded).
        self.delivered = 0
        #: Events that matched but found the queue full — the explicit
        #: slow-consumer accounting the §14 contract requires.
        self.dropped = 0
        self.closed = False

    # -- producer side (called by EventLog.emit) -----------------------
    def matches(self, event: Event) -> bool:
        return (
            (self.kinds is None or event.kind in self.kinds)
            and (self.tiers is None or event.tier in self.tiers)
            and (self.tenants is None or event.tenant in self.tenants)
        )

    def _offer(self, event: Event) -> None:
        if self.closed or not self.matches(event):
            return
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return
        self._queue.append(event)
        self.delivered += 1

    # -- consumer side --------------------------------------------------
    @property
    def backlog(self) -> int:
        """Events queued and not yet polled."""
        return len(self._queue)

    def poll(self, limit: int | None = None) -> list[Event]:
        """Pop up to ``limit`` queued events (all of them by default)."""
        drained: list[Event] = []
        while self._queue and (limit is None or len(drained) < limit):
            try:
                drained.append(self._queue.popleft())
            except IndexError:  # pragma: no cover - racing consumer
                break
        return drained

    def close(self) -> None:
        """Detach from the log; pending events stay pollable."""
        self.closed = True
        self._log.unsubscribe(self)


class EventLog:
    """An append-only sink every layer publishes into (DESIGN.md §10).

    The log is deliberately dumb: :meth:`emit` validates the kind,
    stamps a sequence number and appends — no clock access, no
    allocation tracking, no I/O — so attaching a log cannot perturb the
    simulation it observes.  Layers guard their hooks with
    ``if log is not None``, so the unobserved hot path costs one
    attribute check.

    Live consumers attach through :meth:`subscribe` (DESIGN.md §14):
    each subscriber gets a bounded queue that :meth:`emit` fans events
    into without ever blocking — a slow subscriber drops (counted on
    its :attr:`EventSubscription.dropped`) rather than perturbing the
    simulation, and the no-subscriber fast path costs one truthiness
    check on an empty list.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._subscribers: list[EventSubscription] = []

    def emit(
        self,
        kind: str,
        at: float,
        tier: str,
        request: str | int | None = None,
        replica: int | None = None,
        tenant: str | None = None,
        **data: Any,
    ) -> Event:
        """Append one event; returns the stamped record."""
        if kind not in EVENT_KINDS:
            known = ", ".join(EVENT_KINDS)
            raise ValueError(f"unknown event kind {kind!r}; known: {known}")
        event = Event(
            seq=len(self.events),
            at=float(at),
            kind=kind,
            tier=tier,
            request=request,
            replica=replica,
            tenant=tenant,
            data=data,
        )
        self.events.append(event)
        if self._subscribers:
            for subscription in self._subscribers:
                subscription._offer(event)
        return event

    # ------------------------------------------------------------------
    # live fan-out (DESIGN.md §14)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        capacity: int = 4096,
        kinds: tuple[str, ...] | None = None,
        tiers: tuple[str, ...] | None = None,
        tenants: tuple[str, ...] | None = None,
    ) -> EventSubscription:
        """Attach a bounded live tap; see :class:`EventSubscription`."""
        subscription = EventSubscription(
            self, capacity=capacity, kinds=kinds, tiers=tiers, tenants=tenants
        )
        self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: EventSubscription) -> None:
        """Detach a subscription; unknown subscriptions are a no-op."""
        subscription.closed = True
        try:
            self._subscribers.remove(subscription)
        except ValueError:
            pass

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index: int) -> Event:
        return self.events[index]

    def filter(
        self,
        kind: str | None = None,
        tier: str | None = None,
        request: str | int | None = None,
        replica: int | None = None,
    ) -> list[Event]:
        """Events matching every given criterion, in emission order."""
        return [
            event
            for event in self.events
            if (kind is None or event.kind == kind)
            and (tier is None or event.tier == tier)
            and (request is None or event.request == request)
            and (replica is None or event.replica == replica)
        ]

    def lines(self) -> list[str]:
        """Canonical JSON line per event — the event-identity artifact."""
        return [event.line() for event in self.events]
