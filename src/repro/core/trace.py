"""Trace record/replay over the typed event log (DESIGN.md §10).

A *trace* is one JSONL artifact: a schema header describing the serving
stack (tier, model, platforms, scheduler/fleet/resilience knobs, the
fault plan) followed by one canonical line per
:class:`~repro.core.events.Event`.  The workload itself rides inside
the log: every request is announced by a ``trace``-tier ``admit`` event
carrying its full intent — the compact
:class:`~repro.data.workloads.RerankQuery` spec plus arrival, deadline,
priority, cancellation and hedge intent — so *replay* needs nothing but
the file: it rebuilds the stack from the header, reconstructs each
request's :class:`~repro.model.transformer.CandidateBatch`
deterministically via :func:`~repro.data.workloads.build_batch`,
re-executes, and asserts the fresh log is event-identical to the
recorded one, line for line.

Because every simulated instant derives from the virtual clock and
candidate scores depend only on (model seed, uid, layer), a replayed
trace reproduces the original byte-for-byte — including injected
faults, failover retries and hedge races (DESIGN.md §9).  Divergence
therefore always means a real behaviour change, never noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from ..data.workloads import CandidateSpec, RerankQuery, build_batch
from ..device.faults import FaultEvent, FaultPlan
from ..device.platforms import get_profile
from ..model.transformer import CrossEncoderModel
from ..model.zoo import get_model_config
from ..text.tokenizer import Tokenizer
from ..text.vocab import Vocabulary
from .api import SelectionRequest, DeviceServer, EngineServer, FleetServer
from .config import PrismConfig
from .engine import PrismEngine
from .events import (
    EVENTS_VERSION,
    SERVING_TIERS,
    TERMINAL_KINDS,
    Event,
    EventLog,
)
from .fleet import FleetConfig, FleetService
from .resilience import AutoscalerConfig, ResilienceConfig
from .scheduler import LANE_BATCH
from .service import SemanticSelectionService

#: JSONL header schema tag / version.
TRACE_SCHEMA = "repro.trace"
TRACE_VERSION = 1

#: Tiers a trace can drive end-to-end.
TRACE_TIERS = ("engine", "device", "fleet")


# ---------------------------------------------------------------------------
# workload serialization
# ---------------------------------------------------------------------------
def query_to_payload(query: RerankQuery) -> dict[str, Any]:
    """A :class:`RerankQuery` as pure JSON scalars (exact round-trip)."""
    return {
        "query_id": query.query_id,
        "seed": query.seed,
        "query_length": query.query_length,
        "candidates": [
            [c.uid, c.seed, c.length, c.relevance, bool(c.is_relevant)]
            for c in query.candidates
        ],
    }


def query_from_payload(payload: dict[str, Any]) -> RerankQuery:
    return RerankQuery(
        query_id=int(payload["query_id"]),
        seed=int(payload["seed"]),
        query_length=int(payload["query_length"]),
        candidates=tuple(
            CandidateSpec(
                uid=int(uid),
                seed=int(seed),
                length=int(length),
                relevance=float(relevance),
                is_relevant=bool(is_relevant),
            )
            for uid, seed, length, relevance, is_relevant in payload["candidates"]
        ),
    )


@dataclass(frozen=True)
class TraceRequest:
    """One recorded request: workload spec + serving intent.

    All instants are *offsets* from the serving wave's origin, the same
    axis :class:`~repro.core.api.SelectionRequest` uses; the query spec
    (not the token arrays) is the payload — ``build_batch`` regenerates
    the exact batch from it on replay.
    """

    query: RerankQuery
    k: int
    request_id: str
    arrival: float = 0.0
    priority: int = LANE_BATCH
    deadline: float | None = None
    cancel_at: float | None = None
    hedge_after_ms: float | None = None
    sample: bool | None = None

    def to_payload(self) -> dict[str, Any]:
        return {
            "query": query_to_payload(self.query),
            "k": self.k,
            "arrival": self.arrival,
            "priority": self.priority,
            "deadline": self.deadline,
            "cancel_at": self.cancel_at,
            "hedge_after_ms": self.hedge_after_ms,
            "sample": self.sample,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any], request_id: str) -> "TraceRequest":
        return cls(
            query=query_from_payload(payload["query"]),
            k=int(payload["k"]),
            request_id=request_id,
            arrival=float(payload.get("arrival", 0.0)),
            priority=int(payload.get("priority", LANE_BATCH)),
            deadline=payload.get("deadline"),
            cancel_at=payload.get("cancel_at"),
            hedge_after_ms=payload.get("hedge_after_ms"),
            sample=payload.get("sample"),
        )


@dataclass(frozen=True)
class TraceSpec:
    """The serving stack a trace runs against (the JSONL header body).

    ``device`` holds device-tier scheduler knobs (``policy``,
    ``quantum_layers``, ``max_skew``, ``edf``, ``max_concurrency``,
    ``shared_weights``); ``fleet`` holds
    :class:`~repro.core.fleet.FleetConfig` kwargs; ``resilience`` /
    ``autoscaler`` hold the §9 config kwargs (``None`` = defaults /
    disabled); ``faults`` holds
    :class:`~repro.device.faults.FaultEvent` kwargs with instants
    relative to the serving origin.
    """

    tier: str
    model: str = "qwen3-reranker-0.6b"
    platforms: tuple[str, ...] = ("nvidia_5070",)
    device: dict[str, Any] = field(default_factory=dict)
    fleet: dict[str, Any] = field(default_factory=dict)
    resilience: dict[str, Any] | None = None
    autoscaler: dict[str, Any] | None = None
    faults: tuple[dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.tier not in TRACE_TIERS:
            known = ", ".join(TRACE_TIERS)
            raise ValueError(f"unknown trace tier {self.tier!r}; known: {known}")
        if not self.platforms:
            raise ValueError("a trace needs at least one platform")

    def to_payload(self) -> dict[str, Any]:
        return {
            "tier": self.tier,
            "model": self.model,
            "platforms": list(self.platforms),
            "device": dict(self.device),
            "fleet": dict(self.fleet),
            "resilience": self.resilience,
            "autoscaler": self.autoscaler,
            "faults": [dict(f) for f in self.faults],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TraceSpec":
        return cls(
            tier=str(payload["tier"]),
            model=str(payload["model"]),
            platforms=tuple(payload["platforms"]),
            device=dict(payload.get("device", {})),
            fleet=dict(payload.get("fleet", {})),
            resilience=payload.get("resilience"),
            autoscaler=payload.get("autoscaler"),
            faults=tuple(dict(f) for f in payload.get("faults", [])),
        )

    def fault_events(self) -> tuple[FaultEvent, ...]:
        return tuple(FaultEvent(**kwargs) for kwargs in self.faults)


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
# Process-wide immutable shares (same discipline as harness.runner):
# weights depend only on the model seed, so reuse is behaviour-neutral.
_MODEL_CACHE: dict[str, CrossEncoderModel] = {}
_TOKENIZER_CACHE: dict[int, Tokenizer] = {}


def _shared_model(name: str) -> CrossEncoderModel:
    if name not in _MODEL_CACHE:
        _MODEL_CACHE[name] = CrossEncoderModel(get_model_config(name))
    return _MODEL_CACHE[name]


def _shared_tokenizer(vocab_size: int) -> Tokenizer:
    if vocab_size not in _TOKENIZER_CACHE:
        _TOKENIZER_CACHE[vocab_size] = Tokenizer(Vocabulary(vocab_size))
    return _TOKENIZER_CACHE[vocab_size]


@dataclass
class TraceRun:
    """One executed trace: the log plus the request outcomes."""

    spec: TraceSpec
    requests: list[TraceRequest]
    log: EventLog
    responses: list  # SelectionResponse, completion order

    @property
    def selections(self) -> dict[str, list[int] | None]:
        """Request id → selected candidate indices (None when dropped)."""
        return {
            str(response.request_id): (
                [int(i) for i in response.result.top_indices]
                if response.result is not None
                else None
            )
            for response in self.responses
        }

    @property
    def statuses(self) -> dict[str, str]:
        return {str(r.request_id): r.status for r in self.responses}


def build_server(spec: TraceSpec, log: EventLog | None):
    """Instantiate the serving stack a spec describes.

    Returns ``(server, clock)`` where ``clock`` is the tier's workload
    time axis (the fleet clock, or the single device's clock).  With
    ``log=None`` the stack runs unobserved — the equivalence tests use
    exactly this to pin zero behaviour change.
    """
    model = _shared_model(spec.model)
    profiles = [get_profile(name) for name in spec.platforms]
    config = PrismConfig(numerics=False)
    if spec.tier == "engine":
        device = profiles[0].create()
        engine = PrismEngine(model, device, config)
        engine.prepare()
        if log is not None:
            device.attach_event_log(log)
        if spec.faults:
            device.install_faults(spec.fault_events(), origin=device.clock.now)
        return EngineServer(engine), device.clock
    if spec.tier == "device":
        knobs = dict(spec.device)
        service = SemanticSelectionService(
            model,
            profiles[0],
            config=config,
            max_concurrency=knobs.get("max_concurrency", 1),
            shared_weights=knobs.get("shared_weights", False),
            event_log=log,
        )
        if spec.faults:
            service.device.install_faults(
                spec.fault_events(), origin=service.device.clock.now
            )
        server = DeviceServer(
            service,
            policy=knobs.get("policy", "round_robin"),
            quantum_layers=knobs.get("quantum_layers", 1),
            max_skew=knobs.get("max_skew", 0.0),
            edf=knobs.get("edf", False),
        )
        return server, service.device.clock
    fleet = FleetService(
        model,
        profiles,
        fleet_config=FleetConfig(**spec.fleet),
        config=config,
        fault_plan=FaultPlan(spec.fault_events()) if spec.faults else None,
        resilience=(
            ResilienceConfig(**spec.resilience) if spec.resilience is not None else None
        ),
        autoscaler=(
            AutoscalerConfig(**spec.autoscaler) if spec.autoscaler is not None else None
        ),
        event_log=log,
    )
    return FleetServer(fleet), fleet.clock


def run_trace(
    spec: TraceSpec,
    requests: Sequence[TraceRequest],
    log: EventLog | None = None,
    observe: bool = True,
) -> TraceRun:
    """Execute a workload against the stack a spec describes.

    Emits one ``trace``-tier ``admit`` event per request before serving
    begins — the self-contained workload record replay reads back.
    ``observe=False`` runs the identical submission path with *no* sink
    attached anywhere (the returned run's log stays empty) — the
    §10 zero-perturbation guarantee is pinned by comparing its
    selections against an observed run's.
    """
    if not observe:
        log = None
    elif log is None:
        log = EventLog()
    server, clock = build_server(spec, log)
    model_config = get_model_config(spec.model)
    tokenizer = _shared_tokenizer(model_config.vocab_size)
    origin = clock.now
    if log is not None:
        for request in requests:
            log.emit(
                "admit",
                at=origin,
                tier="trace",
                request=request.request_id,
                **request.to_payload(),
            )
    handles = []
    for request in requests:
        handle = server.submit(
            SelectionRequest(
                batch=build_batch(request.query, tokenizer, model_config.max_seq_len),
                k=request.k,
                request_id=request.request_id,
                priority=request.priority,
                arrival=request.arrival,
                deadline=request.deadline,
                sample=request.sample,
                hedge_after_ms=request.hedge_after_ms,
            )
        )
        if request.cancel_at is not None:
            handle.cancel(at=request.cancel_at)
        handles.append(handle)
    responses = server.drain()
    return TraceRun(
        spec=spec,
        requests=list(requests),
        log=log if log is not None else EventLog(),
        responses=responses,
    )


# ---------------------------------------------------------------------------
# the JSONL artifact
# ---------------------------------------------------------------------------
def render_trace(spec: TraceSpec, log: EventLog) -> str:
    """The canonical JSONL artifact: schema header + one line per event."""
    header = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_VERSION,
        "events_version": EVENTS_VERSION,
        "spec": spec.to_payload(),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    lines.extend(log.lines())
    return "\n".join(lines) + "\n"


def parse_trace(text: str) -> tuple[TraceSpec, list[Event], list[str]]:
    """Parse a JSONL trace → (spec, events, canonical event lines)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace: no schema header")
    header = json.loads(lines[0])
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"not a {TRACE_SCHEMA} file (schema={header.get('schema')!r})")
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"trace version {header.get('version')!r} != supported {TRACE_VERSION}"
        )
    spec = TraceSpec.from_payload(header["spec"])
    events = [Event.from_payload(json.loads(line)) for line in lines[1:]]
    return spec, events, lines[1:]


def read_trace(path: str | Path) -> tuple[TraceSpec, list[Event], list[str]]:
    return parse_trace(Path(path).read_text())


def requests_from_events(events: Iterable[Event]) -> list[TraceRequest]:
    """Reconstruct the recorded workload from ``trace``-tier admits."""
    return [
        TraceRequest.from_payload(event.data, request_id=str(event.request))
        for event in events
        if event.tier == "trace" and event.kind == "admit"
    ]


def record_trace(
    spec: TraceSpec, requests: Sequence[TraceRequest], path: str | Path | None = None
) -> tuple[TraceRun, str]:
    """Run a workload with recording on; optionally write the JSONL."""
    run = run_trace(spec, requests)
    text = render_trace(spec, run.log)
    if path is not None:
        Path(path).write_text(text)
    return run, text


@dataclass
class ReplayReport:
    """Line-level verdict of one record → replay comparison."""

    recorded_events: int
    replayed_events: int
    #: Index (0-based, into the event lines) of the first divergence;
    #: ``None`` when the logs are event-identical.
    first_divergence: int | None = None
    recorded_line: str | None = None
    replayed_line: str | None = None

    @property
    def event_identical(self) -> bool:
        return (
            self.first_divergence is None
            and self.recorded_events == self.replayed_events
        )


def compare_logs(recorded_lines: Sequence[str], replayed_lines: Sequence[str]) -> ReplayReport:
    """First-divergence comparison of two canonical line sequences."""
    report = ReplayReport(
        recorded_events=len(recorded_lines), replayed_events=len(replayed_lines)
    )
    for index, (old, new) in enumerate(zip(recorded_lines, replayed_lines)):
        if old != new:
            report.first_divergence = index
            report.recorded_line = old
            report.replayed_line = new
            return report
    if len(recorded_lines) != len(replayed_lines):
        index = min(len(recorded_lines), len(replayed_lines))
        report.first_divergence = index
        report.recorded_line = (
            recorded_lines[index] if index < len(recorded_lines) else None
        )
        report.replayed_line = (
            replayed_lines[index] if index < len(replayed_lines) else None
        )
    return report


def replay_trace(
    path: str | Path | None = None, text: str | None = None
) -> tuple[TraceRun, ReplayReport]:
    """Re-execute a recorded trace; report event-identity line by line.

    The workload (arrivals, deadlines, priorities, cancellations,
    hedges) is reconstructed from the recorded log itself; the stack
    (including the fault plan — faults are part of the spec, so a
    mid-stream crash replays deterministically) comes from the header.
    """
    if (path is None) == (text is None):
        raise ValueError("pass exactly one of path / text")
    spec, events, recorded_lines = (
        read_trace(path) if path is not None else parse_trace(text)  # type: ignore[arg-type]
    )
    run = run_trace(spec, requests_from_events(events))
    return run, compare_logs(recorded_lines, run.log.lines())


# ---------------------------------------------------------------------------
# aggregation (cli trace summary / tail)
# ---------------------------------------------------------------------------
@dataclass
class TierSummary:
    """Per-tier lifecycle rollup of one event log."""

    tier: str
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    cancelled: int = 0
    failed: int = 0
    throughput_rps: float | None = None
    p50_latency: float | None = None
    p95_latency: float | None = None
    p99_latency: float | None = None


@dataclass
class TraceSummary:
    """The fleet dashboard a log aggregates into (DESIGN.md §10)."""

    events: int
    kinds: dict[str, int]
    tiers: list[TierSummary]
    faults: int = 0
    failovers: int = 0
    hedges: int = 0
    scale_actions: int = 0
    fetches: int = 0
    fetched_bytes: int = 0


def summarize_events(events: Sequence[Event]) -> TraceSummary:
    """Aggregate a log: per-tier throughput, latency percentiles, drops.

    Latency is ``terminal.at − arrival`` on the tier's own clock (both
    carried by the tier's events, so replicas' differing origins never
    mix); throughput is completions over the tier's observed span.
    """
    kinds: dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    tiers = []
    for tier in SERVING_TIERS:
        tier_events = [e for e in events if e.tier == tier]
        summary = TierSummary(tier=tier)
        arrivals: dict[tuple, float] = {}
        latencies: list[float] = []
        for event in tier_events:
            # Fleet lifecycle events all ride the coordinator clock —
            # the admit names no replica while the complete names the
            # serving one — so the request alone keys the pairing;
            # device/engine events pair within their replica's axis.
            key = (
                (event.request,)
                if tier == "fleet"
                else (event.replica, event.request)
            )
            if event.kind == "admit":
                summary.admitted += 1
                arrivals[key] = float(event.data.get("arrival", event.at))
            elif event.kind == "complete":
                summary.completed += 1
                if "latency" in event.data:
                    latencies.append(float(event.data["latency"]))
                elif key in arrivals:
                    latencies.append(event.at - arrivals[key])
            elif event.kind == "shed":
                summary.shed += 1
            elif event.kind == "cancel":
                summary.cancelled += 1
            elif event.kind == "fail":
                summary.failed += 1
        if not (summary.admitted or summary.completed + summary.shed
                + summary.cancelled + summary.failed):
            # The tier served nothing (e.g. stray engine step events
            # under a device-tier run) — no dashboard row.
            continue
        span = max(e.at for e in tier_events) - min(e.at for e in tier_events)
        if summary.completed and span > 0:
            summary.throughput_rps = summary.completed / span
        if latencies:
            summary.p50_latency = float(np.percentile(latencies, 50))
            summary.p95_latency = float(np.percentile(latencies, 95))
            summary.p99_latency = float(np.percentile(latencies, 99))
        tiers.append(summary)
    return TraceSummary(
        events=len(events),
        kinds=kinds,
        tiers=tiers,
        faults=kinds.get("fault", 0),
        failovers=kinds.get("failover", 0),
        hedges=kinds.get("hedge", 0),
        scale_actions=kinds.get("scale", 0),
        fetches=kinds.get("fetch", 0),
        fetched_bytes=sum(
            int(e.data.get("nbytes", 0)) for e in events if e.kind == "fetch"
        ),
    )


# ---------------------------------------------------------------------------
# timeline export (cli trace timeline, DESIGN.md §14)
# ---------------------------------------------------------------------------
#: Event kinds rendered as instants inside a request's span.
_TIMELINE_INSTANTS = ("step", "fetch", "fuse", "hedge", "cache_hit")


def _span(name: str, pid: int, tid: int, start: float, end: float, args=None) -> dict:
    event: dict[str, Any] = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": round(start * 1e6, 3),
        "dur": round(max(0.0, end - start) * 1e6, 3),
        "cat": "request",
    }
    if args:
        event["args"] = args
    return event


def timeline_events(events: Sequence[Event]) -> list[dict]:
    """Chrome trace-event JSON objects for a recorded log (§14).

    Each serving tier becomes a process and each (replica, request)
    lane a thread; every request renders as nested duration spans —
    the whole lifetime (``admit → terminal``), the queue wait
    (``admit → dispatch``) and the service pass (``dispatch →
    terminal``) — with ``step``/``fetch``/``fuse``/``hedge``/
    ``cache_hit`` instants inside.  Virtual seconds map to trace
    microseconds.  Wrap the list as ``{"traceEvents": [...]}`` (see
    :func:`write_timeline`) and the file loads directly in Perfetto /
    ``chrome://tracing``.
    """
    out: list[dict] = []
    pids = {tier: index + 1 for index, tier in enumerate(SERVING_TIERS)}
    tids: dict[tuple, int] = {}
    open_spans: dict[tuple, dict[str, Any]] = {}
    named_pids: set[int] = set()

    def lane(event: Event) -> tuple:
        if event.tier == "fleet":
            return (event.tier, event.request)
        return (event.tier, event.replica, event.request)

    def tid_of(key: tuple, event: Event) -> int:
        if key not in tids:
            tids[key] = len(tids) + 1
            label = str(event.request)
            if event.tier != "fleet" and event.replica is not None:
                label = f"replica{event.replica}/{label}"
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[event.tier],
                    "tid": tids[key],
                    "args": {"name": label},
                }
            )
        return tids[key]

    for event in events:
        if event.tier not in pids:
            continue
        pid = pids[event.tier]
        if pid not in named_pids:
            named_pids.add(pid)
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"{event.tier} tier"},
                }
            )
        key = lane(event)
        tid = tid_of(key, event)
        if event.kind == "admit":
            open_spans[key] = {
                "admit": float(event.data.get("arrival", event.at)),
                "dispatch": None,
                "tenant": event.tenant,
            }
        elif event.kind == "dispatch":
            if key in open_spans:
                open_spans[key]["dispatch"] = event.at
        elif event.kind in _TIMELINE_INSTANTS:
            out.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": round(event.at * 1e6, 3),
                    "cat": event.kind,
                }
            )
        elif event.kind in TERMINAL_KINDS:
            span = open_spans.pop(key, None)
            if span is None:
                continue
            admit, dispatch = span["admit"], span["dispatch"]
            args = {
                "status": event.kind,
                "tenant": span["tenant"],
                "detail": event.data.get("detail", ""),
            }
            out.append(_span(f"request {event.request}", pid, tid, admit, event.at, args))
            if dispatch is not None:
                out.append(_span("queued", pid, tid, admit, dispatch))
                out.append(_span("service", pid, tid, dispatch, event.at))
            else:
                out.append(_span("queued", pid, tid, admit, event.at))
    return out


def write_timeline(events: Sequence[Event], path: str | Path) -> int:
    """Write a log's :func:`timeline_events` as a Perfetto-loadable
    ``{"traceEvents": [...]}`` JSON file; returns the span/event count."""
    rendered = timeline_events(events)
    Path(path).write_text(
        json.dumps({"traceEvents": rendered, "displayTimeUnit": "ms"}) + "\n"
    )
    return len(rendered)
