"""Evaluation metrics: Precision@K and ranking-convergence statistics.

* :func:`precision_at_k` follows the paper's definition (§6.1): the
  fraction of the returned top-K that is ground-truth relevant, with
  the denominator capped by the number of relevant items when that is
  smaller than K.
* :func:`goodman_kruskal_gamma` quantifies how well an intermediate
  layer's ranking agrees with the final ranking (§3.1): concordant
  minus discordant candidate pairs over their sum.
* :func:`cluster_gamma` restricts γ to pairs drawn from *different*
  clusters — the paper's direct measurement of inter-cluster ranking
  stability (Figure 2b), which stays ≈1.0 across layers.
"""

from __future__ import annotations

import numpy as np


def precision_at_k(selected: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Precision@K of a returned top-K set.

    Parameters
    ----------
    selected:
        Indices (into the candidate pool) returned by the engine,
        best-first; only the first ``k`` are considered.
    labels:
        Boolean ground-truth relevance per pool candidate.
    k:
        The K of top-K.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    labels = np.asarray(labels, dtype=bool)
    selected = np.asarray(selected)[:k]
    num_relevant = int(labels.sum())
    if num_relevant == 0:
        return 1.0  # no relevant items exist; any selection is vacuously fine
    hits = int(labels[selected].sum())
    return hits / min(k, num_relevant)


def goodman_kruskal_gamma(intermediate: np.ndarray, final: np.ndarray) -> float:
    """Goodman and Kruskal's γ between two score vectors.

    γ = (N_c − N_d) / (N_c + N_d) over all candidate pairs, where a
    pair is concordant when both vectors order it the same way.  Ties
    in either vector are excluded, per the standard definition.
    """
    intermediate = np.asarray(intermediate, dtype=np.float64)
    final = np.asarray(final, dtype=np.float64)
    if intermediate.shape != final.shape:
        raise ValueError("score vectors must have equal shape")
    n = intermediate.size
    if n < 2:
        return 1.0
    di = np.sign(intermediate[:, None] - intermediate[None, :])
    df = np.sign(final[:, None] - final[None, :])
    upper = np.triu_indices(n, k=1)
    products = di[upper] * df[upper]
    concordant = int((products > 0).sum())
    discordant = int((products < 0).sum())
    if concordant + discordant == 0:
        return 1.0
    return (concordant - discordant) / (concordant + discordant)


def cluster_gamma(
    intermediate: np.ndarray, final: np.ndarray, cluster_ids: np.ndarray
) -> float:
    """γ restricted to candidate pairs in different clusters (Figure 2b)."""
    intermediate = np.asarray(intermediate, dtype=np.float64)
    final = np.asarray(final, dtype=np.float64)
    cluster_ids = np.asarray(cluster_ids)
    if not intermediate.shape == final.shape == cluster_ids.shape:
        raise ValueError("inputs must have equal shape")
    n = intermediate.size
    if n < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if cluster_ids[i] == cluster_ids[j]:
                continue
            di = np.sign(intermediate[i] - intermediate[j])
            df = np.sign(final[i] - final[j])
            if di == 0 or df == 0:
                continue
            if di == df:
                concordant += 1
            else:
                discordant += 1
    if concordant + discordant == 0:
        return 1.0
    return (concordant - discordant) / (concordant + discordant)


def top_k_overlap(selected_a: np.ndarray, selected_b: np.ndarray, k: int) -> float:
    """Fraction of agreement between two top-K sets (order-insensitive)."""
    if k <= 0:
        raise ValueError("k must be positive")
    a = set(np.asarray(selected_a)[:k].tolist())
    b = set(np.asarray(selected_b)[:k].tolist())
    if not a and not b:
        return 1.0
    return len(a & b) / max(len(a), len(b))
