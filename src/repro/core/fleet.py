"""Fleet-scale serving: sharded, batched selection across replicas (DESIGN.md §5).

One :class:`~repro.core.service.SemanticSelectionService` serves one
request at a time on one device.  Heavy traffic needs a *fleet*: N
replicas (possibly on heterogeneous platforms) behind a shared
admission queue.  :class:`FleetService` provides that layer on the
simulated clock:

* **Admission & batching** — requests enter a fleet-wide queue; the
  dispatcher flushes a batch to one replica when ``max_batch`` requests
  have accumulated or the oldest request has waited ``max_wait_ms``.
  Batching amortises the fixed per-dispatch overhead (scheduler wakeup,
  host↔device command submission) across the batch.
* **Routing** — pluggable policies decide which replica takes a batch:
  ``round_robin`` (stateless fairness), ``least_loaded`` (smallest
  backlog of already-assigned work), and ``ewma`` (latency-aware:
  predicted completion from an exponentially-weighted per-request
  latency estimate, which adapts to heterogeneous replicas).
* **Fleet statistics** — end-to-end latency percentiles (p50/p95/p99),
  per-replica utilisation, queue-depth profile, and simulated
  throughput.
* **Coordinated maintenance** — an idle pass runs every replica's
  §4.1 self-calibration step, then propagates the *median* of the
  replica thresholds fleet-wide, so one replica's skewed sample stream
  cannot drag its operating point away from the fleet's.
* **Resilience** (DESIGN.md §9) — per-replica health probes (EWMA step
  latency + consecutive failures) exclude faulty replicas from routing
  for a cooldown; requests whose dispatch died on an injected
  :class:`~repro.device.faults.DeviceFault` fail over to healthy
  replicas (bounded retries, provenance on the outcome); optional
  straggler hedging races a duplicate on a second replica; and an
  optional queue-depth autoscaler grows/shrinks the live replica set
  between dispatches.

Time model: every replica device keeps its own
:class:`~repro.device.clock.VirtualClock` (replicas genuinely run in
parallel), while the fleet owns a coordinator clock.  Dispatch aligns a
replica's local timeline to the fleet timeline with ``advance_to`` —
the same synchronisation primitive the compute/I-O streams use inside
one device — so queue wait, service time and completion all live on one
coherent simulated axis.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..device.clock import VirtualClock
from ..device.faults import FAULT_BANDWIDTH_DEGRADATION, DeviceFault, FaultPlan
from ..device.platforms import DeviceProfile
from ..model.transformer import CandidateBatch, CrossEncoderModel
from .config import PrismConfig
from .data_plane import (
    DataPlane,
    DataPlaneConfig,
    DataPlaneStats,
    SharedEmbeddingCache,
    clone_result,
)
from .engine import RerankResult
from .resilience import AutoscalerConfig, ReplicaHealth, ResilienceConfig, ScalingEvent
from .scheduler import LANE_BATCH, SCHEDULING_POLICIES, DroppedRequest
from .service import MaintenanceReport, SampleStride, SemanticSelectionService
from .tenancy import FairAdmission, TenancyConfig, TenantStats


@dataclass(frozen=True)
class FleetConfig:
    """Admission/batching/routing knobs for a :class:`FleetService`.

    Parameters
    ----------
    max_batch:
        Most requests dispatched to one replica in one batch.
    max_wait_ms:
        Longest a queued request may wait (simulated time) for its
        batch to fill before the dispatcher flushes a partial batch.
    routing:
        Routing policy name; see :data:`ROUTING_POLICIES`.
    dispatch_overhead_ms:
        Fixed per-dispatch cost charged on the serving replica before
        the batch executes — the quantity batching amortises.
    ewma_alpha:
        Smoothing factor of the ``ewma`` policy's per-request latency
        estimate (higher = adapts faster).
    intra_concurrency:
        In-flight request cap *inside* each replica (DESIGN.md §6).
        ``1`` keeps replicas serial (a dispatched batch executes
        request-by-request); above 1, a dispatched batch is served
        through the replica's :class:`~repro.core.scheduler.DeviceScheduler`,
        multiplexing its requests at layer boundaries — replica-level
        routing composed with intra-replica concurrency.
    intra_policy:
        Scheduling policy of the intra-replica scheduler (only used
        when ``intra_concurrency > 1``); ``fusion`` gang-schedules a
        dispatched batch layer by layer.
    shared_weight_plane:
        Serve every replica from a refcounted shared weight plane
        (DESIGN.md §7): the requests of a dispatched batch read each
        layer from the replica's SSD once instead of once per request.
        Meaningful with ``intra_concurrency > 1``.
    max_skew:
        Group-join bound of the ``fusion`` intra-replica policy
        (seconds); see :class:`~repro.core.scheduler.SchedulerConfig`.
    data_plane:
        Attach the fleet-shared semantic result & candidate cache
        (DESIGN.md §12): request memoization, in-flight coalescing and
        partial-overlap candidate reuse.  ``False`` (the default)
        serves every request by a full pass — byte-identical to a
        fleet built before the plane existed.
    data_plane_config:
        Tunables of the plane (:class:`~repro.core.data_plane.DataPlaneConfig`);
        ``None`` takes the defaults.  Only meaningful with
        ``data_plane=True``.
    shared_embedding_cache:
        Promote the per-engine §4.4 embedding row cache to one
        fleet-shared refcounted directory (DESIGN.md §12 layer 3): a
        row any replica faulted in is a hit for every replica.
    """

    max_batch: int = 4
    max_wait_ms: float = 50.0
    routing: str = "round_robin"
    dispatch_overhead_ms: float = 2.0
    ewma_alpha: float = 0.25
    intra_concurrency: int = 1
    intra_policy: str = "round_robin"
    shared_weight_plane: bool = False
    max_skew: float = 0.0
    data_plane: bool = False
    data_plane_config: DataPlaneConfig | None = None
    shared_embedding_cache: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.routing not in ROUTING_POLICIES:
            known = ", ".join(sorted(ROUTING_POLICIES))
            raise ValueError(f"unknown routing policy {self.routing!r}; known: {known}")
        if self.dispatch_overhead_ms < 0:
            raise ValueError("dispatch_overhead_ms must be >= 0")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if self.intra_concurrency < 1:
            raise ValueError("intra_concurrency must be >= 1")
        if self.intra_policy not in SCHEDULING_POLICIES:
            known = ", ".join(SCHEDULING_POLICIES)
            raise ValueError(
                f"unknown intra-replica policy {self.intra_policy!r}; known: {known}"
            )
        if self.max_skew < 0:
            raise ValueError("max_skew must be >= 0")


@dataclass
class ReplicaHandle:
    """One serving replica plus the coordinator's view of its state.

    The fleet tracks each replica in *fleet time*; ``origin`` maps the
    replica device clock (which already advanced during ``prepare()``)
    onto the fleet axis so steady-state serving starts at t=0.
    """

    index: int
    service: SemanticSelectionService
    origin: float = 0.0
    busy_until: float = 0.0
    busy_seconds: float = 0.0
    requests_served: int = 0
    batches_served: int = 0
    ewma_latency: float = 0.0
    #: Coordinator health view (DESIGN.md §9): EWMA step latency,
    #: consecutive failures, unhealthy-cooldown window.
    health: ReplicaHealth = field(default_factory=ReplicaHealth)
    #: Retired by the autoscaler: excluded from routing forever.
    retired: bool = False
    #: Fleet-time instant the autoscaler added this replica (0.0 for
    #: replicas present since construction).
    spawned_at: float = 0.0

    @property
    def local_now(self) -> float:
        """The replica's position on the fleet time axis."""
        return self.service.device.clock.now - self.origin

    def sync_to(self, fleet_time: float) -> None:
        """Advance the replica's clock to a fleet-time instant."""
        self.service.device.clock.advance_to(fleet_time + self.origin)

    def backlog(self, now: float) -> float:
        """Seconds of already-assigned work outstanding at ``now``."""
        return max(0.0, self.busy_until - now)


# ----------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------
class RoutingPolicy:
    """Chooses the replica that takes the next dispatched batch."""

    name = "base"

    def choose(
        self, replicas: Sequence[ReplicaHandle], now: float, batch_size: int
    ) -> ReplicaHandle:  # pragma: no cover - abstract
        raise NotImplementedError


class RoundRobinRouting(RoutingPolicy):
    """Stateless fairness: replicas take turns regardless of load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, replicas: Sequence[ReplicaHandle], now: float, batch_size: int
    ) -> ReplicaHandle:
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


class LeastLoadedRouting(RoutingPolicy):
    """Smallest outstanding backlog wins (ties: fewest requests, index)."""

    name = "least_loaded"

    def choose(
        self, replicas: Sequence[ReplicaHandle], now: float, batch_size: int
    ) -> ReplicaHandle:
        return min(
            replicas,
            key=lambda r: (r.backlog(now), r.requests_served, r.index),
        )


class EwmaRouting(RoutingPolicy):
    """Latency-aware: minimise predicted completion time of the batch.

    Predicted completion = start the replica could begin (its backlog)
    plus its EWMA per-request latency times the batch size.  On a
    heterogeneous fleet this learns to send less work to slow replicas,
    which pure backlog comparison only discovers after the damage.
    """

    name = "ewma"

    def choose(
        self, replicas: Sequence[ReplicaHandle], now: float, batch_size: int
    ) -> ReplicaHandle:
        return min(
            replicas,
            key=lambda r: (
                r.backlog(now) + r.ewma_latency * batch_size,
                r.requests_served,
                r.index,
            ),
        )


#: name → policy factory (policies carry per-fleet state, so factories).
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    RoundRobinRouting.name: RoundRobinRouting,
    LeastLoadedRouting.name: LeastLoadedRouting,
    EwmaRouting.name: EwmaRouting,
}


# ----------------------------------------------------------------------
# requests, outcomes, reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetRequest:
    """One admitted request awaiting dispatch.

    ``client_id`` is the caller's correlation id (the
    :class:`~repro.core.api.SelectionRequest` id on the unified API),
    carried end-to-end into :class:`RequestOutcome`.  ``deadline`` and
    ``cancel_at`` are absolute instants on the *fleet* clock; a
    request whose deadline passes before it can start is shed at
    dispatch, never reaching a replica (DESIGN.md §8).
    """

    request_id: int
    batch: CandidateBatch
    k: int
    arrival: float
    priority: int = LANE_BATCH
    deadline: float | None = None
    cancel_at: float | None = None
    client_id: str | int | None = None
    sample: bool | None = None
    #: Duplicate this request onto a second replica if it has not
    #: completed this many milliseconds after arrival (DESIGN.md §9).
    hedge_after_ms: float | None = None
    #: Dispatch attempts so far, 1-based; failover re-dispatches bump it.
    attempts: int = 1
    #: Replicas whose dispatch of this request failed, in failure order.
    failed_over_from: tuple[int, ...] = ()
    #: Earliest fleet instant this request may start service — a
    #: failover retry cannot begin before the fault that spawned it.
    not_before: float = 0.0
    #: Data-plane opt-out (DESIGN.md §12): ``False`` bypasses the
    #: request memo/coalescing cache and forces a full pass.
    memoize: bool = True
    #: Submitting tenant (DESIGN.md §13); drives token-bucket admission
    #: and weighted fair queuing when the fleet has a tenancy plane.
    tenant: str | None = None


@dataclass
class RequestOutcome:
    """Completion record of one request on the fleet time axis.

    Carries the request's identity end-to-end: the fleet-local
    ``request_id`` returned by ``submit``, and the caller's
    ``client_id`` when one was supplied — so an outcome can always be
    correlated back to the request that produced it.
    """

    request_id: int
    #: Serving replica, or ``None`` for a data-plane memo hit — a hit
    #: never occupies a replica (DESIGN.md §12).
    replica: int | None
    arrival: float
    start: float  # the batch's dispatch instant (shared by the whole batch)
    finish: float
    result: RerankResult
    client_id: str | int | None = None
    lane: int = LANE_BATCH
    deadline: float | None = None
    #: When this request's own service began on the replica (fleet
    #: time).  ``start`` is the *batch* dispatch instant; in a serially
    #: served batch the later requests start well after it.
    service_start: float | None = None
    #: Time spent in this request's own execution (excludes the queue,
    #: the dispatch overhead, and — under intra-replica multiplexing —
    #: other requests' interleaved steps).
    service_seconds: float | None = None
    #: Failover provenance (DESIGN.md §9): how many dispatch attempts
    #: this request consumed, and which replicas failed it first.
    attempts: int = 1
    failed_over_from: tuple[int, ...] = ()
    #: A hedge duplicate was launched for this request; ``replica`` is
    #: the replica whose copy won.
    hedged: bool = False
    #: Data-plane provenance (DESIGN.md §12): ``"hit"`` (memoized),
    #: ``"coalesced"`` (attached to an in-flight leader) or ``None``
    #: (served by a full or residue pass).
    cache: str | None = None
    #: Submitting tenant (DESIGN.md §13); ``None`` outside the
    #: tenancy plane.
    tenant: str | None = None

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival

    @property
    def latency(self) -> float:
        """End-to-end: admission to completion (wait + dispatch + service)."""
        return self.finish - self.arrival

    @property
    def deadline_met(self) -> bool | None:
        """Completed by the deadline?  ``None`` when none was set."""
        if self.deadline is None:
            return None
        return self.finish <= self.deadline


@dataclass
class FleetMaintenanceReport:
    """Outcome of one coordinated idle pass across the fleet."""

    replica_reports: list[MaintenanceReport | None]
    pre_consensus_thresholds: list[float]
    consensus_threshold: float

    @property
    def replicas_adjusted(self) -> int:
        return sum(
            1 for report in self.replica_reports if report is not None and report.adjusted
        )


@dataclass
class FleetStats:
    """Aggregate view over the completed outcomes of a fleet."""

    outcomes: list[RequestOutcome] = field(default_factory=list)
    queue_depth_samples: list[tuple[float, int]] = field(default_factory=list)
    utilisation: dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0
    maintenance_rounds: int = 0
    # ---- resilience plane (DESIGN.md §9) ------------------------------
    #: Failover re-dispatches performed (one per requeued request).
    failovers: int = 0
    #: Requests dropped with reason ``"failed"`` (retries exhausted).
    failed_requests: int = 0
    #: Hedge duplicates launched / hedge duplicates that won.
    hedges_launched: int = 0
    hedges_won: int = 0
    #: Autoscaler actions in fleet-time order.
    scaling_events: list[ScalingEvent] = field(default_factory=list)
    #: (fleet time, live replica count) after every capacity change.
    capacity_samples: list[tuple[float, int]] = field(default_factory=list)
    # ---- data plane (DESIGN.md §12) -----------------------------------
    #: Cache-plane counters, mirroring the weight plane's PlaneStats;
    #: ``None`` when the fleet serves without a data plane.
    data_plane: DataPlaneStats | None = None
    # ---- tenancy plane (DESIGN.md §13) --------------------------------
    #: Per-tenant rollups (p50/p99, shed rate, token debt); empty when
    #: the fleet serves without a tenancy plane.
    tenants: dict[str | None, TenantStats] = field(default_factory=dict)

    def _latencies(self) -> np.ndarray:
        return np.array([o.latency for o in self.outcomes])

    def latency_percentile(self, p: float) -> float | None:
        """Latency percentile over completed requests; ``None`` when
        nothing completed (an empty sample has no percentiles — a
        number here would silently poison downstream aggregation)."""
        if not self.outcomes:
            return None
        return float(np.percentile(self._latencies(), p))

    @property
    def p50_latency(self) -> float | None:
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float | None:
        return self.latency_percentile(95)

    @property
    def p99_latency(self) -> float | None:
        return self.latency_percentile(99)

    @property
    def mean_queue_wait(self) -> float | None:
        if not self.outcomes:
            return None
        return float(np.mean([o.queue_wait for o in self.outcomes]))

    @property
    def max_queue_depth(self) -> int:
        return max((depth for _, depth in self.queue_depth_samples), default=0)

    @property
    def throughput_rps(self) -> float | None:
        """Completed requests per simulated second over the makespan;
        ``None`` when nothing completed or the makespan is empty."""
        if not self.outcomes or self.makespan <= 0:
            return None
        return len(self.outcomes) / self.makespan

    @property
    def failed_over_requests(self) -> int:
        """Completed requests that needed more than one dispatch attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def peak_capacity(self) -> int:
        """Most live replicas at any point (capacity timeline maximum)."""
        return max((count for _, count in self.capacity_samples), default=0)

    # ---- tenancy rollups (DESIGN.md §13) ------------------------------
    def tenants_by_class(self) -> dict[str, list[TenantStats]]:
        """Tenant rollups grouped by SLO class name."""
        grouped: dict[str, list[TenantStats]] = {}
        for stats in self.tenants.values():
            grouped.setdefault(stats.slo, []).append(stats)
        return grouped

    @property
    def starved_tenants(self) -> list[TenantStats]:
        """Tenants that submitted traffic but completed nothing — the
        set the §13 starvation-freedom guarantee requires to be empty."""
        return [
            stats
            for stats in self.tenants.values()
            if stats.submitted > 0 and stats.completed == 0
        ]

    @property
    def shed_bound_violations(self) -> list[TenantStats]:
        """Tenants whose shed rate exceeded their SLO class's bound."""
        return [
            stats
            for stats in self.tenants.values()
            if stats.submitted > 0 and not stats.within_bound
        ]


class FleetService:
    """Batched, sharded selection serving over N device replicas.

    Parameters
    ----------
    model:
        The shared reranker (weights are immutable; replicas share it).
    profiles:
        One :class:`DeviceProfile` per replica — heterogeneous fleets
        pass different profiles.  Each replica gets a fresh device.
    fleet_config:
        Admission/batching/routing knobs (:class:`FleetConfig`).
    config:
        Per-replica :class:`PrismConfig` (defaults to cost-model-only).
    fault_plan:
        Deterministic fault schedule (DESIGN.md §9) compiled onto each
        replica's device; instants are on the fleet clock, and
        ``FaultEvent.replica`` targets one replica (``None`` = all).
        ``None`` (and an empty plan) injects nothing — serving is
        byte-identical to a fleet constructed without the parameter.
    resilience:
        Health-probe/failover knobs (:class:`ResilienceConfig`); the
        defaults enable failover whenever a fault actually surfaces
        and change nothing under a fault-free plan.
    autoscaler:
        Queue-depth scaling controller (:class:`AutoscalerConfig`);
        ``None`` keeps the fleet at its constructed size.
    **service_kwargs:
        Forwarded to every replica's
        :class:`~repro.core.service.SemanticSelectionService`
        (``precision_target``, ``sample_rate``, ``step``, bounds).

    Usage: :meth:`submit` requests (optionally with explicit arrival
    times on the fleet clock), then :meth:`drain` to run the admission
    loop to completion; :meth:`idle_maintenance` between traffic waves
    runs the coordinated calibration pass.
    """

    def __init__(
        self,
        model: CrossEncoderModel,
        profiles: Sequence[DeviceProfile],
        fleet_config: FleetConfig | None = None,
        config: PrismConfig | None = None,
        fault_plan: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        autoscaler: AutoscalerConfig | None = None,
        tenancy: TenancyConfig | None = None,
        event_log=None,
        **service_kwargs,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one replica profile")
        self.fleet_config = fleet_config or FleetConfig()
        self.fault_plan = fault_plan
        self.resilience = resilience or ResilienceConfig()
        self.autoscaler = autoscaler
        #: Multi-tenant admission plane (DESIGN.md §13): token-bucket
        #: rate limits + weighted fair queuing ahead of the dispatch
        #: lanes.  ``None`` (the default) admits everything in arrival
        #: order — byte-identical to a fleet built before the plane.
        self.tenancy = tenancy
        self._admission = FairAdmission(tenancy) if tenancy is not None else None
        #: Observability sink (DESIGN.md §10), shared with every
        #: replica's device; ``None`` observes nothing and changes
        #: nothing — fleet timelines stay byte-identical.
        self.events = event_log
        self.clock = VirtualClock()
        self._routing = ROUTING_POLICIES[self.fleet_config.routing]()
        self._model = model
        self._config = config
        self._service_kwargs = dict(service_kwargs)
        #: Fleet-shared semantic cache plane (DESIGN.md §12); ``None``
        #: serves every request by a full pass.  The fleet — not the
        #: replicas — owns admission, so replica services are built
        #: without a plane of their own (no double admission).
        self.data_plane: DataPlane | None = None
        if self.fleet_config.data_plane:
            self.data_plane = DataPlane(
                self.fleet_config.data_plane_config,
                model_key=f"{model.config.name}:{model.config.model_seed}",
            )
            self.data_plane.attach_event_log(event_log, tier="fleet")
        #: Fleet-shared embedding residency (§12 layer 3); every
        #: replica's engine resolves rows against this one directory.
        self.embedding_plane: SharedEmbeddingCache | None = None
        if self.fleet_config.shared_embedding_cache:
            fraction = (
                config.embedding_cache_fraction
                if config is not None
                else PrismConfig().embedding_cache_fraction
            )
            self.embedding_plane = SharedEmbeddingCache(fraction=fraction)
        #: fp of each in-flight plane leader, by fleet request id.
        self._plane_fp: dict[int, str] = {}
        #: (shared, residue) row positions of overlap leaders.
        self._overlap_plans: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: Followers stranded by a dead leader, awaiting re-dispatch.
        self._plane_redispatch: list[FleetRequest] = []
        #: Profile the autoscaler clones for replicas added at runtime.
        self._scale_profile = profiles[0]
        self.replicas: list[ReplicaHandle] = []
        for profile in profiles:
            self._spawn_replica(profile)
        self._stride = SampleStride(self.replicas[0].service.sample_rate)
        if self.data_plane is not None:
            # Seed the plane's recorded threshold so the first real
            # consensus change (not the seed) bumps the epoch.
            self.data_plane.on_threshold(self.threshold, at=0.0)
        self._next_request_id = 0
        self._pending: list[FleetRequest] = []
        self._pending_client_ids: set[str | int] = set()
        self._dropped: list[DroppedRequest] = []
        self._outcomes: list[RequestOutcome] = []
        self._queue_depth_samples: list[tuple[float, int]] = []
        self._first_arrival: float | None = None
        self._maintenance_rounds = 0
        self._failovers = 0
        self._hedges_launched = 0
        self._hedges_won = 0
        self._scaling_events: list[ScalingEvent] = []
        self._capacity_samples: list[tuple[float, int]] = [(0.0, len(self.replicas))]
        self._last_scale_action = float("-inf")

    def _spawn_replica(
        self, profile: DeviceProfile, spawned_at: float = 0.0
    ) -> ReplicaHandle:
        """Construct one serving replica and register it with the fleet.

        Used both at construction and by the autoscaler; the replica's
        share of the fault plan is compiled onto its device with the
        fleet→local clock origin, so one fleet-time plan lands
        coherently however late the replica joins.
        """
        index = len(self.replicas)
        service = SemanticSelectionService(
            self._model,
            profile,
            config=self._config,
            max_concurrency=self.fleet_config.intra_concurrency,
            shared_weights=self.fleet_config.shared_weight_plane,
            embedding_plane=self.embedding_plane,
            event_log=self.events,
            events_replica=index,
            **self._service_kwargs,
        )
        replica = ReplicaHandle(
            index=index,
            service=service,
            origin=service.device.clock.now,
            spawned_at=spawned_at,
        )
        if self.fault_plan is not None and not self.fault_plan.empty:
            # A replica spawned at runtime never saw the fleet's past:
            # point events whose instant predates its spawn belong to
            # the replicas that were alive then and must not re-fire
            # on the replacement's first step.  Degradation windows
            # still overlapping the future keep their remainder.
            events = tuple(
                event
                for event in self.fault_plan.for_replica(index)
                if (
                    event.at + event.duration > spawned_at
                    if event.kind == FAULT_BANDWIDTH_DEGRADATION
                    else event.at >= spawned_at
                )
            )
            if events:
                service.device.install_faults(events, origin=replica.origin)
        self.replicas.append(replica)
        return replica

    @classmethod
    def homogeneous(
        cls,
        model: CrossEncoderModel,
        profile: DeviceProfile,
        num_replicas: int,
        **kwargs,
    ) -> "FleetService":
        """Convenience constructor: ``num_replicas`` identical replicas."""
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        return cls(model, [profile] * num_replicas, **kwargs)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def active_replicas(self) -> list[ReplicaHandle]:
        """Replicas not retired by the autoscaler (the live capacity)."""
        return [replica for replica in self.replicas if not replica.retired]

    def _routable(self, now: float) -> list[ReplicaHandle]:
        """Live replicas currently eligible for routing (healthy now)."""
        return [r for r in self.active_replicas if r.health.healthy(now)]

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    @property
    def dropped_requests(self) -> list[DroppedRequest]:
        """Requests shed or cancelled instead of served, in drop order.

        Times are on the fleet clock; ``client_id`` carries the
        caller's correlation id when one was supplied.
        """
        return self._dropped

    def submit(self, batch: CandidateBatch, k: int, at: float | None = None) -> int:
        """Deprecated: admit one request; returns its fleet-local id.

        Legacy shim over :meth:`submit_request` — the request-centric
        path is a :class:`~repro.core.api.SelectionRequest` submitted
        through :class:`~repro.core.api.FleetServer` (DESIGN.md §8,
        ``docs/api.md``).  ``at`` is the arrival instant on the fleet
        clock (defaults to *now*).
        """
        warnings.warn(
            "FleetService.submit() is deprecated; submit a SelectionRequest "
            "through repro.core.api.FleetServer (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit_request(batch, k, at=at)

    def submit_request(
        self,
        batch: CandidateBatch,
        k: int,
        *,
        at: float | None = None,
        priority: int = LANE_BATCH,
        deadline: float | None = None,
        cancel_at: float | None = None,
        client_id: str | int | None = None,
        sample: bool | None = None,
        hedge_after_ms: float | None = None,
        memoize: bool = True,
        tenant: str | None = None,
    ) -> int:
        """Admit one request with full intent; returns its fleet id.

        ``at``, ``deadline`` and ``cancel_at`` are absolute instants on
        the fleet clock (``at=None`` means *now*); arrivals may be
        submitted out of order and are replayed in arrival order by
        :meth:`drain`.  ``client_id`` is echoed on the outcome — a
        duplicate among the in-flight (submitted, not yet drained)
        requests raises ``ValueError`` instead of silently colliding in
        outcome correlation.  ``sample`` overrides the fleet-wide
        sampling stride, and ``hedge_after_ms`` arms a straggler hedge
        (DESIGN.md §9).  ``tenant`` names the submitting tenant for
        the §13 admission plane (token buckets + fair queuing); it is
        carried end-to-end into the outcome and the event log.
        """
        arrival = self.clock.now if at is None else float(at)
        if arrival < self.clock.now:
            raise ValueError(
                f"arrival {arrival!r} lies before fleet time {self.clock.now!r}"
            )
        if k <= 0:
            raise ValueError("k must be positive")
        if priority < 0:
            raise ValueError("priority must be non-negative")
        if deadline is not None and deadline <= arrival:
            raise ValueError("deadline must lie after the request's arrival")
        if hedge_after_ms is not None and hedge_after_ms <= 0:
            raise ValueError("hedge_after_ms must be positive")
        if client_id is not None:
            if client_id in self._pending_client_ids:
                raise ValueError(
                    f"duplicate in-flight request id {client_id!r}: already "
                    "submitted and not yet drained"
                )
            self._pending_client_ids.add(client_id)
        request = FleetRequest(
            request_id=self._next_request_id,
            batch=batch,
            k=k,
            arrival=arrival,
            priority=priority,
            deadline=deadline,
            cancel_at=cancel_at,
            client_id=client_id,
            sample=sample,
            hedge_after_ms=hedge_after_ms,
            memoize=memoize,
            tenant=tenant,
        )
        self._next_request_id += 1
        self._pending.append(request)
        if self._first_arrival is None or arrival < self._first_arrival:
            self._first_arrival = arrival
        self._emit(
            "admit",
            at=self.clock.now,
            request=request,
            arrival=arrival,
            k=k,
            priority=priority,
            deadline=deadline,
            cancel_at=cancel_at,
            hedge_after_ms=hedge_after_ms,
        )
        return request.request_id

    def _emit(self, kind: str, at: float, request=None, replica: int | None = None, **data):
        """Publish a fleet-tier event (DESIGN.md §10); no-op without a sink."""
        if self.events is not None:
            label = None
            tenant = None
            if request is not None:
                label = request.client_id if request.client_id is not None else request.request_id
                tenant = request.tenant
            self.events.emit(
                kind, at=at, tier="fleet", request=label, replica=replica, tenant=tenant, **data
            )

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def drain(self) -> list[RequestOutcome]:
        """Run the admission loop until every submitted request completes.

        Returns the outcomes of the requests admitted since the last
        drain, in completion order.  The fleet clock ends at the last
        completion, so a subsequent traffic wave starts afterwards.

        Batching semantics: a batch flushes as soon as ``max_batch``
        requests are queued, or when the oldest queued request has
        waited ``max_wait_ms``.  Once the arrival stream is exhausted a
        partial batch flushes immediately — with no future arrival the
        wait could only add latency, never depth.

        Resilience semantics (DESIGN.md §9): before each flush the
        autoscaler may adjust capacity, routing only considers healthy
        live replicas (waiting out the shortest cooldown if none is),
        and requests whose dispatch died on a
        :class:`~repro.device.faults.DeviceFault` re-enter the queue
        for failover until their retries are exhausted.
        """
        pending = sorted(self._pending, key=lambda r: (r.arrival, r.request_id))
        self._pending.clear()
        self._pending_client_ids.clear()
        max_batch = self.fleet_config.max_batch
        max_wait = self.fleet_config.max_wait_ms * 1e-3
        queue: list[FleetRequest] = []
        completed: list[RequestOutcome] = []
        now = self.clock.now
        i = 0
        while i < len(pending) or queue or self._plane_redispatch:
            while i < len(pending) and pending[i].arrival <= now:
                request = pending[i]
                i += 1
                if self.data_plane is not None:
                    # Plane admission first (DESIGN.md §12): a memo hit
                    # or coalesced follower never enters the dispatch
                    # queue, never occupies a replica — and costs the
                    # fleet nothing, so it consumes no tenant token.
                    routed = self._plane_route(request, now)
                    if routed is not None:
                        if isinstance(routed, RequestOutcome):
                            completed.append(routed)
                        continue
                if self._admission is not None:
                    # Tenancy admission (DESIGN.md §13): the bucket is
                    # refilled to the request's *arrival* instant, so
                    # the verdict depends only on the arrival stream,
                    # never on dispatch batching order.
                    verdict = self._admission.admit(
                        request.tenant, request.request_id, request.arrival
                    )
                    if verdict is not None:
                        # ``debt=`` feeds the live token-debt gauge
                        # (DESIGN.md §14); tenancy sheds appear in no
                        # golden fixture, so the field is additive.
                        self._drop(
                            request,
                            "shed",
                            now,
                            detail=verdict,
                            debt=self._admission.state(request.tenant).bucket.debt,
                        )
                        continue
                queue.append(request)
                self._emit("queue", at=now, request=request, depth=len(queue))
                self._queue_depth_samples.append((now, len(queue)))
            if self._plane_redispatch:
                # Followers stranded by a dead leader re-enter here:
                # the first becomes the new leader, siblings re-coalesce.
                stranded, self._plane_redispatch = self._plane_redispatch, []
                for follower in stranded:
                    follower = replace(
                        follower, not_before=max(follower.not_before, now)
                    )
                    routed = self._plane_route(follower, now)
                    if routed is not None:
                        if isinstance(routed, RequestOutcome):
                            completed.append(routed)
                        continue
                    if self._admission is not None:
                        # Already charged at first admission: a
                        # re-dispatched follower keeps its token.
                        self._admission.note_queued(
                            follower.tenant, follower.request_id
                        )
                    queue.append(follower)
                    self._emit("queue", at=now, request=follower, depth=len(queue))
                    self._queue_depth_samples.append((now, len(queue)))
            self._autoscale(now, len(queue))
            if not queue:
                if i >= len(pending):
                    continue  # the plane absorbed the stragglers
                now = max(now, pending[i].arrival)
                # Traffic gap: give the controller one look at the
                # idle fleet before the next arrival is admitted, so
                # over-provisioned capacity retires between waves.
                self._autoscale(now, 0)
                continue
            pool = self._routable(now)
            if not pool:
                # Every live replica is cooling down: the queue holds
                # until the shortest cooldown expires.
                now = max(
                    now,
                    min(r.health.unhealthy_until for r in self.active_replicas),
                )
                continue
            if len(queue) < max_batch:
                deadline = (
                    queue[0].arrival
                    if self._admission is None
                    else min(request.arrival for request in queue)
                ) + max_wait
                more = i < len(pending)
                if more and pending[i].arrival <= deadline:
                    # The batch can still grow before its deadline.
                    now = max(now, pending[i].arrival)
                    continue
                if more and now < deadline:
                    now = deadline
            if self._admission is not None:
                # Weighted fair order (DESIGN.md §13): smallest SFQ
                # start tags flush first; ties keep admission order.
                queue.sort(key=self._admission.order_key)
            flush, queue = queue[:max_batch], queue[max_batch:]
            if self._admission is not None:
                self._admission.on_flush(flush)
            outcomes, retries = self._dispatch(flush, now, pool)
            completed.extend(outcomes)
            if self.data_plane is not None and retries:
                # A failover retry whose pending entry was invalidated
                # re-enters through the plane: it may memo-hit a result
                # completed meanwhile, or coalesce onto a new leader.
                # A retry that is still the live leader of its own
                # pending entry must keep running (coalescing onto
                # itself would strand it and its followers forever).
                survivors = []
                for retry in retries:
                    if retry.request_id not in self._plane_fp:
                        routed = self._plane_route(retry, retry.not_before)
                        if routed is not None:
                            if isinstance(routed, RequestOutcome):
                                completed.append(routed)
                            continue
                    survivors.append(retry)
                retries = survivors
            if self._admission is not None:
                # A failover retry keeps its original token and tag.
                for retry in retries:
                    self._admission.note_queued(retry.tenant, retry.request_id)
            queue.extend(retries)
            for retry in retries:
                self._emit(
                    "queue",
                    at=retry.not_before,
                    request=retry,
                    depth=len(queue),
                    attempts=retry.attempts,
                )
            self._queue_depth_samples.append((now, len(queue)))
        completed.sort(key=lambda o: (o.finish, o.request_id))
        self._outcomes.extend(completed)
        horizon = max([now] + [r.busy_until for r in self.active_replicas])
        self.clock.advance_to(horizon)
        return completed

    def _dispatch(
        self, requests: list[FleetRequest], now: float, pool: list[ReplicaHandle]
    ) -> tuple[list[RequestOutcome], list[FleetRequest]]:
        """Hand one batch to a replica; returns (outcomes, failover retries).

        With ``intra_concurrency == 1`` the batch executes serially,
        request by request.  Above 1, the whole batch enters the
        replica's :class:`~repro.core.scheduler.DeviceScheduler` and
        its requests multiplex at layer boundaries (DESIGN.md §6);
        selections stay byte-identical either way, only completion
        times move.

        A :class:`~repro.device.faults.DeviceFault` during the batch
        (DESIGN.md §9) marks the replica's health and turns the failed
        request — plus, serially, the rest of the batch behind it —
        into retries the drain loop requeues onto healthy replicas.
        """
        cfg = self.fleet_config
        replica = self._routing.choose(pool, now, len(requests))
        # A batch carrying failover retries cannot start before the
        # fault that spawned them — time does not rewind because the
        # chosen replica happens to be idle.
        start = max(now, replica.busy_until, *(r.not_before for r in requests))
        for request in requests:
            self._emit(
                "dispatch",
                at=start,
                request=request,
                replica=replica.index,
                batch_size=len(requests),
                attempts=request.attempts,
            )
        replica.sync_to(start)
        clock = replica.service.device.clock
        clock.advance(cfg.dispatch_overhead_ms * 1e-3)
        outcomes: list[RequestOutcome] = []
        retries: list[FleetRequest] = []
        if cfg.intra_concurrency > 1:
            outcomes, retries = self._dispatch_concurrent(requests, replica, start)
        else:
            for index, request in enumerate(requests):
                local_now = replica.local_now
                if self._drop_due(request, local_now):
                    continue
                plan = self._overlap_plans.pop(request.request_id, None)
                try:
                    if plan is not None:
                        # Partial-overlap leader (DESIGN.md §12): the
                        # replica executes only the residue rows; the
                        # exact full-batch selection is recovered by a
                        # zero-cost shadow replay.
                        result = self._serve_overlap(replica, request, plan)
                    else:
                        result = replica.service._serve_solo(
                            request.batch,
                            request.k,
                            sample=self._request_sample(request),
                            cancel_at=(
                                request.cancel_at + replica.origin
                                if request.cancel_at is not None
                                else None
                            ),
                        )
                except DeviceFault as fault:
                    at = replica.local_now
                    self._record_failure(replica, at)
                    # The faulted leader must never poison the memo:
                    # its pending entry dies with it, and its followers
                    # re-dispatch (DESIGN.md §12).
                    self._plane_invalidate(requests[index], at, fault.kind)
                    # The faulted request and everything still queued
                    # behind it on this replica fail over together.
                    retries.extend(
                        self._requeue(requests[index:], replica, at, fault)
                    )
                    break
                if result is None:  # cancelled mid-pass on the replica
                    self._drop(request, "cancelled", replica.local_now)
                    continue
                finish = replica.local_now
                outcome = RequestOutcome(
                    request_id=request.request_id,
                    replica=replica.index,
                    arrival=request.arrival,
                    start=start,
                    finish=finish,
                    result=result,
                    client_id=request.client_id,
                    lane=request.priority,
                    deadline=request.deadline,
                    service_start=local_now,
                    service_seconds=finish - local_now,
                    attempts=request.attempts,
                    failed_over_from=request.failed_over_from,
                    tenant=request.tenant,
                )
                outcomes.append(outcome)
                self._update_ewma(replica, len(outcomes), result.latency_seconds)
                # The health probe uses the replica-observed service
                # span (finish − service start): it includes injected
                # stalls, which the engine's own latency accounting —
                # started inside the first step — does not see.
                self._record_success(
                    replica, finish - local_now, result.layers_executed + 1
                )
                if plan is None:
                    # An overlap leader already served a reduced pass;
                    # racing a full-pass duplicate would undo the win.
                    self._maybe_hedge(request, outcome, replica, pool)
                # After hedging: a winning duplicate already rewrote the
                # outcome, so the event carries the final provenance.
                self._emit(
                    "complete",
                    at=outcome.finish,
                    request=request,
                    replica=outcome.replica,
                    latency=outcome.latency,
                    attempts=outcome.attempts,
                    hedged=outcome.hedged,
                )
                # Memoize after hedging so the memo holds the final
                # result; followers resolve against it (DESIGN.md §12).
                outcomes.extend(self._plane_complete(request, outcome, replica))
        replica.busy_until = replica.local_now
        replica.busy_seconds += replica.busy_until - start
        # Hedge-won outcomes already counted for the winning backup.
        replica.requests_served += sum(
            1 for outcome in outcomes if outcome.replica == replica.index
        )
        replica.batches_served += 1
        self._check_latency_health(replica, replica.busy_until)
        return outcomes, retries

    def _dispatch_concurrent(
        self, requests: list[FleetRequest], replica: ReplicaHandle, start: float
    ) -> tuple[list[RequestOutcome], list[FleetRequest]]:
        """Serve one dispatched batch through the replica's scheduler.

        Fleet-clock intent (deadlines, cancellations) is rebased onto
        the replica's wave origin as relative offsets; requests whose
        deadline already passed are shed here, before the wave, so the
        scheduler never sees an expired deadline.  Requests the
        scheduler failed on a device fault (DESIGN.md §9) come back as
        failover retries rather than drops.
        """
        from .api import SelectionRequest

        cfg = self.fleet_config
        origin_fleet = replica.local_now  # wave origin on the fleet axis
        wave_inputs: list[tuple[FleetRequest, SelectionRequest, float | None]] = []
        outcomes: list[RequestOutcome] = []
        plans: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for request in requests:
            if self._drop_due(request, origin_fleet):
                continue
            plan = self._overlap_plans.pop(request.request_id, None)
            if plan is not None and plan[1].size == 0:
                # Every candidate row is cached: no residue to execute.
                # The exact selection comes from the zero-cost shadow
                # replay; the replica is never occupied (DESIGN.md §12).
                outcome = self._complete_overlap_instant(
                    request, replica, plan, origin_fleet
                )
                outcomes.append(outcome)
                outcomes.extend(self._plane_complete(request, outcome, replica))
                continue
            if plan is not None:
                plans[request.request_id] = plan
            cancel = (
                request.cancel_at - origin_fleet if request.cancel_at is not None else None
            )
            shared, residue = plan if plan is not None else (None, None)
            wave_inputs.append(
                (
                    request,
                    SelectionRequest(
                        batch=(
                            request.batch.select(residue)
                            if residue is not None
                            else request.batch
                        ),
                        k=(
                            min(request.k, int(residue.size))
                            if residue is not None
                            else request.k
                        ),
                        request_id=request.request_id,
                        priority=request.priority,
                        deadline=(
                            request.deadline - origin_fleet
                            if request.deadline is not None
                            else None
                        ),
                        # Overlap leaders serve a residue sub-batch —
                        # not the request the calibration log expects —
                        # so they never feed the idle-check samples.
                        sample=(
                            False
                            if residue is not None
                            else self._request_sample(request)
                        ),
                    ),
                    max(0.0, cancel) if cancel is not None else None,
                )
            )
        if not wave_inputs:
            return outcomes, []
        wave = replica.service.serve_requests(
            [selection for _, selection, _ in wave_inputs],
            policy=cfg.intra_policy,
            max_skew=cfg.max_skew,
            cancels=[cancel for _, _, cancel in wave_inputs],
        )
        by_scheduler_id = {
            scheduler_id: request
            for scheduler_id, (request, _, _) in zip(wave.request_ids, wave_inputs)
        }
        for scheduled_outcome in wave.outcomes:
            request = by_scheduler_id[scheduled_outcome.request_id]
            plan = plans.get(request.request_id)
            if plan is not None:
                # The scheduler served only the residue rows; recover
                # the exact full-batch selection by shadow replay and
                # credit the skipped rows to the plane (DESIGN.md §12).
                result = self._finish_overlap(
                    replica,
                    request,
                    plan,
                    residue_result=scheduled_outcome.result,
                    residue_seconds=scheduled_outcome.service_seconds,
                )
            else:
                result = scheduled_outcome.result
            self._emit(
                "complete",
                at=scheduled_outcome.finish - replica.origin,
                request=request,
                replica=replica.index,
                latency=(scheduled_outcome.finish - replica.origin) - request.arrival,
                attempts=request.attempts,
                hedged=False,
            )
            outcome = RequestOutcome(
                request_id=request.request_id,
                replica=replica.index,
                arrival=request.arrival,
                start=start,
                finish=scheduled_outcome.finish - replica.origin,
                result=result,
                client_id=request.client_id,
                lane=request.priority,
                deadline=request.deadline,
                service_start=scheduled_outcome.start - replica.origin,
                service_seconds=scheduled_outcome.service_seconds,
                attempts=request.attempts,
                failed_over_from=request.failed_over_from,
                tenant=request.tenant,
            )
            outcomes.append(outcome)
            # Under multiplexing, result.latency_seconds spans other
            # requests' interleaved steps; the scheduler's service
            # time is the true per-request cost EWMA must learn.
            self._update_ewma(replica, len(outcomes), scheduled_outcome.service_seconds)
            self._record_success(
                replica,
                scheduled_outcome.service_seconds,
                scheduled_outcome.result.layers_executed + 1,
            )
            outcomes.extend(self._plane_complete(request, outcome, replica))
        retries: list[FleetRequest] = []
        failed: list[tuple[FleetRequest, float, str]] = []
        for drop in wave.dropped:
            request = by_scheduler_id[drop.request_id]
            at = drop.at - replica.origin
            if drop.reason == "failed":
                self._plane_invalidate(request, at, drop.detail or "device_fault")
                failed.append((request, at, drop.detail))
            else:
                self._drop(request, drop.reason, at)
        if failed:
            # One health strike per faulted dispatch, not per victim —
            # a crash that kills an 8-deep wave is still one fault.
            first_at = min(at for _, at, _ in failed)
            self._record_failure(replica, first_at)
            fault = DeviceFault(failed[0][2] or "device_fault", at=first_at)
            retries = self._requeue(
                [request for request, _, _ in failed],
                replica,
                max(at for _, at, _ in failed),
                fault,
            )
        return outcomes, retries

    def _request_sample(self, request: FleetRequest) -> bool:
        return request.sample if request.sample is not None else self._admit_sample()

    def _drop_due(self, request: FleetRequest, fleet_now: float) -> bool:
        """Drop a request whose cancel/deadline is already due; True if dropped."""
        if request.cancel_at is not None and request.cancel_at <= fleet_now:
            self._drop(request, "cancelled", fleet_now)
            return True
        if request.deadline is not None and fleet_now >= request.deadline:
            # Shed: the request can no longer start in time, so it
            # never reaches the replica's engine (DESIGN.md §8).
            self._drop(request, "shed", fleet_now)
            return True
        return False

    def _drop(
        self,
        request: FleetRequest,
        reason: str,
        at: float,
        detail: str = "",
        failed_on: int | None = None,
        **data,
    ) -> None:
        self._dropped.append(
            DroppedRequest(
                request_id=request.request_id,
                priority=request.priority,
                arrival=request.arrival,
                at=at,
                reason=reason,
                deadline=request.deadline,
                client_id=request.client_id,
                detail=detail,
                attempts=request.attempts,
                failed_over_from=(
                    request.failed_over_from + (failed_on,)
                    if failed_on is not None
                    else request.failed_over_from
                ),
                tenant=request.tenant,
            )
        )
        kind = {"shed": "shed", "cancelled": "cancel", "failed": "fail"}[reason]
        self._emit(
            kind,
            at=at,
            request=request,
            replica=failed_on,
            detail=detail,
            attempts=request.attempts,
            **data,
        )
        # A dropped plane leader must never poison the memo: its
        # pending entry dies and its followers re-dispatch (§12).
        self._plane_invalidate(request, at, reason)

    # ------------------------------------------------------------------
    # data plane (DESIGN.md §12)
    # ------------------------------------------------------------------
    @staticmethod
    def _plane_label(request: FleetRequest) -> str | int:
        return request.client_id if request.client_id is not None else request.request_id

    def _full_weight_bytes(self, replica: ReplicaHandle, result: RerankResult) -> int:
        """SSD weight traffic a pass of this result's depth swept."""
        store = replica.service.engine.store
        return sum(
            store.layer_nbytes(layer) for layer in range(result.layers_executed)
        )

    def _plane_route(
        self, request: FleetRequest, at: float
    ) -> RequestOutcome | str | None:
        """Route one due request through the plane (DESIGN.md §12).

        Returns a completed :class:`RequestOutcome` for a memo hit,
        ``"coalesced"`` for a follower attached to an in-flight leader
        (its outcome materialises when the leader completes), or
        ``None`` when the request must dispatch — as a plane leader
        (its fingerprint is registered) or as a plain request
        (``memoize=False`` opt-out, or a cancel/deadline already due,
        which the ordinary drop path must account for).
        """
        plane = self.data_plane
        if plane is None or not request.memoize:
            return None
        if request.cancel_at is not None and request.cancel_at <= at:
            return None
        if request.deadline is not None and request.deadline <= at:
            return None
        fp = plane.fingerprint(
            request.batch,
            request.k,
            threshold=self.threshold,
            sample_rate=self._stride.rate,
        )
        decision = plane.admit(
            fp,
            request.batch,
            payload=request,
            at=at,
            request=self._plane_label(request),
        )
        if decision.kind == "coalesced":
            return "coalesced"
        if decision.kind == "leader":
            self._plane_fp[request.request_id] = fp
            if decision.shared is not None and decision.residue is not None:
                self._overlap_plans[request.request_id] = (
                    decision.shared,
                    decision.residue,
                )
            return None
        outcome = RequestOutcome(
            request_id=request.request_id,
            replica=None,
            arrival=request.arrival,
            start=at,
            finish=at,
            result=decision.result,
            client_id=request.client_id,
            lane=request.priority,
            deadline=request.deadline,
            service_start=at,
            service_seconds=0.0,
            attempts=request.attempts,
            failed_over_from=request.failed_over_from,
            cache="hit",
            tenant=request.tenant,
        )
        self._emit(
            "complete",
            at=at,
            request=request,
            replica=None,
            latency=at - request.arrival,
            attempts=request.attempts,
            hedged=False,
            cache="hit",
        )
        return outcome

    def _plane_complete(
        self, request: FleetRequest, outcome: RequestOutcome, replica: ReplicaHandle
    ) -> list[RequestOutcome]:
        """A plane leader finished: memoize and resolve its followers."""
        if self.data_plane is None:
            return []
        fp = self._plane_fp.pop(request.request_id, None)
        if fp is None:
            return []
        result = outcome.result
        followers = self.data_plane.complete(
            fp,
            request.batch,
            result,
            service_seconds=(
                outcome.service_seconds if outcome.service_seconds is not None else 0.0
            ),
            weight_bytes=self._full_weight_bytes(replica, result),
            at=outcome.finish,
            request=self._plane_label(request),
        )
        resolved: list[RequestOutcome] = []
        for follower, attached_at in followers:
            finish = max(outcome.finish, attached_at)
            if follower.cancel_at is not None and follower.cancel_at < finish:
                # The follower's cancel fired while it waited on the
                # leader: it drops, never having occupied a replica.
                self._drop(follower, "cancelled", follower.cancel_at)
                continue
            resolved.append(
                RequestOutcome(
                    request_id=follower.request_id,
                    replica=outcome.replica,
                    arrival=follower.arrival,
                    start=attached_at,
                    finish=finish,
                    result=clone_result(result),
                    client_id=follower.client_id,
                    lane=follower.priority,
                    deadline=follower.deadline,
                    service_start=finish,
                    service_seconds=0.0,
                    attempts=follower.attempts,
                    failed_over_from=follower.failed_over_from,
                    cache="coalesced",
                    tenant=follower.tenant,
                )
            )
            self._emit(
                "complete",
                at=finish,
                request=follower,
                replica=outcome.replica,
                latency=finish - follower.arrival,
                attempts=follower.attempts,
                hedged=False,
                cache="coalesced",
            )
        return resolved

    def _plane_invalidate(self, request: FleetRequest, at: float, reason: str) -> None:
        """A plane leader died: drop its pending entry; its followers
        join the re-dispatch buffer the drain loop absorbs."""
        if self.data_plane is None:
            return
        self._overlap_plans.pop(request.request_id, None)
        fp = self._plane_fp.pop(request.request_id, None)
        if fp is None:
            return
        followers = self.data_plane.invalidate(
            fp, at=at, reason=reason, request=self._plane_label(request)
        )
        self._plane_redispatch.extend(payload for payload, _ in followers)

    def _serve_overlap(
        self,
        replica: ReplicaHandle,
        request: FleetRequest,
        plan: tuple[np.ndarray, np.ndarray],
    ) -> RerankResult | None:
        """Serial overlap leader: residue pass + exact shadow replay.

        The replica's clock advances only for the residue rows — the
        shared rows' scores are already determined (ScoreDynamics keys
        them on (model_seed, uid, relevance, layer), independent of
        batch composition), so the full-batch replay on a shadow
        engine is zero-cost and byte-identical to a full serving pass.
        """
        shared, residue = plan
        service = replica.service
        if residue.size:
            before = service.device.clock.now
            partial = service._serve_solo(
                request.batch.select(residue),
                min(request.k, int(residue.size)),
                sample=False,
                cancel_at=(
                    request.cancel_at + replica.origin
                    if request.cancel_at is not None
                    else None
                ),
            )
            if partial is None:  # cancelled mid-residue
                return None
            residue_seconds = service.device.clock.now - before
            residue_bytes = service._weight_bytes(partial)
        else:
            residue_seconds = 0.0
            residue_bytes = 0
        return self._replay_overlap(
            service, request, shared, residue, residue_seconds, residue_bytes
        )

    def _finish_overlap(
        self,
        replica: ReplicaHandle,
        request: FleetRequest,
        plan: tuple[np.ndarray, np.ndarray],
        *,
        residue_result: RerankResult,
        residue_seconds: float,
    ) -> RerankResult:
        """Concurrent overlap leader: swap the residue result for the
        exact full-batch replay after its wave completed."""
        shared, residue = plan
        service = replica.service
        return self._replay_overlap(
            service,
            request,
            shared,
            residue,
            residue_seconds,
            service._weight_bytes(residue_result),
        )

    def _replay_overlap(
        self,
        service: SemanticSelectionService,
        request: FleetRequest,
        shared: np.ndarray,
        residue: np.ndarray,
        residue_seconds: float,
        residue_bytes: int,
    ) -> RerankResult:
        result = service.replay_selection(request.batch, request.k)
        if residue.size:
            saved_seconds = residue_seconds * (float(shared.size) / float(residue.size))
        else:
            saved_seconds = result.latency_seconds
        full_bytes = service._weight_bytes(result)
        assert self.data_plane is not None
        self.data_plane.note_saved(saved_seconds, max(0, full_bytes - residue_bytes))
        return result

    def _complete_overlap_instant(
        self,
        request: FleetRequest,
        replica: ReplicaHandle,
        plan: tuple[np.ndarray, np.ndarray],
        at: float,
    ) -> RequestOutcome:
        """An all-shared overlap leader: pure replay, zero service time."""
        shared, residue = plan
        result = self._replay_overlap(
            replica.service, request, shared, residue, 0.0, 0
        )
        self._emit(
            "complete",
            at=at,
            request=request,
            replica=replica.index,
            latency=at - request.arrival,
            attempts=request.attempts,
            hedged=False,
        )
        return RequestOutcome(
            request_id=request.request_id,
            replica=replica.index,
            arrival=request.arrival,
            start=at,
            finish=at,
            result=result,
            client_id=request.client_id,
            lane=request.priority,
            deadline=request.deadline,
            service_start=at,
            service_seconds=0.0,
            attempts=request.attempts,
            failed_over_from=request.failed_over_from,
            tenant=request.tenant,
        )

    # ------------------------------------------------------------------
    # resilience plane (DESIGN.md §9)
    # ------------------------------------------------------------------
    def _requeue(
        self,
        requests: list[FleetRequest],
        replica: ReplicaHandle,
        at: float,
        fault: DeviceFault,
    ) -> list[FleetRequest]:
        """Turn a faulted dispatch's victims into failover retries.

        Each victim re-enters the admission queue with ``attempts``
        bumped and the failing replica recorded in
        ``failed_over_from``; a victim that already consumed
        ``max_retries`` re-dispatches is dropped with reason
        ``"failed"`` instead — bounded failover, never a loop.
        """
        retries = []
        for request in requests:
            if request.attempts > self.resilience.max_retries:
                self._drop(
                    request, "failed", at, detail=fault.kind, failed_on=replica.index
                )
                continue
            self._failovers += 1
            self._emit(
                "failover",
                at=at,
                request=request,
                replica=replica.index,
                fault=fault.kind,
                attempts=request.attempts + 1,
            )
            retries.append(
                replace(
                    request,
                    attempts=request.attempts + 1,
                    failed_over_from=request.failed_over_from + (replica.index,),
                    not_before=at,
                )
            )
        return retries

    def _record_failure(self, replica: ReplicaHandle, at: float) -> None:
        """One health strike against a replica at fleet instant ``at``."""
        replica.health.record_failure(at, self.resilience)

    def _record_success(
        self, replica: ReplicaHandle, service_seconds: float, steps: int
    ) -> None:
        """Fold one completed request into the replica's health EWMA."""
        replica.health.record_success(
            service_seconds / max(1, steps), self.resilience.health_alpha
        )

    def _check_latency_health(self, replica: ReplicaHandle, now: float) -> None:
        """Slow-replica probe: EWMA step latency vs the fleet median.

        Catches degradation that never raises a fault — a stalled or
        bandwidth-starved replica keeps completing requests, just ever
        more slowly; once its EWMA exceeds ``factor ×`` the median of
        its peers it is cooled down like a failed one.
        """
        factor = self.resilience.latency_degradation_factor
        if factor is None or replica.health.samples == 0:
            return
        peers = [
            r.health.ewma_step_latency
            for r in self.active_replicas
            if r is not replica and r.health.samples > 0
        ]
        if not peers:
            return
        if replica.health.ewma_step_latency > factor * float(np.median(peers)):
            replica.health.mark_unhealthy(now, self.resilience.cooldown_s)

    def _maybe_hedge(
        self,
        request: FleetRequest,
        outcome: RequestOutcome,
        primary: ReplicaHandle,
        pool: list[ReplicaHandle],
    ) -> None:
        """Straggler hedging (DESIGN.md §9), serial dispatch path.

        If the primary copy had not completed ``hedge_after_ms`` after
        the request's arrival, a duplicate is launched on the least
        loaded *other* healthy replica at exactly that instant, racing
        the primary with a cancellation scheduled at the primary's
        finish.  First result wins: a faster duplicate replaces the
        outcome's payload (provenance flips to the winning replica);
        a slower one is cancelled mid-pass at its next layer boundary
        through the ordinary cancel path, releasing its resources.

        Determinism note: the primary's copy always runs to completion
        on its replica — the simulator commits one replica's timeline
        at a time — so a lost primary charges its full service time
        (an upper bound on the real system, which would cancel it at
        the duplicate's finish).
        """
        if request.hedge_after_ms is None or request.attempts > 1:
            # A failover retry is already running on its second
            # replica; racing a third would let the duplicate start
            # before the fault that spawned the retry.
            return
        fire_at = request.arrival + request.hedge_after_ms * 1e-3
        if outcome.finish <= fire_at:
            return  # the primary beat the hedge trigger
        backups = [r for r in pool if r is not primary and r.health.healthy(fire_at)]
        if not backups:
            return
        backup = min(
            backups, key=lambda r: (r.backlog(fire_at), r.requests_served, r.index)
        )
        self._hedges_launched += 1
        start = max(fire_at, backup.busy_until)
        backup.sync_to(start)
        backup.service.device.clock.advance(
            self.fleet_config.dispatch_overhead_ms * 1e-3
        )
        service_start = backup.local_now
        try:
            result = backup.service._serve_solo(
                request.batch,
                request.k,
                sample=False,  # the primary copy already fed the stride
                cancel_at=outcome.finish + backup.origin,
            )
        except DeviceFault:
            self._record_failure(backup, backup.local_now)
            result = None
        finish = backup.local_now
        backup.busy_seconds += finish - start
        backup.busy_until = finish
        outcome.hedged = True
        won = result is not None and finish < outcome.finish
        self._emit(
            "hedge",
            at=start,
            request=request,
            replica=backup.index,
            fire_at=fire_at,
            primary=primary.index,
            won=won,
        )
        if result is not None and finish < outcome.finish:
            self._hedges_won += 1
            backup.requests_served += 1
            outcome.replica = backup.index
            outcome.finish = finish
            outcome.result = result
            outcome.service_start = service_start
            outcome.service_seconds = finish - service_start

    def _autoscale(self, now: float, queue_depth: int) -> None:
        """One controller decision between dispatches (DESIGN.md §9).

        Scale up when the queue holds more than
        ``scale_up_queue_depth`` requests per routable replica (the
        new replica pays ``warmup_s`` on the clock before its first
        dispatch); retire the longest-idle replica when the queue is
        empty and it has idled past ``scale_down_idle_s``.  Actions
        are rate-limited by ``action_cooldown_s`` and recorded as
        :class:`~repro.core.resilience.ScalingEvent`\\ s.
        """
        cfg = self.autoscaler
        if cfg is None:
            return
        if now - self._last_scale_action < cfg.action_cooldown_s:
            return
        active = self.active_replicas
        routable_replicas = self._routable(now)
        routable = len(routable_replicas) or 1
        # Pressure = admission queue + the replicas' outstanding
        # backlog expressed in requests (backlog seconds over the
        # per-request latency estimate).  Eager dispatch moves queued
        # requests into replica backlog immediately, so the raw queue
        # alone would hide a drowning fleet from the controller.
        pressure = float(queue_depth)
        for replica in routable_replicas:
            if replica.ewma_latency > 0:
                pressure += replica.backlog(now) / replica.ewma_latency
        if (
            pressure > cfg.scale_up_queue_depth * routable
            and len(active) < cfg.max_replicas
        ):
            replica = self._spawn_replica(self._scale_profile, spawned_at=now)
            replica.busy_until = now + cfg.warmup_s
            self._scaling_events.append(
                ScalingEvent(
                    at=now,
                    action="scale_up",
                    replica=replica.index,
                    num_active=len(self.active_replicas),
                    reason="queue_depth",
                )
            )
            self._emit(
                "scale",
                at=now,
                replica=replica.index,
                action="scale_up",
                num_active=len(self.active_replicas),
                reason="queue_depth",
            )
            self._capacity_samples.append((now, len(self.active_replicas)))
            self._last_scale_action = now
            return
        if queue_depth == 0 and len(active) > cfg.min_replicas:
            idle = [
                r for r in active if now - max(r.busy_until, r.spawned_at)
                >= cfg.scale_down_idle_s
            ]
            if idle:
                victim = max(
                    idle,
                    key=lambda r: (now - max(r.busy_until, r.spawned_at), r.index),
                )
                victim.retired = True
                self._scaling_events.append(
                    ScalingEvent(
                        at=now,
                        action="scale_down",
                        replica=victim.index,
                        num_active=len(self.active_replicas),
                        reason="idle",
                    )
                )
                self._emit(
                    "scale",
                    at=now,
                    replica=victim.index,
                    action="scale_down",
                    num_active=len(self.active_replicas),
                    reason="idle",
                )
                self._capacity_samples.append((now, len(self.active_replicas)))
                self._last_scale_action = now

    def _update_ewma(
        self, replica: ReplicaHandle, dispatched_so_far: int, latency_seconds: float
    ) -> None:
        if replica.requests_served + dispatched_so_far == 1:
            replica.ewma_latency = latency_seconds
        else:
            replica.ewma_latency += self.fleet_config.ewma_alpha * (
                latency_seconds - replica.ewma_latency
            )

    def _admit_sample(self) -> bool:
        """Fleet-wide deterministic sampling stride.

        The fleet, not the replica, decides which requests enter the
        idle-check log: a per-replica stride would sample unevenly
        whenever routing skews traffic (e.g. EWMA on a heterogeneous
        fleet), biasing each replica's measured precision.
        """
        return self._stride.admit()

    # ------------------------------------------------------------------
    # coordinated maintenance
    # ------------------------------------------------------------------
    def idle_maintenance(self) -> FleetMaintenanceReport | None:
        """One fleet-wide calibration round; None when nothing sampled.

        Each replica first applies its own §4.1 step from its sampled
        requests (on shadow devices — serving clocks untouched), then
        the fleet propagates the *median* of the resulting thresholds
        to every replica.  The median is robust to a minority of
        replicas whose sample streams were unlucky, and keeps the fleet
        serving one consistent operating point.
        """
        replicas = self.active_replicas
        replica_reports = [r.service.idle_maintenance() for r in replicas]
        if all(report is None for report in replica_reports):
            return None
        thresholds = [r.service.threshold for r in replicas]
        consensus = float(np.median(thresholds))
        for replica in replicas:
            replica.service.apply_threshold(consensus)
        if self.data_plane is not None:
            # Recalibration moves the selection frontier: stale memo
            # entries would replay pre-recalibration selections (§12).
            self.data_plane.on_threshold(consensus, at=self.clock.now)
        self._maintenance_rounds += 1
        return FleetMaintenanceReport(
            replica_reports=replica_reports,
            pre_consensus_thresholds=thresholds,
            consensus_threshold=consensus,
        )

    @property
    def threshold(self) -> float:
        """The fleet's consensus threshold (replicas may drift between rounds)."""
        return float(np.median([r.service.threshold for r in self.active_replicas]))

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> FleetStats:
        """Snapshot of fleet-wide serving statistics so far."""
        first = self._first_arrival if self._first_arrival is not None else 0.0
        last = max([o.finish for o in self._outcomes], default=first)
        makespan = max(0.0, last - first)
        utilisation = {
            r.index: (r.busy_seconds / makespan if makespan > 0 else 0.0)
            for r in self.replicas
        }
        return FleetStats(
            outcomes=list(self._outcomes),
            queue_depth_samples=list(self._queue_depth_samples),
            utilisation=utilisation,
            makespan=makespan,
            maintenance_rounds=self._maintenance_rounds,
            failovers=self._failovers,
            failed_requests=sum(
                1 for drop in self._dropped if drop.reason == "failed"
            ),
            hedges_launched=self._hedges_launched,
            hedges_won=self._hedges_won,
            scaling_events=list(self._scaling_events),
            capacity_samples=list(self._capacity_samples),
            data_plane=(
                self.data_plane.stats() if self.data_plane is not None else None
            ),
            tenants=(
                self._admission.tenant_stats(self._outcomes, self._dropped)
                if self._admission is not None
                else {}
            ),
        )
