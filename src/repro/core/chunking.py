"""Chunked execution (§4.3): chunk-size policy and hidden-state ring.

Monolithic forwarding inflates intermediate tensors proportionally to
the candidate count (60 candidates × 512 tokens on the 0.6 B model add
≈473 MB per layer).  Chunked execution splits the monolithic batch and
runs chunks sequentially within each layer, so only one chunk's
transient tensors exist at a time — while the layer's *total* compute
window (the sum over chunks) still covers the next layer's prefetch.

The chunk size is chosen dynamically from device compute capability,
model size and sequence length (§4.3): as small as possible (minimum
memory) subject to

* a **utilisation floor** — the chunk's per-layer compute window must
  be long enough to saturate the device and amortise kernel launches;
* a **memory ceiling** — one chunk's intermediates must fit the budget.

For massive candidate counts the aggregated hidden states themselves
become the bottleneck; :class:`HiddenStateRing` implements the paper's
dynamic offloading, keeping at most three chunk slabs resident (one
computing, one offloading, one prefetching).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..device.executor import DeviceExecutor
from ..device.memory import CATEGORY_HIDDEN
from ..device.platforms import DeviceProfile
from ..model import costs
from ..model.zoo import ModelConfig


def choose_chunk_size(
    model: ModelConfig,
    profile: DeviceProfile,
    seq_len: int,
    num_candidates: int,
    chunk_memory_budget: int,
    min_compute_window: float,
) -> int:
    """Smallest chunk that still saturates the device, capped by memory.

    Reproduces the working example of §4.5: a 0.6 B model with 20
    candidates of ~512 tokens on the laptop GPU yields chunks of 2.
    """
    if num_candidates <= 0:
        raise ValueError("num_candidates must be positive")
    per_cand_inter = costs.intermediate_bytes_per_candidate(model, seq_len)
    max_by_memory = max(1, chunk_memory_budget // per_cand_inter)
    per_cand_seconds = (
        costs.layer_flops_per_candidate(model, seq_len) / profile.compute.flops_per_second
    )
    min_by_window = max(1, math.ceil(min_compute_window / per_cand_seconds))
    chunk = min(max(min_by_window, 1), max_by_memory, num_candidates)
    return int(chunk)


def iter_chunks(num_candidates: int, chunk_size: int) -> Iterator[np.ndarray]:
    """Yield index arrays partitioning ``range(num_candidates)``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for start in range(0, num_candidates, chunk_size):
        yield np.arange(start, min(start + chunk_size, num_candidates))


@dataclass
class HiddenPlan:
    """Residency plan for a request's hidden states."""

    offload: bool
    chunk_size: int
    resident_chunks: int  # 3 when offloading (compute/offload/prefetch ring)
    per_candidate_bytes: int

    def resident_bytes(self, num_candidates: int) -> int:
        if not self.offload:
            return num_candidates * self.per_candidate_bytes
        per_chunk = self.chunk_size * self.per_candidate_bytes
        rings = min(
            self.resident_chunks, max(1, math.ceil(num_candidates / self.chunk_size))
        )
        return rings * per_chunk


def plan_hidden_states(
    model: ModelConfig,
    seq_len: int,
    num_candidates: int,
    chunk_size: int,
    mode: str,
    hidden_memory_budget: int,
) -> HiddenPlan:
    """Decide whether to offload hidden states (§4.3, "auto" policy)."""
    per_cand = costs.hidden_state_bytes_per_candidate(model, seq_len)
    total = per_cand * num_candidates
    if mode == "on":
        offload = True
    elif mode == "off":
        offload = False
    elif mode == "auto":
        offload = total > hidden_memory_budget
    else:
        raise ValueError(f"bad hidden offload mode {mode!r}")
    return HiddenPlan(
        offload=offload,
        chunk_size=chunk_size,
        resident_chunks=3,
        per_candidate_bytes=per_cand,
    )


class HiddenStateRing:
    """Three-slot hidden-state pipeline for offloaded execution.

    Per layer, for each chunk in order: :meth:`acquire` waits for the
    chunk's prefetch (issued while earlier chunks computed), the engine
    computes, then :meth:`release` starts the chunk's write-back and
    prefetches the chunk two positions ahead.  The ring's three slabs
    are the only hidden-state memory ever resident.
    """

    def __init__(
        self,
        executor: DeviceExecutor,
        plan: HiddenPlan,
        num_candidates: int,
        tag_prefix: str = "hidden-ring",
    ) -> None:
        if not plan.offload:
            raise ValueError("HiddenStateRing requires an offloading plan")
        self.executor = executor
        self.plan = plan
        self.num_chunks = max(1, math.ceil(num_candidates / plan.chunk_size))
        self.tag_prefix = tag_prefix
        self._slab_bytes = plan.chunk_size * plan.per_candidate_bytes
        self._allocated = False

    def allocate(self) -> None:
        if self._allocated:
            return
        slots = min(self.plan.resident_chunks, self.num_chunks)
        for slot in range(slots):
            self.executor.device.memory.alloc(
                f"{self.tag_prefix}/slot{slot}", self._slab_bytes, CATEGORY_HIDDEN
            )
        self._allocated = True
        self._slots = slots

    def release_all(self) -> None:
        if not self._allocated:
            return
        for slot in range(self._slots):
            self.executor.device.memory.free(f"{self.tag_prefix}/slot{slot}")
        self._allocated = False

    # ------------------------------------------------------------------
    def begin_layer(self, layer_idx: int) -> None:
        """Prefetch the first chunks of this layer's sweep."""
        for chunk in range(min(2, self.num_chunks)):
            if layer_idx == 0 and chunk == 0:
                continue  # chunk 0 of layer 0 is produced by the embedding
            self.executor.prefetch(self._read_tag(layer_idx, chunk), self._slab_bytes)

    def acquire(self, layer_idx: int, chunk_idx: int) -> None:
        """Wait for this chunk's hidden states to be resident."""
        tag = self._read_tag(layer_idx, chunk_idx)
        self.executor.wait_io_if_pending(tag)

    def release(self, layer_idx: int, chunk_idx: int) -> None:
        """Write back the computed chunk; prefetch two chunks ahead."""
        self.executor.offload_async(self._write_tag(layer_idx, chunk_idx), self._slab_bytes)
        ahead = chunk_idx + 2
        if ahead < self.num_chunks:
            self.executor.prefetch(self._read_tag(layer_idx, ahead), self._slab_bytes)

    def _read_tag(self, layer_idx: int, chunk_idx: int) -> str:
        return f"{self.tag_prefix}/read/L{layer_idx}/C{chunk_idx}"

    def _write_tag(self, layer_idx: int, chunk_idx: int) -> str:
        return f"{self.tag_prefix}/write/L{layer_idx}/C{chunk_idx}"
