"""PRISM core: monolithic forwarding, the four §4 techniques, and the
serving layers built on them — offline calibration
(:class:`ThresholdCalibrator`), the single-device self-calibrating
service (:class:`SemanticSelectionService`, DESIGN.md §3), the
single-device concurrency layer (:class:`DeviceScheduler`, DESIGN.md
§6) and the multi-replica fleet (:class:`FleetService`, DESIGN.md §5)."""

from .calibration import CalibrationResult, CalibrationStep, ThresholdCalibrator
from .chunking import (
    HiddenPlan,
    HiddenStateRing,
    choose_chunk_size,
    iter_chunks,
    plan_hidden_states,
)
from .clustering import Clustering, cluster_scores, kmeans_1d
from .config import PrismConfig
from .embedding_cache import CacheLookup, EmbeddingCache
from .engine import EngineBase, PrismEngine, PruneEvent, RerankResult, RerankTask, TaskContext
from .metrics import cluster_gamma, goodman_kruskal_gamma, precision_at_k, top_k_overlap
from .pruning import ProgressiveClusterPruner, PruneDecision, coefficient_of_variation
from .streaming import LayerStreamer, PlanePass, PlaneStats, WeightPlane

__all__ = [
    "CacheLookup",
    "CalibrationResult",
    "CalibrationStep",
    "Clustering",
    "EmbeddingCache",
    "EngineBase",
    "HiddenPlan",
    "HiddenStateRing",
    "LayerStreamer",
    "PlanePass",
    "PlaneStats",
    "PrismConfig",
    "PrismEngine",
    "ProgressiveClusterPruner",
    "PruneDecision",
    "PruneEvent",
    "RerankResult",
    "RerankTask",
    "TaskContext",
    "ThresholdCalibrator",
    "WeightPlane",
    "choose_chunk_size",
    "cluster_gamma",
    "cluster_scores",
    "coefficient_of_variation",
    "goodman_kruskal_gamma",
    "iter_chunks",
    "kmeans_1d",
    "plan_hidden_states",
    "precision_at_k",
    "top_k_overlap",
]

from .scheduler import (  # noqa: E402  (appended export)
    LANE_BATCH,
    LANE_INTERACTIVE,
    SCHEDULING_POLICIES,
    DeviceScheduler,
    ScheduledOutcome,
    ScheduledRequest,
    SchedulerConfig,
    SchedulerStats,
    StepEvent,
)

__all__ += [
    "DeviceScheduler",
    "LANE_BATCH",
    "LANE_INTERACTIVE",
    "SCHEDULING_POLICIES",
    "ScheduledOutcome",
    "ScheduledRequest",
    "SchedulerConfig",
    "SchedulerStats",
    "StepEvent",
]

from .service import (  # noqa: E402  (appended export)
    MaintenanceReport,
    SampledRequest,
    SampleStride,
    SemanticSelectionService,
    ServiceStats,
)

__all__ += [
    "MaintenanceReport",
    "SampleStride",
    "SampledRequest",
    "SemanticSelectionService",
    "ServiceStats",
]

from .fleet import (  # noqa: E402  (appended export)
    ROUTING_POLICIES,
    FleetConfig,
    FleetMaintenanceReport,
    FleetRequest,
    FleetService,
    FleetStats,
    ReplicaHandle,
    RequestOutcome,
    RoutingPolicy,
)

__all__ += [
    "FleetConfig",
    "FleetMaintenanceReport",
    "FleetRequest",
    "FleetService",
    "FleetStats",
    "ROUTING_POLICIES",
    "ReplicaHandle",
    "RequestOutcome",
    "RoutingPolicy",
]
