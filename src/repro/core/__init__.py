"""PRISM core: monolithic forwarding, the four §4 techniques, and the
serving layers built on them — offline calibration
(:class:`ThresholdCalibrator`), the single-device self-calibrating
service (:class:`SemanticSelectionService`, DESIGN.md §3), the
single-device concurrency layer (:class:`DeviceScheduler`, DESIGN.md
§6), the multi-replica fleet (:class:`FleetService`, DESIGN.md §5),
and the unified request-centric serving API
(:class:`SelectionRequest`/:class:`SelectionResponse` + the
:class:`Server` adapters, DESIGN.md §8)."""

from .calibration import CalibrationResult, CalibrationStep, ThresholdCalibrator
from .chunking import (
    HiddenPlan,
    HiddenStateRing,
    choose_chunk_size,
    iter_chunks,
    plan_hidden_states,
)
from .clustering import Clustering, cluster_scores, kmeans_1d
from .config import PrismConfig
from .embedding_cache import CacheLookup, EmbeddingCache
from .engine import EngineBase, PrismEngine, PruneEvent, RerankResult, RerankTask, TaskContext
from .metrics import cluster_gamma, goodman_kruskal_gamma, precision_at_k, top_k_overlap
from .pruning import ProgressiveClusterPruner, PruneDecision, coefficient_of_variation
from .streaming import LayerStreamer, PlanePass, PlaneStats, WeightPlane

__all__ = [
    "CacheLookup",
    "CalibrationResult",
    "CalibrationStep",
    "Clustering",
    "EmbeddingCache",
    "EngineBase",
    "HiddenPlan",
    "HiddenStateRing",
    "LayerStreamer",
    "PlanePass",
    "PlaneStats",
    "PrismConfig",
    "PrismEngine",
    "ProgressiveClusterPruner",
    "PruneDecision",
    "PruneEvent",
    "RerankResult",
    "RerankTask",
    "TaskContext",
    "ThresholdCalibrator",
    "WeightPlane",
    "choose_chunk_size",
    "cluster_gamma",
    "cluster_scores",
    "coefficient_of_variation",
    "goodman_kruskal_gamma",
    "iter_chunks",
    "kmeans_1d",
    "plan_hidden_states",
    "precision_at_k",
    "top_k_overlap",
]

from .scheduler import (  # noqa: E402  (appended export)
    LANE_BATCH,
    LANE_INTERACTIVE,
    SCHEDULING_POLICIES,
    DeviceScheduler,
    DroppedRequest,
    ScheduledOutcome,
    ScheduledRequest,
    SchedulerConfig,
    SchedulerStats,
    StepEvent,
)

__all__ += [
    "DeviceScheduler",
    "DroppedRequest",
    "LANE_BATCH",
    "LANE_INTERACTIVE",
    "SCHEDULING_POLICIES",
    "ScheduledOutcome",
    "ScheduledRequest",
    "SchedulerConfig",
    "SchedulerStats",
    "StepEvent",
]

from .service import (  # noqa: E402  (appended export)
    DeviceWave,
    MaintenanceReport,
    SampledRequest,
    SampleStride,
    SemanticSelectionService,
    ServiceStats,
)

__all__ += [
    "DeviceWave",
    "MaintenanceReport",
    "SampleStride",
    "SampledRequest",
    "SemanticSelectionService",
    "ServiceStats",
]

from .fleet import (  # noqa: E402  (appended export)
    ROUTING_POLICIES,
    FleetConfig,
    FleetMaintenanceReport,
    FleetRequest,
    FleetService,
    FleetStats,
    ReplicaHandle,
    RequestOutcome,
    RoutingPolicy,
)

__all__ += [
    "FleetConfig",
    "FleetMaintenanceReport",
    "FleetRequest",
    "FleetService",
    "FleetStats",
    "ROUTING_POLICIES",
    "ReplicaHandle",
    "RequestOutcome",
    "RoutingPolicy",
]

# The resilience plane (DESIGN.md §9): deterministic fault injection,
# health/failover policy, and the fleet autoscaler controller.
from .resilience import (  # noqa: E402  (appended export)
    FAULT_BANDWIDTH_DEGRADATION,
    FAULT_KINDS,
    FAULT_REPLICA_CRASH,
    FAULT_REPLICA_STALL,
    FAULT_SSD_READ_ERROR,
    AutoscalerConfig,
    DeviceFault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ReplicaHealth,
    ResilienceConfig,
    ScalingEvent,
)

__all__ += [
    "AutoscalerConfig",
    "DeviceFault",
    "FAULT_BANDWIDTH_DEGRADATION",
    "FAULT_KINDS",
    "FAULT_REPLICA_CRASH",
    "FAULT_REPLICA_STALL",
    "FAULT_SSD_READ_ERROR",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ReplicaHealth",
    "ResilienceConfig",
    "ScalingEvent",
]

# The unified request-centric serving API (DESIGN.md §8) imports the
# tiers above, so it is appended last.
from .api import (  # noqa: E402  (appended export)
    REQUEST_CANCELLED,
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_SHED,
    REQUEST_STATUSES,
    DeviceServer,
    EngineServer,
    FleetServer,
    RequestHandle,
    SelectionRequest,
    SelectionResponse,
    Server,
    ServerBase,
    serve_all,
)

__all__ += [
    "DeviceServer",
    "EngineServer",
    "FleetServer",
    "REQUEST_CANCELLED",
    "REQUEST_FAILED",
    "REQUEST_OK",
    "REQUEST_SHED",
    "REQUEST_STATUSES",
    "RequestHandle",
    "SelectionRequest",
    "SelectionResponse",
    "Server",
    "ServerBase",
    "serve_all",
]

# The observability plane (DESIGN.md §10): the typed event log every
# layer publishes into, and trace record/replay built on top of it.
from .events import (  # noqa: E402  (appended export)
    EVENT_KINDS,
    EVENTS_VERSION,
    SERVING_TIERS,
    TERMINAL_KINDS,
    Event,
    EventLog,
)
from .trace import (  # noqa: E402  (appended export)
    TRACE_SCHEMA,
    TRACE_VERSION,
    ReplayReport,
    TraceRequest,
    TraceRun,
    TraceSpec,
    read_trace,
    record_trace,
    render_trace,
    replay_trace,
    run_trace,
    summarize_events,
)

__all__ += [
    "EVENT_KINDS",
    "EVENTS_VERSION",
    "Event",
    "EventLog",
    "ReplayReport",
    "SERVING_TIERS",
    "TERMINAL_KINDS",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "TraceRequest",
    "TraceRun",
    "TraceSpec",
    "read_trace",
    "record_trace",
    "render_trace",
    "replay_trace",
    "run_trace",
    "summarize_events",
]
from .data_plane import (  # noqa: E402  (appended export)
    DataPlane,
    DataPlaneConfig,
    DataPlaneStats,
    EmbeddingPin,
    SharedEmbeddingCache,
    clone_result,
)

__all__ += [
    "DataPlane",
    "DataPlaneConfig",
    "DataPlaneStats",
    "EmbeddingPin",
    "SharedEmbeddingCache",
    "clone_result",
]

# The multi-tenant workload plane (DESIGN.md §13): SLO classes,
# per-tenant policy, and tenant-aware fair admission for the fleet.
from .tenancy import (  # noqa: E402  (appended export)
    SLO_BATCH,
    SLO_BEST_EFFORT,
    SLO_CLASSES,
    SLO_INTERACTIVE,
    FairAdmission,
    SLOClass,
    TenancyConfig,
    TenantPolicy,
    TenantStats,
    TokenBucket,
    selection_requests_from_trace,
    tenancy_from_trace,
)

__all__ += [
    "FairAdmission",
    "SLO_BATCH",
    "SLO_BEST_EFFORT",
    "SLO_CLASSES",
    "SLO_INTERACTIVE",
    "SLOClass",
    "TenancyConfig",
    "TenantPolicy",
    "TenantStats",
    "TokenBucket",
    "selection_requests_from_trace",
    "tenancy_from_trace",
]

# The live telemetry plane (DESIGN.md §14): bounded event-log
# subscriptions and the metrics registry derived from the stream.
from .events import EventSubscription  # noqa: E402  (appended export)
from .telemetry import (  # noqa: E402  (appended export)
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryCollector,
    fleet_equivalence_report,
    parse_exposition,
    slo_lookup,
)
from .trace import timeline_events, write_timeline  # noqa: E402  (appended export)

__all__ += [
    "Counter",
    "EventSubscription",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryCollector",
    "fleet_equivalence_report",
    "parse_exposition",
    "slo_lookup",
    "timeline_events",
    "write_timeline",
]
