"""Derived metrics registry over the live event stream (DESIGN.md §14).

The §10 event log is the single source of truth for everything the
fleet does; this module derives *live* observables from it — and from
nothing else.  A :class:`TelemetryCollector` consumes events (usually
through a bounded :class:`~repro.core.events.EventSubscription`) and
populates a :class:`MetricsRegistry` of counters, gauges and
fixed-bucket histograms; the registry renders to Prometheus text
exposition for scraping (:mod:`repro.harness.live`).

Because every metric is a pure fold over the tagged event stream, live
values can never disagree with the replayable log: at drain, the
registry's counts, shed-reason breakdowns and per-tenant latency
percentiles equal the post-hoc
:class:`~repro.core.fleet.FleetStats` *exactly* —
:func:`fleet_equivalence_report` states the contract and
``tests/test_telemetry.py`` pins it.  Histograms therefore retain
their raw samples (exact ``numpy`` percentiles, the FleetStats
estimator) alongside the fixed buckets used for exposition and for
the cheap in-terminal quantile estimates (`cli live`).

The collector maps the full event taxonomy
(:data:`~repro.core.events.EVENT_KINDS`) to a stable metric namespace
(``repro_*``, table in ``docs/observability.md``): request lifecycle
counters per tier, sheds by reason, cache hits by mode, fused-gang
occupancy, per-tenant and per-SLO-class latency, token debt at shed
instants, and SLO burn-rate monitors (observed shed rate over the
class's shed bound — a burn rate above 1.0 means the §13 contract is
being violated right now).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from .events import (
    SERVING_TIERS,
    Event,
    EventLog,
    EventSubscription,
)
from .tenancy import SLO_CLASSES

#: Prometheus metric-name / label-name grammar.
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds) — tuned to the simulator's
#: virtual-second scale, from sub-millisecond steps to minute-long
#: batch passes.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_suffix(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class MetricFamily:
    """Shared machinery: one named family, one child per label tuple."""

    type_name = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *labelvalues: Any, **labelkw: Any):
        """The child for one label-value tuple (created on first use)."""
        if labelkw:
            if labelvalues:
                raise ValueError("pass label values positionally or by name, not both")
            labelvalues = tuple(labelkw[name] for name in self.labelnames)
        values = tuple("" if v is None else str(v) for v in labelvalues)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {values!r}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    def _make_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def children(self) -> dict[tuple[str, ...], Any]:
        return self._children

    # -- exposition -----------------------------------------------------
    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.type_name}",
        ]
        for labelvalues in sorted(self._children):
            lines.extend(self._render_child(labelvalues, self._children[labelvalues]))
        return lines

    def _render_child(self, labelvalues, child) -> list[str]:  # pragma: no cover
        raise NotImplementedError


class _CounterValue:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(MetricFamily):
    """Monotone counter family (``*_total`` by convention)."""

    type_name = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def value(self, *labelvalues: Any) -> float:
        values = tuple("" if v is None else str(v) for v in labelvalues)
        child = self._children.get(values)
        return 0.0 if child is None else child.value

    def total(self) -> float:
        return sum(child.value for child in self._children.values())

    def _render_child(self, labelvalues, child) -> list[str]:
        suffix = _labels_suffix(self.labelnames, labelvalues)
        return [f"{self.name}{suffix} {_format_value(child.value)}"]


class _GaugeValue:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge(MetricFamily):
    """Last-written value family (queue depths, occupancy, debt)."""

    type_name = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self.labels().set(value)

    def value(self, *labelvalues: Any) -> float:
        values = tuple("" if v is None else str(v) for v in labelvalues)
        child = self._children.get(values)
        return 0.0 if child is None else child.value

    def _render_child(self, labelvalues, child) -> list[str]:
        suffix = _labels_suffix(self.labelnames, labelvalues)
        return [f"{self.name}{suffix} {_format_value(child.value)}"]


class HistogramValue:
    """One histogram child: fixed cumulative buckets + raw samples.

    The buckets serve the Prometheus exposition and the cheap
    :meth:`estimate_quantile`; the retained samples serve
    :meth:`quantile`, the *exact* ``numpy`` percentile FleetStats uses
    — which is what makes the live-vs-post-hoc equivalence contract an
    equality instead of an approximation.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "count", "samples")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +Inf bucket last
        self.total = 0.0
        self.count = 0
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        self.samples.append(value)

    def quantile(self, p: float) -> float | None:
        """Exact percentile over the raw samples (the FleetStats
        estimator); ``None`` for an empty histogram."""
        if not self.samples:
            return None
        return float(np.percentile(self.samples, p))

    def estimate_quantile(self, p: float) -> float | None:
        """Bucket-interpolated percentile (no samples needed) — what a
        scraper can reconstruct from the exposition alone."""
        if self.count == 0:
            return None
        return estimate_quantile_from_buckets(
            self.cumulative_buckets(), self.count, p
        )

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``+Inf``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs


def estimate_quantile_from_buckets(
    cumulative: list[tuple[float, int]], count: int, p: float
) -> float | None:
    """Linear interpolation inside the bucket holding the p-th sample."""
    if count == 0:
        return None
    rank = (p / 100.0) * count
    previous_bound = 0.0
    previous_cum = 0
    for bound, cum in cumulative:
        if cum >= rank:
            if bound == float("inf"):
                return previous_bound  # open-ended tail: best lower bound
            if cum == previous_cum:
                return bound
            fraction = (rank - previous_cum) / (cum - previous_cum)
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = bound
        previous_cum = cum
    return previous_bound


class Histogram(MetricFamily):
    """Fixed-bucket histogram family with exact-quantile retention."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds

    def _make_child(self) -> HistogramValue:
        return HistogramValue(self.bounds)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def merged_samples(self, *prefix: Any) -> list[float]:
        """Raw samples across children whose labels start with ``prefix``
        (emission order within a child; order is irrelevant to the
        percentile estimator)."""
        wanted = tuple("" if v is None else str(v) for v in prefix)
        merged: list[float] = []
        for labelvalues, child in self._children.items():
            if labelvalues[: len(wanted)] == wanted:
                merged.extend(child.samples)
        return merged

    def quantile(self, p: float, *prefix: Any) -> float | None:
        samples = self.merged_samples(*prefix)
        if not samples:
            return None
        return float(np.percentile(samples, p))

    def _render_child(self, labelvalues, child: HistogramValue) -> list[str]:
        lines = []
        for bound, cum in child.cumulative_buckets():
            values = labelvalues + (_format_value(bound),)
            suffix = _labels_suffix(self.labelnames + ("le",), values)
            lines.append(f"{self.name}_bucket{suffix} {cum}")
        suffix = _labels_suffix(self.labelnames, labelvalues)
        lines.append(f"{self.name}_sum{suffix} {_format_value(child.total)}")
        lines.append(f"{self.name}_count{suffix} {child.count}")
        return lines


class MetricsRegistry:
    """A named set of metric families rendering to one exposition.

    Thread-safety: mutation happens under :attr:`lock` when driven by
    :class:`TelemetryCollector`; :meth:`render` takes the same lock, so
    a scrape racing the pump sees a consistent snapshot.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self.lock = threading.Lock()

    def register(self, family: MetricFamily) -> MetricFamily:
        if family.name in self._families:
            raise ValueError(f"duplicate metric family {family.name!r}")
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Counter:
        return self.register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Gauge:
        return self.register(Gauge(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help, labelnames, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    @property
    def families(self) -> dict[str, MetricFamily]:
        return self._families

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self.lock:
            lines: list[str] = []
            for name in sorted(self._families):
                lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# exposition parsing (cli live, tests)
# ---------------------------------------------------------------------------
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse Prometheus text back into ``name → [(labels, value)]``.

    The inverse of :meth:`MetricsRegistry.render`, used by the
    ``cli live`` dashboard and the exposition-grammar tests; raises
    ``ValueError`` on a malformed sample line.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels = {
            name: value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
            for name, value in _LABEL_PAIR.findall(match.group("labels") or "")
        }
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


# ---------------------------------------------------------------------------
# the event → metrics mapping (DESIGN.md §14)
# ---------------------------------------------------------------------------
@dataclass
class _ClassBurn:
    """Per-SLO-class shed accounting behind the burn-rate gauge."""

    submitted: int = 0
    shed: int = 0


def slo_lookup(tenancy) -> Callable[[str | None], str]:
    """Tenant → SLO-class-name mapping from a
    :class:`~repro.core.tenancy.TenancyConfig` (``policy_for``)."""

    def lookup(tenant: str | None) -> str:
        return tenancy.policy_for(tenant).slo

    return lookup


class TelemetryCollector:
    """Folds the §10 event stream into a :class:`MetricsRegistry`.

    The collector is populated *only* through :meth:`observe` /
    :meth:`consume` — there is no side channel from the serving stack,
    which is precisely why the equivalence contract against post-hoc
    FleetStats is meaningful: both are folds over the same tagged
    stream.

    Parameters
    ----------
    registry:
        Registry to populate (a fresh one by default).
    slo_of:
        Optional tenant → SLO-class-name mapping (see
        :func:`slo_lookup`); without it tenants fall into the
        ``"unknown"`` class and no burn rate is derived.
    tenant_tier:
        The serving tier whose events drive tenant-level metrics
        (default ``"fleet"`` — the tier that owns multi-tenant
        admission; a device-only run passes ``"device"``).  Inner
        tiers re-announce the same request per replica, so folding
        every tier into the tenant rollup would double-count.
    latency_buckets:
        Bucket bounds for the latency histograms.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        slo_of: Callable[[str | None], str] | None = None,
        tenant_tier: str = "fleet",
        latency_buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if tenant_tier not in SERVING_TIERS:
            known = ", ".join(SERVING_TIERS)
            raise ValueError(f"unknown tenant tier {tenant_tier!r}; known: {known}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slo_of = slo_of
        self.tenant_tier = tenant_tier
        self.events_seen = 0
        self._arrivals: dict[tuple[str, int | None, str | int | None], float] = {}
        self._burn: dict[str, _ClassBurn] = {}
        r = self.registry
        self.events_total = r.counter(
            "repro_events_total", "Events observed, by kind and tier.", ("kind", "tier")
        )
        self.admitted = r.counter(
            "repro_requests_admitted_total", "Requests admitted per serving tier.", ("tier",)
        )
        self.completed = r.counter(
            "repro_requests_completed_total", "Requests completed per serving tier.", ("tier",)
        )
        self.shed = r.counter(
            "repro_requests_shed_total",
            "Requests shed at admission, by tier and reason.",
            ("tier", "reason"),
        )
        self.cancelled = r.counter(
            "repro_requests_cancelled_total", "Requests cancelled per tier.", ("tier",)
        )
        self.failed = r.counter(
            "repro_requests_failed_total",
            "Requests failed per tier, by fault kind.",
            ("tier", "fault"),
        )
        self.latency = r.histogram(
            "repro_request_latency_seconds",
            "End-to-end latency of completed requests, by tier and SLO class.",
            ("tier", "slo"),
            buckets=latency_buckets,
        )
        self.queue_depth = r.gauge(
            "repro_queue_depth", "Dispatch-queue depth after the last queue event.", ("tier",)
        )
        self.fused_occupancy = r.gauge(
            "repro_fused_occupancy", "Size of the most recent fused gang.", ("tier",)
        )
        self.fused_joins = r.counter(
            "repro_fused_joins_total", "Requests that joined a fused gang.", ("tier",)
        )
        self.steps = r.counter(
            "repro_steps_total", "Layer steps executed, by tier.", ("tier",)
        )
        self.fetches = r.counter(
            "repro_ssd_fetches_total", "SSD transfers issued, by tier.", ("tier",)
        )
        self.fetched_bytes = r.counter(
            "repro_ssd_fetched_bytes_total", "Bytes moved by SSD transfers.", ("tier",)
        )
        self.plane_ops = r.counter(
            "repro_plane_ops_total",
            "Weight-plane operations (attach / acquire / release).",
            ("op",),
        )
        self.cache_hits = r.counter(
            "repro_cache_hits_total",
            "Data-plane hits by mode (memo / coalesced / overlap).",
            ("tier", "mode"),
        )
        self.cache_evictions = r.counter(
            "repro_cache_evictions_total",
            "Data-plane evictions/invalidations, by scope and reason.",
            ("scope", "reason"),
        )
        self.faults = r.counter(
            "repro_faults_total", "Injected device faults fired, by kind.", ("kind",)
        )
        self.failovers = r.counter(
            "repro_failovers_total", "Faulted requests requeued onto healthy replicas."
        )
        self.hedges = r.counter(
            "repro_hedges_total", "Straggler hedges launched, by race outcome.", ("outcome",)
        )
        self.scale_actions = r.counter(
            "repro_scale_actions_total", "Autoscaler capacity changes, by action.", ("action",)
        )
        self.tenant_completed = r.counter(
            "repro_tenant_completed_total", "Completed requests per tenant.", ("tenant",)
        )
        self.tenant_shed = r.counter(
            "repro_tenant_shed_total", "Shed requests per tenant, by reason.", ("tenant", "reason")
        )
        self.tenant_latency = r.histogram(
            "repro_tenant_latency_seconds",
            "End-to-end latency of completed requests, per tenant.",
            ("tenant",),
            buckets=latency_buckets,
        )
        self.tenant_token_debt = r.gauge(
            "repro_tenant_token_debt",
            "Token-bucket debt observed at the tenant's last rate-limit shed.",
            ("tenant",),
        )
        self.slo_burn_rate = r.gauge(
            "repro_slo_burn_rate",
            "Observed shed rate over the class shed bound (>1 = SLO burning).",
            ("slo",),
        )

    # ------------------------------------------------------------------
    def attach(self, log: EventLog, capacity: int = 65536) -> EventSubscription:
        """Subscribe to a log with a collector-sized queue."""
        return log.subscribe(capacity=capacity)

    def consume(self, subscription: EventSubscription, limit: int | None = None) -> int:
        """Drain a subscription into the registry; returns events folded."""
        events = subscription.poll(limit)
        with self.registry.lock:
            for event in events:
                self._observe_locked(event)
        return len(events)

    def observe(self, event: Event) -> None:
        """Fold one event into the registry."""
        with self.registry.lock:
            self._observe_locked(event)

    def observe_all(self, events: Iterable[Event]) -> int:
        count = 0
        with self.registry.lock:
            for event in events:
                self._observe_locked(event)
                count += 1
        return count

    # ------------------------------------------------------------------
    def _slo_of(self, tenant: str | None) -> str:
        if self.slo_of is None:
            return "unknown"
        return self.slo_of(tenant)

    def _request_key(self, event: Event) -> tuple[str, int | None, str | int | None]:
        # Fleet lifecycle events ride the coordinator clock (the admit
        # names no replica, the complete names the serving one), so the
        # request alone keys the pairing; inner tiers pair within their
        # replica's own axis — the summarize_events convention.
        if event.tier == "fleet":
            return (event.tier, None, event.request)
        return (event.tier, event.replica, event.request)

    def _observe_locked(self, event: Event) -> None:
        self.events_seen += 1
        self.events_total.labels(event.kind, event.tier).inc()
        kind, tier, data = event.kind, event.tier, event.data
        serving = tier in SERVING_TIERS
        tenant_scope = tier == self.tenant_tier
        if kind == "admit":
            if serving:
                self.admitted.labels(tier).inc()
                self._arrivals[self._request_key(event)] = float(
                    data.get("arrival", event.at)
                )
                if tenant_scope:
                    self._burn.setdefault(self._slo_of(event.tenant), _ClassBurn()).submitted += 1
                    self._refresh_burn(self._slo_of(event.tenant))
        elif kind == "complete":
            if serving:
                self.completed.labels(tier).inc()
                latency = data.get("latency")
                if latency is None:
                    arrival = self._arrivals.pop(self._request_key(event), None)
                    if arrival is not None:
                        latency = event.at - arrival
                else:
                    self._arrivals.pop(self._request_key(event), None)
                    latency = float(latency)
                if latency is not None:
                    self.latency.labels(tier, self._slo_of(event.tenant)).observe(latency)
                    if tenant_scope:
                        self.tenant_completed.labels(event.tenant).inc()
                        self.tenant_latency.labels(event.tenant).observe(latency)
                elif tenant_scope:
                    self.tenant_completed.labels(event.tenant).inc()
        elif kind == "shed":
            if serving:
                reason = str(data.get("detail") or "deadline")
                self.shed.labels(tier, reason).inc()
                self._arrivals.pop(self._request_key(event), None)
                if tenant_scope:
                    self.tenant_shed.labels(event.tenant, reason).inc()
                    slo = self._slo_of(event.tenant)
                    self._burn.setdefault(slo, _ClassBurn()).shed += 1
                    self._refresh_burn(slo)
                    if "debt" in data:
                        self.tenant_token_debt.labels(event.tenant).set(float(data["debt"]))
        elif kind == "cancel":
            if serving:
                self.cancelled.labels(tier).inc()
                self._arrivals.pop(self._request_key(event), None)
        elif kind == "fail":
            if serving:
                self.failed.labels(tier, str(data.get("detail") or "unknown")).inc()
                self._arrivals.pop(self._request_key(event), None)
        elif kind == "queue":
            self.queue_depth.labels(tier).set(float(data.get("depth", 0)))
        elif kind == "fuse":
            self.fused_joins.labels(tier).inc()
            self.fused_occupancy.labels(tier).set(float(data.get("group_size", 0)))
        elif kind == "step":
            self.steps.labels(tier).inc()
        elif kind == "fetch":
            self.fetches.labels(tier).inc()
            self.fetched_bytes.labels(tier).inc(float(data.get("nbytes", 0)))
        elif kind in ("attach", "acquire", "release"):
            self.plane_ops.labels(kind).inc()
        elif kind == "cache_hit":
            self.cache_hits.labels(tier, str(data.get("mode", "memo"))).inc()
        elif kind == "cache_evict":
            self.cache_evictions.labels(
                str(data.get("scope", "memo")), str(data.get("reason", "lru"))
            ).inc()
        elif kind == "fault":
            self.faults.labels(str(data.get("fault", "unknown"))).inc()
        elif kind == "failover":
            self.failovers.inc()
        elif kind == "hedge":
            self.hedges.labels("won" if data.get("won") else "lost").inc()
        elif kind == "scale":
            self.scale_actions.labels(str(data.get("action", "unknown"))).inc()
        # "dispatch" and trace-tier admits carry no derived metric
        # beyond repro_events_total.

    def _refresh_burn(self, slo: str) -> None:
        burn = self._burn.get(slo)
        if burn is None or burn.submitted == 0:
            return
        slo_class = SLO_CLASSES.get(slo)
        if slo_class is None or slo_class.shed_bound == 0:
            return
        rate = burn.shed / burn.submitted
        self.slo_burn_rate.labels(slo).set(rate / slo_class.shed_bound)


# ---------------------------------------------------------------------------
# the live-vs-post-hoc equivalence contract
# ---------------------------------------------------------------------------
def _mismatch(name: str, live: Any, post: Any) -> str:
    return f"{name}: live={live!r} post-hoc={post!r}"


def _close_or_equal(live: float | None, post: float | None) -> bool:
    if live is None or post is None:
        return live is None and post is None
    return live == post


def fleet_equivalence_report(
    collector: TelemetryCollector,
    stats,
    dropped: Iterable | None = None,
) -> list[str]:
    """Mismatches between live registry values and post-hoc FleetStats.

    Empty list = the §14 contract holds: counts, shed reasons,
    per-tenant p50/p99 and cache hits derived live from the event
    stream are *exactly* equal to what
    :meth:`~repro.core.fleet.FleetService.stats` aggregates after the
    fact.  ``dropped`` (the fleet's
    :attr:`~repro.core.fleet.FleetService.dropped_requests`) extends
    the check to per-reason drop counts.
    """
    report: list[str] = []
    completed = collector.completed.value("fleet")
    if completed != len(stats.outcomes):
        report.append(_mismatch("completed", completed, len(stats.outcomes)))
    failed = sum(
        child.value
        for labels, child in collector.failed.children.items()
        if labels[0] == "fleet"
    )
    if failed != stats.failed_requests:
        report.append(_mismatch("failed", failed, stats.failed_requests))
    failovers = collector.failovers.value()
    if failovers != stats.failovers:
        report.append(_mismatch("failovers", failovers, stats.failovers))
    hedges = collector.hedges.total()
    if hedges != stats.hedges_launched:
        report.append(_mismatch("hedges_launched", hedges, stats.hedges_launched))
    hedges_won = collector.hedges.value("won")
    if hedges_won != stats.hedges_won:
        report.append(_mismatch("hedges_won", hedges_won, stats.hedges_won))
    scale_actions = collector.scale_actions.total()
    if scale_actions != len(stats.scaling_events):
        report.append(
            _mismatch("scale_actions", scale_actions, len(stats.scaling_events))
        )
    for p, post in (
        (50, stats.p50_latency),
        (95, stats.p95_latency),
        (99, stats.p99_latency),
    ):
        live = collector.latency.quantile(p, "fleet")
        if not _close_or_equal(live, post):
            report.append(_mismatch(f"p{p}_latency", live, post))
    if dropped is not None:
        by_reason: dict[str, int] = {}
        for drop in dropped:
            by_reason[drop.reason] = by_reason.get(drop.reason, 0) + 1
        live_shed = sum(
            child.value
            for labels, child in collector.shed.children.items()
            if labels[0] == "fleet"
        )
        if live_shed != by_reason.get("shed", 0):
            report.append(_mismatch("shed", live_shed, by_reason.get("shed", 0)))
        live_cancelled = collector.cancelled.value("fleet")
        if live_cancelled != by_reason.get("cancelled", 0):
            report.append(
                _mismatch("cancelled", live_cancelled, by_reason.get("cancelled", 0))
            )
    if stats.data_plane is not None:
        for mode, post_hits in (
            ("memo", stats.data_plane.memo_hits),
            ("coalesced", stats.data_plane.coalesced),
            ("overlap", stats.data_plane.overlap_hits),
        ):
            live_hits = collector.cache_hits.value("fleet", mode)
            if live_hits != post_hits:
                report.append(_mismatch(f"cache_{mode}_hits", live_hits, post_hits))
    for tenant, tenant_stats in stats.tenants.items():
        label = "" if tenant is None else str(tenant)
        live_completed = collector.tenant_completed.value(label)
        if live_completed != tenant_stats.completed:
            report.append(
                _mismatch(f"tenant[{label}].completed", live_completed, tenant_stats.completed)
            )
        live_shed = sum(
            child.value
            for labels, child in collector.tenant_shed.children.items()
            if labels[0] == label
        )
        if live_shed != tenant_stats.shed:
            report.append(_mismatch(f"tenant[{label}].shed", live_shed, tenant_stats.shed))
        for p, post in ((50, tenant_stats.p50_latency), (99, tenant_stats.p99_latency)):
            live = collector.tenant_latency.quantile(p, label)
            if not _close_or_equal(live, post):
                report.append(_mismatch(f"tenant[{label}].p{p}", live, post))
    return report


@dataclass
class LatencyView:
    """One tier's live latency/count rollup (``cli live`` dashboard)."""

    tier: str
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    cancelled: int = 0
    failed: int = 0
    p50: float | None = None
    p95: float | None = None
    p99: float | None = None


def dashboard_views(samples: dict[str, list[tuple[dict[str, str], float]]]) -> list[LatencyView]:
    """Fold a parsed exposition into per-tier dashboard rows.

    Works from the scrape alone — quantiles are bucket-estimated via
    :func:`estimate_quantile_from_buckets`, which is all a remote
    scraper can reconstruct without the raw samples.
    """
    views: dict[str, LatencyView] = {}

    def view(tier: str) -> LatencyView:
        if tier not in views:
            views[tier] = LatencyView(tier=tier)
        return views[tier]

    for name, attr in (
        ("repro_requests_admitted_total", "admitted"),
        ("repro_requests_completed_total", "completed"),
        ("repro_requests_cancelled_total", "cancelled"),
    ):
        for labels, value in samples.get(name, []):
            setattr(view(labels.get("tier", "?")), attr, int(value))
    for labels, value in samples.get("repro_requests_shed_total", []):
        view(labels.get("tier", "?")).shed += int(value)
    for labels, value in samples.get("repro_requests_failed_total", []):
        view(labels.get("tier", "?")).failed += int(value)
    buckets: dict[str, dict[float, int]] = {}
    for labels, value in samples.get("repro_request_latency_seconds_bucket", []):
        tier = labels.get("tier", "?")
        le = float(labels["le"])
        per_tier = buckets.setdefault(tier, {})
        per_tier[le] = per_tier.get(le, 0) + int(value)
    for tier, per_tier in buckets.items():
        cumulative = sorted(per_tier.items())
        count = cumulative[-1][1] if cumulative else 0
        row = view(tier)
        row.p50 = estimate_quantile_from_buckets(cumulative, count, 50)
        row.p95 = estimate_quantile_from_buckets(cumulative, count, 95)
        row.p99 = estimate_quantile_from_buckets(cumulative, count, 99)
    return [views[tier] for tier in sorted(views)]


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "LatencyView",
    "MetricFamily",
    "MetricsRegistry",
    "TelemetryCollector",
    "dashboard_views",
    "estimate_quantile_from_buckets",
    "fleet_equivalence_report",
    "parse_exposition",
    "slo_lookup",
]
