"""The 18 evaluation datasets (§6.1), as synthetic generators.

The paper's microbenchmarks run over 15 BEIR datasets plus LoTTE,
Wikipedia, and CodeRAG.  Offline, we substitute per-dataset synthetic
generators whose profiles vary along the axes that matter to PRISM:

* **tier separation** — how cleanly relevant/partial/distractor bands
  are spaced; controls when rankings stabilise and therefore how much
  PRISM can prune (this produces the per-dataset spread of latency
  reductions in Table 3, e.g. 10.5–53.9 %);
* **ground-truth density** — how many relevant documents each query
  has; shapes Precision@K levels (Wikipedia-like: P@1≈1.0, P@10≈0.73);
* **document length** — drives per-candidate FLOPs and tensors.

Profiles are loosely matched to each corpus's character (e.g. ArguAna
has single-relevant queries; Quora duplicates are high-density; CodeRAG
documents are long and tiers are crisp).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .relevance import RelevanceProfile
from .workloads import RerankQuery, make_query

#: The 15 BEIR corpora the paper uses, in BEIR's canonical order.
BEIR_DATASETS = (
    "msmarco",
    "trec-covid",
    "nfcorpus",
    "nq",
    "hotpotqa",
    "fiqa",
    "arguana",
    "webis-touche2020",
    "cqadupstack",
    "quora",
    "dbpedia-entity",
    "scidocs",
    "fever",
    "climate-fever",
    "scifact",
)

EXTRA_DATASETS = ("lotte", "wikipedia", "coderag")

#: All 18 evaluation datasets (§6.1).
ALL_DATASETS = BEIR_DATASETS + EXTRA_DATASETS


@dataclass(frozen=True)
class DatasetSpec:
    """Generator description for one dataset."""

    name: str
    profile: RelevanceProfile
    query_length: int
    doc_length_mean: int
    seed: int

    def queries(self, num_queries: int, num_candidates: int = 20) -> list[RerankQuery]:
        """Generate the dataset's reranking workload deterministically."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        rng = np.random.default_rng(np.random.SeedSequence([0xDA7A, self.seed]))
        out = []
        for qid in range(num_queries):
            labels, relevance = self.profile.draw_pool(rng, num_candidates)
            out.append(
                make_query(
                    rng,
                    query_id=qid,
                    labels=labels,
                    relevance=relevance,
                    query_length=self.query_length,
                    doc_length_mean=self.doc_length_mean,
                )
            )
        return out


_BASE = RelevanceProfile()

_SPECS: dict[str, DatasetSpec] = {}


def _register(
    name: str,
    seed: int,
    separation: float = 1.0,
    relevant_range: tuple[int, int] = (2, 12),
    hard_relevant_rate: float = 0.22,
    invisible_relevant_rate: float = 0.18,
    plausible_distractor_rate: float = 0.10,
    query_length: int = 16,
    doc_length_mean: int = 460,
) -> None:
    profile = replace(
        _BASE,
        separation=separation,
        relevant_range=relevant_range,
        hard_relevant_rate=hard_relevant_rate,
        invisible_relevant_rate=invisible_relevant_rate,
        plausible_distractor_rate=plausible_distractor_rate,
    )
    _SPECS[name] = DatasetSpec(
        name=name,
        profile=profile,
        query_length=query_length,
        doc_length_mean=doc_length_mean,
        seed=seed,
    )


# --- BEIR (profiles matched loosely to corpus character) ---------------
_register("msmarco", seed=101, separation=0.85, relevant_range=(1, 4), doc_length_mean=340)
_register("trec-covid", seed=102, separation=0.70, relevant_range=(6, 14), doc_length_mean=420)
_register("nfcorpus", seed=103, separation=0.60, relevant_range=(3, 10), doc_length_mean=380)
_register("nq", seed=104, separation=0.90, relevant_range=(1, 3), doc_length_mean=420)
_register("hotpotqa", seed=105, separation=0.80, relevant_range=(2, 4), doc_length_mean=400)
_register("fiqa", seed=106, separation=0.65, relevant_range=(2, 8), doc_length_mean=360)
_register(
    "arguana",
    seed=107,
    separation=0.64,
    relevant_range=(1, 1),
    hard_relevant_rate=0.35,
    doc_length_mean=440,
)
_register(
    "webis-touche2020",
    seed=108,
    separation=0.50,
    relevant_range=(4, 12),
    plausible_distractor_rate=0.22,
    doc_length_mean=480,
)
_register("cqadupstack", seed=109, separation=0.70, relevant_range=(1, 5), doc_length_mean=320)
_register("quora", seed=110, separation=0.95, relevant_range=(1, 6), doc_length_mean=120)
_register(
    "dbpedia-entity",
    seed=111,
    separation=0.65,
    relevant_range=(5, 14),
    plausible_distractor_rate=0.18,
    doc_length_mean=300,
)
_register("scidocs", seed=112, separation=0.60, relevant_range=(3, 9), doc_length_mean=400)
_register("fever", seed=113, separation=0.90, relevant_range=(1, 4), doc_length_mean=420)
_register(
    "climate-fever",
    seed=114,
    separation=0.60,
    relevant_range=(2, 6),
    plausible_distractor_rate=0.20,
    doc_length_mean=420,
)
_register("scifact", seed=115, separation=0.80, relevant_range=(1, 3), doc_length_mean=440)

# --- the three extra corpora -------------------------------------------
_register("lotte", seed=116, separation=0.75, relevant_range=(2, 8), doc_length_mean=380)
# Profile fitted against the paper's Figure 8 precision levels
# (P@1≈0.998, P@5≈0.851, P@10≈0.730 for the unpruned baseline).
_register(
    "wikipedia",
    seed=117,
    separation=0.88,
    relevant_range=(4, 12),
    hard_relevant_rate=0.18,
    invisible_relevant_rate=0.35,
    doc_length_mean=500,
)
_register(
    "coderag",
    seed=118,
    separation=0.92,
    relevant_range=(1, 5),
    hard_relevant_rate=0.15,
    query_length=24,
    doc_length_mean=520,
)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset generator by name."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


def list_datasets() -> list[str]:
    return list(ALL_DATASETS)
