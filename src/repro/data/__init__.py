"""Workload substrate: tiered relevance, 18 dataset generators, packing."""

from .datasets import ALL_DATASETS, BEIR_DATASETS, EXTRA_DATASETS, DatasetSpec, get_dataset, list_datasets
from .relevance import RelevanceProfile, Tier
from .workloads import CandidateSpec, RerankQuery, build_batch, make_query

__all__ = [
    "ALL_DATASETS",
    "BEIR_DATASETS",
    "CandidateSpec",
    "DatasetSpec",
    "EXTRA_DATASETS",
    "RelevanceProfile",
    "RerankQuery",
    "Tier",
    "build_batch",
    "get_dataset",
    "list_datasets",
    "make_query",
]
