"""Workload representation: reranking requests and packing.

A :class:`RerankQuery` is model-agnostic — candidates are described by
(seed, length, relevance, label) rather than concrete token ids, so the
same workload can be packed for models with different vocabularies and
sequence limits.  :func:`build_batch` turns one query into the
:class:`~repro.model.transformer.CandidateBatch` an engine consumes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..model.transformer import CandidateBatch
from ..text.tokenizer import Tokenizer


@dataclass(frozen=True)
class CandidateSpec:
    """One candidate document of one query."""

    uid: int
    seed: int
    length: int
    relevance: float
    is_relevant: bool


@dataclass(frozen=True)
class RerankQuery:
    """One reranking request: a query against a candidate pool.

    ``tenant`` tags the query with its submitting tenant for the
    multi-tenant workload plane (DESIGN.md §13); ``None`` (the
    default) keeps single-tenant workloads byte-identical.
    """

    query_id: int
    seed: int
    query_length: int
    candidates: tuple[CandidateSpec, ...]
    tenant: str | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_relevant(self) -> int:
        return sum(1 for c in self.candidates if c.is_relevant)

    def relevance(self) -> np.ndarray:
        return np.array([c.relevance for c in self.candidates])

    def labels(self) -> np.ndarray:
        return np.array([c.is_relevant for c in self.candidates], dtype=bool)

    def uids(self) -> np.ndarray:
        return np.array([c.uid for c in self.candidates], dtype=np.int64)


def build_batch(query: RerankQuery, tokenizer: Tokenizer, max_len: int) -> CandidateBatch:
    """Pack a query's candidates into a monolithic model batch."""
    query_ids = tokenizer.encode_synthetic(query.seed, query.query_length)
    docs = [tokenizer.encode_synthetic(c.seed, c.length) for c in query.candidates]
    tokens = tokenizer.batch_pairs(query_ids, docs, max_len)
    return CandidateBatch(
        tokens=tokens,
        lengths=tokenizer.attention_lengths(tokens),
        relevance=query.relevance(),
        uids=query.uids(),
    )


def make_query(
    rng: np.random.Generator,
    query_id: int,
    labels: np.ndarray,
    relevance: np.ndarray,
    query_length: int,
    doc_length_mean: int,
    doc_length_jitter: int = 40,
) -> RerankQuery:
    """Assemble a :class:`RerankQuery` from a drawn relevance pool."""
    if labels.shape != relevance.shape:
        raise ValueError("labels and relevance must align")
    candidates = []
    for i, (label, rel) in enumerate(zip(labels, relevance)):
        length = int(
            np.clip(
                rng.normal(doc_length_mean, doc_length_jitter),
                32,
                4 * doc_length_mean,
            )
        )
        candidates.append(
            CandidateSpec(
                uid=int(rng.integers(0, 2**31 - 1)),
                seed=int(rng.integers(0, 2**31 - 1)),
                length=length,
                relevance=float(rel),
                is_relevant=bool(label),
            )
        )
    return RerankQuery(
        query_id=query_id,
        seed=int(rng.integers(0, 2**31 - 1)),
        query_length=query_length,
        candidates=tuple(candidates),
    )


def zipf_request_stream(
    rng: np.random.Generator,
    base_queries: "list[RerankQuery]",
    num_requests: int,
    zipf_s: float = 1.1,
    partial_overlap_rate: float = 0.0,
    resample_fraction: float = 0.5,
    tenant_of: "Callable[[int], str] | None" = None,
) -> "list[RerankQuery]":
    """Draw a Zipf-skewed stream of repeated reranking requests.

    Retrieval traffic is head-heavy: a few hot queries dominate.  The
    stream draws ``num_requests`` queries from ``base_queries`` with
    truncated-Zipf rank weights (rank ``r`` drawn with probability
    proportional to ``r ** -zipf_s``), so popular queries repeat —
    the request-overlap regime the data plane (DESIGN.md §12) caches.

    With probability ``partial_overlap_rate`` a draw is *mutated*
    instead of repeated verbatim: it keeps the first
    ``1 - resample_fraction`` of the base query's candidates (the
    shared prefix the plane's layer 2 can reuse) and replaces the rest
    with freshly drawn candidates (the residue a reduced pass must
    score).  Mutations are cached per base query, so the same mutated
    variant can itself repeat and memo-hit.

    ``tenant_of`` tags the stream for the multi-tenant workload plane
    (DESIGN.md §13): draw ``i``'s query carries
    ``tenant=tenant_of(i)``, and each tenant's mutations are drawn
    from its own deterministic RNG substream (derived from one base
    seed plus a stable digest of the tenant id), so adding or removing
    one tenant never perturbs another tenant's variants.  Mutation
    caching is then keyed ``(base index, tenant)``.  With
    ``tenant_of=None`` (the default) the untagged code path runs
    unchanged and the stream is byte-identical to one drawn before the
    hook existed.
    """
    if not base_queries:
        raise ValueError("base_queries must be non-empty")
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if zipf_s < 0:
        raise ValueError("zipf_s must be >= 0")
    if not 0.0 <= partial_overlap_rate <= 1.0:
        raise ValueError("partial_overlap_rate must lie in [0, 1]")
    if not 0.0 < resample_fraction <= 1.0:
        raise ValueError("resample_fraction must lie in (0, 1]")

    ranks = np.arange(1, len(base_queries) + 1, dtype=np.float64)
    weights = ranks**-zipf_s
    weights /= weights.sum()

    def mutate(query: RerankQuery, source: np.random.Generator) -> RerankQuery:
        keep = max(1, int(round(len(query.candidates) * (1.0 - resample_fraction))))
        fresh = []
        for _ in range(len(query.candidates) - keep):
            relevance = float(source.uniform(0.05, 0.95))
            fresh.append(
                CandidateSpec(
                    uid=int(source.integers(0, 2**31 - 1)),
                    seed=int(source.integers(0, 2**31 - 1)),
                    length=int(query.candidates[0].length),
                    relevance=relevance,
                    is_relevant=relevance >= 0.5,
                )
            )
        return RerankQuery(
            query_id=query.query_id,
            seed=query.seed,
            query_length=query.query_length,
            candidates=query.candidates[:keep] + tuple(fresh),
            tenant=query.tenant,
        )

    if tenant_of is None:
        # The untagged path: byte-identical to the pre-§13 generator
        # (every draw comes from ``rng``, in the original order).
        mutated: dict[int, RerankQuery] = {}
        stream: list[RerankQuery] = []
        for _ in range(num_requests):
            index = int(rng.choice(len(base_queries), p=weights))
            if partial_overlap_rate > 0.0 and rng.random() < partial_overlap_rate:
                if index not in mutated:
                    mutated[index] = mutate(base_queries[index], rng)
                stream.append(mutated[index])
            else:
                stream.append(base_queries[index])
        return stream

    # Tagged path: per-tenant deterministic RNG substreams.  The base
    # entropy is drawn from ``rng`` once; each tenant's substream seeds
    # from (base, sha256(tenant id)) — stable across runs and across
    # tenant-set changes, unlike Python's salted hash().
    base_entropy = int(rng.integers(0, 2**31 - 1))
    substreams: dict[str, np.random.Generator] = {}

    def substream(tenant: str) -> np.random.Generator:
        if tenant not in substreams:
            digest = hashlib.sha256(tenant.encode("utf-8")).digest()
            substreams[tenant] = np.random.default_rng(
                [base_entropy, int.from_bytes(digest[:8], "big")]
            )
        return substreams[tenant]

    tenant_mutated: dict[tuple[int, str], RerankQuery] = {}
    stream = []
    for draw in range(num_requests):
        index = int(rng.choice(len(base_queries), p=weights))
        tenant = tenant_of(draw)
        if partial_overlap_rate > 0.0 and rng.random() < partial_overlap_rate:
            key = (index, tenant)
            if key not in tenant_mutated:
                tenant_mutated[key] = mutate(
                    replace(base_queries[index], tenant=tenant), substream(tenant)
                )
            stream.append(tenant_mutated[key])
        else:
            stream.append(replace(base_queries[index], tenant=tenant))
    return stream
