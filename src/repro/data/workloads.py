"""Workload representation: reranking requests and packing.

A :class:`RerankQuery` is model-agnostic — candidates are described by
(seed, length, relevance, label) rather than concrete token ids, so the
same workload can be packed for models with different vocabularies and
sequence limits.  :func:`build_batch` turns one query into the
:class:`~repro.model.transformer.CandidateBatch` an engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.transformer import CandidateBatch
from ..text.tokenizer import Tokenizer


@dataclass(frozen=True)
class CandidateSpec:
    """One candidate document of one query."""

    uid: int
    seed: int
    length: int
    relevance: float
    is_relevant: bool


@dataclass(frozen=True)
class RerankQuery:
    """One reranking request: a query against a candidate pool."""

    query_id: int
    seed: int
    query_length: int
    candidates: tuple[CandidateSpec, ...]

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_relevant(self) -> int:
        return sum(1 for c in self.candidates if c.is_relevant)

    def relevance(self) -> np.ndarray:
        return np.array([c.relevance for c in self.candidates])

    def labels(self) -> np.ndarray:
        return np.array([c.is_relevant for c in self.candidates], dtype=bool)

    def uids(self) -> np.ndarray:
        return np.array([c.uid for c in self.candidates], dtype=np.int64)


def build_batch(query: RerankQuery, tokenizer: Tokenizer, max_len: int) -> CandidateBatch:
    """Pack a query's candidates into a monolithic model batch."""
    query_ids = tokenizer.encode_synthetic(query.seed, query.query_length)
    docs = [tokenizer.encode_synthetic(c.seed, c.length) for c in query.candidates]
    tokens = tokenizer.batch_pairs(query_ids, docs, max_len)
    return CandidateBatch(
        tokens=tokens,
        lengths=tokenizer.attention_lengths(tokens),
        relevance=query.relevance(),
        uids=query.uids(),
    )


def make_query(
    rng: np.random.Generator,
    query_id: int,
    labels: np.ndarray,
    relevance: np.ndarray,
    query_length: int,
    doc_length_mean: int,
    doc_length_jitter: int = 40,
) -> RerankQuery:
    """Assemble a :class:`RerankQuery` from a drawn relevance pool."""
    if labels.shape != relevance.shape:
        raise ValueError("labels and relevance must align")
    candidates = []
    for i, (label, rel) in enumerate(zip(labels, relevance)):
        length = int(
            np.clip(
                rng.normal(doc_length_mean, doc_length_jitter),
                32,
                4 * doc_length_mean,
            )
        )
        candidates.append(
            CandidateSpec(
                uid=int(rng.integers(0, 2**31 - 1)),
                seed=int(rng.integers(0, 2**31 - 1)),
                length=length,
                relevance=float(rel),
                is_relevant=bool(label),
            )
        )
    return RerankQuery(
        query_id=query_id,
        seed=int(rng.integers(0, 2**31 - 1)),
        query_length=query_length,
        candidates=tuple(candidates),
    )
