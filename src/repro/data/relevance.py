"""Tiered relevance generation.

The clustering premise of progressive cluster pruning (§3.1) is that
candidate pools contain *tiers*: a few clearly relevant documents, a
band of partially-related ones, and bulk distractors.  Real retrieval
pipelines produce exactly this structure (the candidates arrive from
keyword + embedding retrieval, Figure 1), and the paper's Figure 2
shows scores separating into these tiers layer by layer.

``RelevanceProfile`` describes a dataset's tier geometry; drawing a
query's candidate pool yields, per candidate:

* a **label** (ground-truth relevant or not) — used by Precision@K;
* a **perceived relevance** in [0, 1] — the value the model's score
  process converges to.

The two are deliberately imperfectly aligned (a fraction of relevant
documents read as merely mid-tier, and some distractors read as
plausible): this is what keeps Precision@K below 1.0 even for the
unpruned baseline, as in the paper's Figure 8 (e.g. P@10 ≈ 0.73 on
Wikipedia).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Tier:
    """One relevance tier: a Gaussian band of perceived relevance."""

    center: float
    spread: float

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        values = rng.normal(self.center, self.spread, size=count)
        return np.clip(values, 0.01, 0.99)


@dataclass(frozen=True)
class RelevanceProfile:
    """Tier geometry for one dataset.

    Parameters
    ----------
    top_tier / mid_tier / low_tiers:
        Perceived-relevance bands.  Relevant documents mostly land in
        the top tier, sometimes in the mid tier (``hard_relevant_rate``)
        and occasionally read as distractors entirely
        (``invisible_relevant_rate`` — labelled relevant but beyond what
        the model can perceive, the main source of P@K < 1 at larger K);
        distractors land in the low tiers, occasionally in the mid tier
        (``plausible_distractor_rate``).
    separation:
        Global tier-compression factor in (0, 1]: 1.0 keeps the profile
        as-is; smaller values squeeze all tiers toward their mean,
        making clusters harder to separate (rankings stabilise later,
        so PRISM prunes later — this drives the per-dataset spread of
        latency reductions in Table 3).
    relevant_range:
        Inclusive (min, max) of ground-truth relevant documents per query.
    """

    top_tier: Tier = Tier(0.86, 0.035)
    mid_tier: Tier = Tier(0.58, 0.045)
    low_tiers: tuple[Tier, ...] = (Tier(0.30, 0.04), Tier(0.12, 0.035))
    hard_relevant_rate: float = 0.22
    invisible_relevant_rate: float = 0.18
    plausible_distractor_rate: float = 0.10
    separation: float = 1.0
    relevant_range: tuple[int, int] = (2, 12)

    def __post_init__(self) -> None:
        if not 0 < self.separation <= 1:
            raise ValueError("separation must lie in (0, 1]")
        if not 0 <= self.hard_relevant_rate <= 1:
            raise ValueError("hard_relevant_rate must lie in [0, 1]")
        if not 0 <= self.invisible_relevant_rate <= 1:
            raise ValueError("invisible_relevant_rate must lie in [0, 1]")
        if self.hard_relevant_rate + self.invisible_relevant_rate > 1:
            raise ValueError("relevant-tier rates must sum to at most 1")
        if not 0 <= self.plausible_distractor_rate <= 1:
            raise ValueError("plausible_distractor_rate must lie in [0, 1]")
        lo, hi = self.relevant_range
        if lo < 0 or hi < lo:
            raise ValueError(f"bad relevant_range {self.relevant_range}")

    # ------------------------------------------------------------------
    def draw_pool(
        self, rng: np.random.Generator, num_candidates: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw one query's candidate pool.

        Returns ``(labels, relevance)`` — bool ground truth and the
        perceived relevance values the model converges to.
        """
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        lo, hi = self.relevant_range
        num_relevant = int(rng.integers(lo, min(hi, num_candidates) + 1))
        labels = np.zeros(num_candidates, dtype=bool)
        labels[:num_relevant] = True
        rng.shuffle(labels)

        relevance = np.empty(num_candidates, dtype=np.float64)
        for i, is_relevant in enumerate(labels):
            relevance[i] = self._draw_one(rng, bool(is_relevant))
        return labels, self._compress(relevance)

    def _draw_one(self, rng: np.random.Generator, is_relevant: bool) -> float:
        if is_relevant:
            draw = rng.random()
            if draw < self.invisible_relevant_rate:
                tier = self.low_tiers[int(rng.integers(len(self.low_tiers)))]
            elif draw < self.invisible_relevant_rate + self.hard_relevant_rate:
                tier = self.mid_tier
            else:
                tier = self.top_tier
        elif rng.random() < self.plausible_distractor_rate:
            tier = self.mid_tier
        else:
            tier = self.low_tiers[int(rng.integers(len(self.low_tiers)))]
        return float(tier.draw(rng, 1)[0])

    def _compress(self, relevance: np.ndarray) -> np.ndarray:
        """Squeeze tiers toward the profile mean by ``separation``."""
        if self.separation >= 1.0:
            return relevance
        mean = self._profile_mean()
        return np.clip(mean + (relevance - mean) * self.separation, 0.01, 0.99)

    def _profile_mean(self) -> float:
        centers = [self.top_tier.center, self.mid_tier.center]
        centers += [tier.center for tier in self.low_tiers]
        return float(np.mean(centers))
