"""Trace-driven open-loop multi-tenant traffic (DESIGN.md §13).

Every serving bench used to drive the fleet with a small hand-built
request list.  This module generates *fleet-scale* workloads on the
virtual clock: an **open-loop** arrival process (arrivals never wait
for completions — the discrete-event-correct way to model offered
load), thousands of distinct tenants with Zipf-skewed popularity, an
SLO class per tenant (``interactive`` / ``batch`` / ``best_effort``),
heavy-tailed candidate-set sizes, and reranking queries drawn from a
shared Zipf-repeated base pool so the §12 data plane still sees
overlap under tenant-tagged traffic.

Three arrival processes:

* ``poisson`` — homogeneous: i.i.d. exponential gaps at ``rate_rps``.
* ``mmpp`` — bursty: a two-state Markov-modulated Poisson process
  alternating calm and burst phases (burst intensity
  ``burst_multiplier``× calm), with the phase mix chosen so the
  *mean* rate stays ``rate_rps``.
* ``diurnal`` — a slow sinusoidal intensity (peak/trough over
  ``diurnal_period_s``), sampled exactly by thinning against the
  peak rate.

A generated trace serializes to one JSONL artifact (schema
``repro.traffic`` v1): a header carrying the config and the
per-tenant admission profiles (SLO class, fair-queuing weight,
token-bucket rate/burst), then one line per request with its arrival
offset, tenant, SLO class and the full
:class:`~repro.data.workloads.RerankQuery` spec — self-contained, so
``cli serve``/``cli traffic`` can replay it with nothing but the file.
Generation is a pure function of :class:`TrafficConfig` (one seeded
RNG), so the same config always yields a byte-identical trace.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .workloads import CandidateSpec, RerankQuery, make_query

#: JSONL header schema tag / version.
TRAFFIC_SCHEMA = "repro.traffic"
TRAFFIC_VERSION = 1

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal")

#: SLO class names a traffic trace may assign (mirrors
#: :data:`repro.core.tenancy.SLO_CLASSES`; kept as plain strings here
#: so the data layer stays import-free of the serving core).
TRAFFIC_SLO_CLASSES = ("interactive", "batch", "best_effort")


@dataclass(frozen=True)
class TrafficConfig:
    """Everything the generator needs; one seed, fully deterministic.

    ``rate_rps`` is the *offered* mean arrival rate; overload studies
    set it to a multiple of the fleet's measured capacity.
    ``admit_factor`` maps each SLO class to the token-bucket refill
    rate of its tenants, as a multiple of each tenant's own expected
    arrival rate — e.g. ``1.2`` gives interactive tenants 20%
    headroom over their expected traffic, while ``0.02`` lets
    best-effort tenants sustain only 2% of theirs under overload.
    ``burst_sigma`` sizes each class's bucket depth to absorb arrival
    *fluctuation*: a tenant expecting ``e`` arrivals gets
    ``burst = max(burst, sigma * sqrt(e))``, covering a
    ``sigma``-standard-deviation Poisson overshoot.  Without it, a
    small interactive tenant whose handful of arrivals cluster would
    blow through a flat burst and violate its shed bound on noise
    alone.
    """

    num_tenants: int = 100
    duration_s: float = 10.0
    rate_rps: float = 50.0
    process: str = "poisson"
    seed: int = 0
    # -- tenant population --------------------------------------------
    tenant_zipf_s: float = 1.1
    class_mix: tuple[tuple[str, float], ...] = (
        ("interactive", 0.05),
        ("batch", 0.10),
        ("best_effort", 0.85),
    )
    admit_factor: tuple[tuple[str, float], ...] = (
        ("interactive", 1.2),
        ("batch", 0.35),
        ("best_effort", 0.02),
    )
    burst: float = 2.0
    burst_sigma: tuple[tuple[str, float], ...] = (
        ("interactive", 3.5),
        ("batch", 1.0),
        ("best_effort", 0.0),
    )
    tenant_weights: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    # -- workload shape -----------------------------------------------
    num_base_queries: int = 32
    query_zipf_s: float = 1.1
    max_candidates: int = 16
    min_candidates: int = 4
    candidate_tail: float = 1.5
    query_length: int = 16
    doc_length_mean: int = 64
    k: int = 1
    # -- mmpp knobs ---------------------------------------------------
    burst_multiplier: float = 4.0
    burst_fraction: float = 0.2
    mean_burst_s: float = 0.5
    # -- diurnal knobs ------------------------------------------------
    diurnal_period_s: float | None = None  # None = one period per trace
    diurnal_depth: float = 0.8

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.process not in ARRIVAL_PROCESSES:
            known = ", ".join(ARRIVAL_PROCESSES)
            raise ValueError(f"unknown arrival process {self.process!r}; known: {known}")
        mix_names = [name for name, _ in self.class_mix]
        if sorted(mix_names) != sorted(set(mix_names)):
            raise ValueError("class_mix names must be unique")
        for name, share in self.class_mix:
            if name not in TRAFFIC_SLO_CLASSES:
                known = ", ".join(TRAFFIC_SLO_CLASSES)
                raise ValueError(f"unknown SLO class {name!r}; known: {known}")
            if share < 0:
                raise ValueError("class_mix shares must be >= 0")
        if not math.isclose(sum(share for _, share in self.class_mix), 1.0, abs_tol=1e-9):
            raise ValueError("class_mix shares must sum to 1")
        factors = dict(self.admit_factor)
        for name, _ in self.class_mix:
            if name not in factors:
                raise ValueError(f"admit_factor missing SLO class {name!r}")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        for name, sigma in self.burst_sigma:
            if name not in TRAFFIC_SLO_CLASSES:
                known = ", ".join(TRAFFIC_SLO_CLASSES)
                raise ValueError(f"unknown SLO class {name!r}; known: {known}")
            if sigma < 0:
                raise ValueError("burst_sigma values must be >= 0")
        if not self.tenant_weights or any(w <= 0 for w in self.tenant_weights):
            raise ValueError("tenant_weights must be positive")
        if self.num_base_queries < 1:
            raise ValueError("num_base_queries must be >= 1")
        if self.min_candidates < 2:
            raise ValueError("min_candidates must be >= 2")
        if self.max_candidates < self.min_candidates:
            raise ValueError("max_candidates must be >= min_candidates")
        if self.candidate_tail <= 0:
            raise ValueError("candidate_tail must be positive")
        if self.k < 1 or self.k > self.min_candidates:
            raise ValueError("k must lie in [1, min_candidates]")
        if self.burst_multiplier <= 1:
            raise ValueError("burst_multiplier must exceed 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must lie in (0, 1)")
        if self.mean_burst_s <= 0:
            raise ValueError("mean_burst_s must be positive")
        if self.diurnal_period_s is not None and self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if not 0 <= self.diurnal_depth < 1:
            raise ValueError("diurnal_depth must lie in [0, 1)")

    def to_payload(self) -> dict[str, Any]:
        return {
            "num_tenants": self.num_tenants,
            "duration_s": self.duration_s,
            "rate_rps": self.rate_rps,
            "process": self.process,
            "seed": self.seed,
            "tenant_zipf_s": self.tenant_zipf_s,
            "class_mix": [list(pair) for pair in self.class_mix],
            "admit_factor": [list(pair) for pair in self.admit_factor],
            "burst": self.burst,
            "burst_sigma": [list(pair) for pair in self.burst_sigma],
            "tenant_weights": list(self.tenant_weights),
            "num_base_queries": self.num_base_queries,
            "query_zipf_s": self.query_zipf_s,
            "max_candidates": self.max_candidates,
            "min_candidates": self.min_candidates,
            "candidate_tail": self.candidate_tail,
            "query_length": self.query_length,
            "doc_length_mean": self.doc_length_mean,
            "k": self.k,
            "burst_multiplier": self.burst_multiplier,
            "burst_fraction": self.burst_fraction,
            "mean_burst_s": self.mean_burst_s,
            "diurnal_period_s": self.diurnal_period_s,
            "diurnal_depth": self.diurnal_depth,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TrafficConfig":
        kwargs = dict(payload)
        kwargs["class_mix"] = tuple(
            (str(name), float(share)) for name, share in kwargs["class_mix"]
        )
        kwargs["admit_factor"] = tuple(
            (str(name), float(factor)) for name, factor in kwargs["admit_factor"]
        )
        kwargs["burst_sigma"] = tuple(
            (str(name), float(sigma)) for name, sigma in kwargs["burst_sigma"]
        )
        kwargs["tenant_weights"] = tuple(float(w) for w in kwargs["tenant_weights"])
        return cls(**kwargs)


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's admission profile, carried in the trace header."""

    slo: str
    weight: float
    rate: float | None
    burst: float


@dataclass(frozen=True)
class TrafficRequest:
    """One generated arrival: when, who, and what to rerank."""

    arrival: float
    tenant: str
    slo: str
    k: int
    query: RerankQuery


@dataclass
class TrafficTrace:
    """A generated workload: config + tenant directory + arrivals."""

    config: TrafficConfig
    tenants: dict[str, TenantProfile] = field(default_factory=dict)
    requests: list[TrafficRequest] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def arriving_tenants(self) -> set[str]:
        """Tenants with at least one arrival in this trace."""
        return {request.tenant for request in self.requests}


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------
def _poisson_arrivals(rng: np.random.Generator, rate: float, duration: float) -> list[float]:
    arrivals = []
    t = float(rng.exponential(1.0 / rate))
    while t < duration:
        arrivals.append(t)
        t += float(rng.exponential(1.0 / rate))
    return arrivals


def _mmpp_arrivals(rng: np.random.Generator, cfg: TrafficConfig) -> list[float]:
    """Two-state MMPP: calm/burst phases with exponential sojourns.

    The calm intensity is chosen so the long-run mean matches
    ``rate_rps``: ``mean = (1-f)·c + f·c·m`` with burst fraction ``f``
    and multiplier ``m``.
    """
    f, m = cfg.burst_fraction, cfg.burst_multiplier
    calm_rate = cfg.rate_rps / (1.0 - f + f * m)
    mean_calm_s = cfg.mean_burst_s * (1.0 - f) / f
    arrivals: list[float] = []
    t, bursting = 0.0, False
    while t < cfg.duration_s:
        sojourn = float(
            rng.exponential(cfg.mean_burst_s if bursting else mean_calm_s)
        )
        phase_end = min(t + sojourn, cfg.duration_s)
        rate = calm_rate * (m if bursting else 1.0)
        t += float(rng.exponential(1.0 / rate))
        while t < phase_end:
            arrivals.append(t)
            t += float(rng.exponential(1.0 / rate))
        t = phase_end
        bursting = not bursting
    return arrivals


def _diurnal_arrivals(rng: np.random.Generator, cfg: TrafficConfig) -> list[float]:
    """Sinusoidal non-homogeneous Poisson, sampled exactly by thinning."""
    period = cfg.diurnal_period_s if cfg.diurnal_period_s is not None else cfg.duration_s
    peak = cfg.rate_rps * (1.0 + cfg.diurnal_depth)
    arrivals = []
    t = float(rng.exponential(1.0 / peak))
    while t < cfg.duration_s:
        intensity = cfg.rate_rps * (
            1.0 + cfg.diurnal_depth * math.sin(2.0 * math.pi * t / period)
        )
        if rng.random() < intensity / peak:
            arrivals.append(t)
        t += float(rng.exponential(1.0 / peak))
    return arrivals


def _arrivals(rng: np.random.Generator, cfg: TrafficConfig) -> list[float]:
    if cfg.process == "poisson":
        return _poisson_arrivals(rng, cfg.rate_rps, cfg.duration_s)
    if cfg.process == "mmpp":
        return _mmpp_arrivals(rng, cfg)
    return _diurnal_arrivals(rng, cfg)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------
def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def generate_traffic(config: TrafficConfig) -> TrafficTrace:
    """Generate one multi-tenant workload trace from a config.

    Deterministic: one :class:`numpy.random.Generator` seeded from
    ``config.seed`` drives every draw, in a fixed order.  Candidate
    sets are heavy-tailed (Pareto) truncations of a shared Zipf-hot
    base-query pool, so repeats stay memo-hittable for the §12 plane.
    """
    rng = np.random.default_rng(config.seed)
    tenant_p = _zipf_weights(config.num_tenants, config.tenant_zipf_s)
    mix_names = [name for name, _ in config.class_mix]
    mix_shares = np.array([share for _, share in config.class_mix], dtype=np.float64)
    factors = dict(config.admit_factor)
    sigmas = dict(config.burst_sigma)
    tenants: dict[str, TenantProfile] = {}
    tenant_ids = [f"t{i:04d}" for i in range(config.num_tenants)]
    for i, tenant in enumerate(tenant_ids):
        slo = mix_names[int(rng.choice(len(mix_names), p=mix_shares))]
        weight = float(rng.choice(np.asarray(config.tenant_weights)))
        # Token rate proportional to the tenant's own expected traffic,
        # scaled by its class's admit factor; burst deep enough to
        # absorb a sigma-sized Poisson overshoot (see TrafficConfig).
        expected = float(tenant_p[i]) * config.rate_rps * config.duration_s
        rate = factors[slo] * float(tenant_p[i]) * config.rate_rps
        burst = max(config.burst, sigmas.get(slo, 0.0) * math.sqrt(expected))
        tenants[tenant] = TenantProfile(
            slo=slo, weight=weight, rate=rate, burst=burst
        )

    base_queries = []
    for qi in range(config.num_base_queries):
        relevance = rng.uniform(0.05, 0.95, size=config.max_candidates)
        base_queries.append(
            make_query(
                rng,
                query_id=qi,
                labels=relevance >= 0.5,
                relevance=relevance,
                query_length=config.query_length,
                doc_length_mean=config.doc_length_mean,
            )
        )
    query_p = _zipf_weights(config.num_base_queries, config.query_zipf_s)

    arrivals = _arrivals(rng, config)
    truncated: dict[tuple[int, int], RerankQuery] = {}
    requests: list[TrafficRequest] = []
    for arrival in arrivals:
        ti = int(rng.choice(config.num_tenants, p=tenant_p))
        tenant = tenant_ids[ti]
        qi = int(rng.choice(config.num_base_queries, p=query_p))
        tail = float(rng.pareto(config.candidate_tail))
        size = min(
            config.max_candidates,
            max(config.min_candidates, int(config.min_candidates * (1.0 + tail))),
        )
        key = (qi, size)
        if key not in truncated:
            base = base_queries[qi]
            truncated[key] = (
                base
                if size >= base.num_candidates
                else replace(base, candidates=base.candidates[:size])
            )
        requests.append(
            TrafficRequest(
                arrival=float(arrival),
                tenant=tenant,
                slo=tenants[tenant].slo,
                k=config.k,
                query=replace(truncated[key], tenant=tenant),
            )
        )
    return TrafficTrace(config=config, tenants=tenants, requests=requests)


# ---------------------------------------------------------------------------
# the JSONL artifact (repro.traffic v1)
# ---------------------------------------------------------------------------
def _query_to_payload(query: RerankQuery) -> dict[str, Any]:
    # Mirrors repro.core.trace.query_to_payload (kept local so the data
    # layer does not import the serving core); the tenant tag rides the
    # request line, not the query payload.
    return {
        "query_id": query.query_id,
        "seed": query.seed,
        "query_length": query.query_length,
        "candidates": [
            [c.uid, c.seed, c.length, c.relevance, bool(c.is_relevant)]
            for c in query.candidates
        ],
    }


def _query_from_payload(payload: Mapping[str, Any], tenant: str | None) -> RerankQuery:
    return RerankQuery(
        query_id=int(payload["query_id"]),
        seed=int(payload["seed"]),
        query_length=int(payload["query_length"]),
        candidates=tuple(
            CandidateSpec(
                uid=int(uid),
                seed=int(seed),
                length=int(length),
                relevance=float(relevance),
                is_relevant=bool(is_relevant),
            )
            for uid, seed, length, relevance, is_relevant in payload["candidates"]
        ),
        tenant=tenant,
    )


def render_traffic(trace: TrafficTrace) -> str:
    """The canonical JSONL artifact: schema header + one line per request."""
    header = {
        "schema": TRAFFIC_SCHEMA,
        "version": TRAFFIC_VERSION,
        "config": trace.config.to_payload(),
        "tenants": {
            tenant: {
                "slo": profile.slo,
                "weight": profile.weight,
                "rate": profile.rate,
                "burst": profile.burst,
            }
            for tenant, profile in trace.tenants.items()
        },
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for request in trace.requests:
        lines.append(
            json.dumps(
                {
                    "arrival": request.arrival,
                    "tenant": request.tenant,
                    "slo": request.slo,
                    "k": request.k,
                    "query": _query_to_payload(request.query),
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + "\n"


def parse_traffic(text: str) -> TrafficTrace:
    """Parse a ``repro.traffic`` v1 JSONL artifact back into a trace."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty traffic trace: no schema header")
    header = json.loads(lines[0])
    if header.get("schema") != TRAFFIC_SCHEMA:
        raise ValueError(
            f"not a {TRAFFIC_SCHEMA} file (schema={header.get('schema')!r})"
        )
    if header.get("version") != TRAFFIC_VERSION:
        raise ValueError(
            f"traffic version {header.get('version')!r} != supported {TRAFFIC_VERSION}"
        )
    tenants = {
        tenant: TenantProfile(
            slo=str(entry["slo"]),
            weight=float(entry["weight"]),
            rate=None if entry.get("rate") is None else float(entry["rate"]),
            burst=float(entry["burst"]),
        )
        for tenant, entry in header.get("tenants", {}).items()
    }
    requests = []
    for line in lines[1:]:
        entry = json.loads(line)
        tenant = str(entry["tenant"])
        requests.append(
            TrafficRequest(
                arrival=float(entry["arrival"]),
                tenant=tenant,
                slo=str(entry["slo"]),
                k=int(entry["k"]),
                query=_query_from_payload(entry["query"], tenant),
            )
        )
    return TrafficTrace(
        config=TrafficConfig.from_payload(header["config"]),
        tenants=tenants,
        requests=requests,
    )


def write_traffic_trace(trace: TrafficTrace, path: str | Path) -> str:
    text = render_traffic(trace)
    Path(path).write_text(text)
    return text


def read_traffic_trace(path: str | Path) -> TrafficTrace:
    return parse_traffic(Path(path).read_text())


def is_traffic_file(path: str | Path) -> bool:
    """Cheap sniff: does the file start with a repro.traffic header?"""
    try:
        with open(path, "r") as handle:
            first = handle.readline()
        header = json.loads(first)
    except (OSError, ValueError):
        return False
    # A legacy request file starts with a JSON list, not a header object.
    return isinstance(header, dict) and header.get("schema") == TRAFFIC_SCHEMA


@dataclass
class TrafficSummary:
    """Aggregate view of one trace (``cli traffic summary``)."""

    num_requests: int
    duration_s: float
    mean_rate_rps: float
    num_tenants: int
    arriving_tenants: int
    per_class: dict[str, int]
    candidate_sizes: tuple[int, int, float]  # (min, max, mean)


def summarize_traffic(trace: TrafficTrace) -> TrafficSummary:
    per_class: dict[str, int] = {}
    for request in trace.requests:
        per_class[request.slo] = per_class.get(request.slo, 0) + 1
    sizes = [request.query.num_candidates for request in trace.requests]
    span = max((r.arrival for r in trace.requests), default=0.0)
    return TrafficSummary(
        num_requests=len(trace.requests),
        duration_s=trace.config.duration_s,
        mean_rate_rps=(len(trace.requests) / span) if span > 0 else 0.0,
        num_tenants=trace.config.num_tenants,
        arriving_tenants=len(trace.arriving_tenants()),
        per_class=per_class,
        candidate_sizes=(
            (min(sizes), max(sizes), float(np.mean(sizes))) if sizes else (0, 0, 0.0)
        ),
    )
