"""HF Offload baseline: Accelerate-style disk offloading.

The paper's second baseline offloads *all transformer layers* to disk
via HuggingFace Accelerate and loads each "right before execution"
(§6.1).  Key behaviours reproduced here:

* the embedding table and head stay resident (Accelerate keeps
  non-offloaded modules in memory);
* each layer's weights are read **synchronously** immediately before
  that layer executes and released right after — there is no prefetch,
  so every load sits on the critical path;
* because execution proceeds mini-batch by mini-batch with no global
  view, the full layer sequence is re-loaded **for every mini-batch** —
  this is what makes HF Offload dramatically slower than in-memory HF
  on multi-batch pools (Figures 8/9) and what PRISM's monolithic batch
  + overlapped streaming eliminates.
"""

from __future__ import annotations

import numpy as np

from ..device.memory import (
    CATEGORY_EMBEDDING,
    CATEGORY_HIDDEN,
    CATEGORY_INTERMEDIATE,
    CATEGORY_WEIGHTS,
)
from ..device.platforms import Device
from ..model import costs
from ..model.transformer import CandidateBatch, CrossEncoderModel
from ..core.chunking import iter_chunks
from ..core.engine import EngineBase, RerankResult, TaskContext
from .hf import DEFAULT_BATCH_SIZE


#: Accelerate's disk offloading deserialises parameter-by-parameter
#: through Python rather than issuing raw sequential reads; measured
#: effective throughput is well under the device's sequential bandwidth.
DESERIALIZE_EFFICIENCY = 0.55


class HFOffloadEngine(EngineBase):
    """HF + Accelerate disk offloading (synchronous per-layer loads)."""

    name = "hf_offload"

    def __init__(
        self,
        model: CrossEncoderModel,
        device: Device,
        batch_size: int = DEFAULT_BATCH_SIZE,
        quantized: bool = False,
        numerics: bool = True,
        deserialize_efficiency: float = DESERIALIZE_EFFICIENCY,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0 < deserialize_efficiency <= 1:
            raise ValueError("deserialize_efficiency must lie in (0, 1]")
        super().__init__(model, device, quantized=quantized)
        self.batch_size = batch_size
        self.numerics = numerics
        self.deserialize_efficiency = deserialize_efficiency

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        memory = self.device.memory
        memory.alloc("classifier", self.store.classifier_nbytes(), CATEGORY_WEIGHTS)
        emb_bytes = self.store.embedding_nbytes()
        self.executor.read_blocking("load/embedding", emb_bytes)
        memory.alloc("embedding-table", emb_bytes, CATEGORY_EMBEDDING)

    # ------------------------------------------------------------------
    def _task_impl(self, batch: CandidateBatch, k: int, ctx: TaskContext):
        """One step per (mini-batch, layer); yields at layer boundaries."""
        cfg = self.model.config
        memory = self.device.memory
        seq_len = self._effective_seq_len(batch)
        t0, stall0 = self.executor.now, self.executor.io_stall_seconds

        hidden_tag = ctx.tag("hidden")
        inter_tag = ctx.tag("intermediates")
        all_scores = np.empty(batch.size)
        layers_executed = 0
        candidate_layers = 0
        for mini in iter_chunks(batch.size, self.batch_size):
            sub = batch.select(mini)
            hidden_bytes = mini.size * costs.hidden_state_bytes_per_candidate(cfg, seq_len)
            memory.alloc(hidden_tag, hidden_bytes, CATEGORY_HIDDEN)
            self._charge_embedding(mini.size, seq_len)
            state = self.model.embed(sub, numerics=self.numerics)
            for layer in range(cfg.num_layers):
                tag = ctx.tag(self.store.layer_tag(layer))
                nbytes = self.store.layer_nbytes(layer)
                memory.alloc(tag, nbytes, CATEGORY_WEIGHTS)
                # Charge the read at Accelerate's effective throughput.
                self.executor.read_blocking(
                    f"load/{tag}", int(nbytes / self.deserialize_efficiency)
                )
                inter_bytes = mini.size * costs.intermediate_bytes_per_candidate(cfg, seq_len)
                memory.alloc(inter_tag, inter_bytes, CATEGORY_INTERMEDIATE)
                self._charge_layer_chunk(mini.size, seq_len)
                memory.free(inter_tag)
                memory.free(tag)
                self._forward_layer(state, layer)
                layers_executed += 1
                candidate_layers += int(mini.size)
                yield layer  # preemption point: one layer advanced
            self._charge_classifier(int(mini.size))
            all_scores[mini] = self.model.score(state)
            memory.free(hidden_tag)

        order = np.argsort(-all_scores)[:k]
        return RerankResult(
            top_indices=order.astype(np.int64),
            top_scores=all_scores[order],
            latency_seconds=self.executor.now - t0,
            layers_executed=layers_executed,
            candidate_layers=candidate_layers,
            io_stall_seconds=self.executor.io_stall_seconds - stall0,
        )
