"""Comparison systems: HF, HF Offload, HF Quant, PRISM Quant (§6.1)."""

from .hf import DEFAULT_BATCH_SIZE, HFEngine
from .hf_offload import HFOffloadEngine
from .quant import (
    HFOffloadQuantEngine,
    HFQuantEngine,
    QuantizedTensor,
    QuantizedWeights,
    prism_quant_engine,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "HFEngine",
    "HFOffloadEngine",
    "HFOffloadQuantEngine",
    "HFQuantEngine",
    "QuantizedTensor",
    "QuantizedWeights",
    "prism_quant_engine",
]
