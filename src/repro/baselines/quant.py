"""W4A16 quantization (GPTQ-style) and the quantized engine variants.

The paper evaluates post-training quantization both as a baseline
("HF Quant": vanilla HF over W4A16 weights) and composed with PRISM
("PRISM Quant"), showing the techniques are orthogonal (§6.2, §7).

Modelled effects (see :mod:`repro.device.compute` and
:mod:`repro.model.costs`):

* linear-layer weights shrink to 4-bit payloads plus per-group scale
  overhead (≈4× smaller resident/transferred bytes);
* embedding rows stay fp16 (standard GPTQ practice);
* prefill compute picks up a dequantization overhead on edge devices
  that lack INT4 matmul paths — so HF Quant is slightly *slower* than
  in-memory HF while far smaller, matching Figure 8/9.

:class:`QuantizedWeights` also provides real numpy per-channel 4-bit
quantize/dequantize used by tests to confirm the numerics error stays
small (the precision deltas in Table 3's quant rows are tiny).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.platforms import Device
from ..model.transformer import CrossEncoderModel
from ..core.config import PrismConfig
from ..core.engine import PrismEngine
from .hf import DEFAULT_BATCH_SIZE, HFEngine
from .hf_offload import HFOffloadEngine


@dataclass
class QuantizedTensor:
    """A per-channel 4-bit quantized matrix with fp scales."""

    qweight: np.ndarray  # int8 storage of 4-bit codes, same shape as original
    scales: np.ndarray  # per-output-channel scale
    zeros: np.ndarray  # per-output-channel zero point (in code space)

    def dequantize(self) -> np.ndarray:
        return (self.qweight.astype(np.float64) - self.zeros) * self.scales


class QuantizedWeights:
    """Per-channel symmetric-range 4-bit quantizer (GPTQ-like RTN)."""

    LEVELS = 16

    @classmethod
    def quantize(cls, weight: np.ndarray) -> QuantizedTensor:
        """Quantize a 2-D matrix per output channel (last axis)."""
        if weight.ndim != 2:
            raise ValueError("expected a 2-D weight matrix")
        w_min = weight.min(axis=0, keepdims=True)
        w_max = weight.max(axis=0, keepdims=True)
        span = np.maximum(w_max - w_min, 1e-12)
        scales = span / (cls.LEVELS - 1)
        zeros = np.round(-w_min / scales)
        codes = np.clip(np.round(weight / scales + zeros), 0, cls.LEVELS - 1)
        return QuantizedTensor(
            qweight=codes.astype(np.int8), scales=scales, zeros=zeros
        )

    @classmethod
    def roundtrip_error(cls, weight: np.ndarray) -> float:
        """Max absolute quantize→dequantize error (tests bound this)."""
        deq = cls.quantize(weight).dequantize()
        return float(np.abs(deq - weight).max())


class HFQuantEngine(HFEngine):
    """HF baseline over W4A16 weights (the paper's "HF Quant")."""

    name = "hf_quant"

    def __init__(
        self,
        model: CrossEncoderModel,
        device: Device,
        batch_size: int = DEFAULT_BATCH_SIZE,
        numerics: bool = True,
    ) -> None:
        super().__init__(model, device, batch_size=batch_size, quantized=True, numerics=numerics)


class HFOffloadQuantEngine(HFOffloadEngine):
    """HF Offload over W4A16 weights (used in sensitivity studies)."""

    name = "hf_offload_quant"

    def __init__(
        self,
        model: CrossEncoderModel,
        device: Device,
        batch_size: int = DEFAULT_BATCH_SIZE,
        numerics: bool = True,
    ) -> None:
        super().__init__(model, device, batch_size=batch_size, quantized=True, numerics=numerics)


def prism_quant_engine(
    model: CrossEncoderModel, device: Device, config: PrismConfig | None = None
) -> PrismEngine:
    """Build the paper's "PRISM Quant": all PRISM techniques over W4A16."""
    if config is None:
        config = PrismConfig.quant()
    elif not config.quantized:
        raise ValueError("PRISM Quant requires a quantized PrismConfig")
    engine = PrismEngine(model, device, config)
    engine.name = "prism_quant"
    return engine
