"""HF baseline: vanilla HuggingFace-Transformers-style inference.

This is the paper's primary comparison point (§6.1): fully in-memory
execution with the PyTorch backend.  Its policy:

* **everything resident** — all transformer layers, the full embedding
  table and the head are loaded at startup and stay in memory;
* **fixed-size mini-batches** — conventional reranker stacks split the
  candidate pool into batches "to balance computation and memory"
  (paper footnote 1; e.g. sentence-transformers' CrossEncoder defaults
  to modest batch sizes), so each mini-batch runs the *full* L-layer
  forward pass independently, with no global view across batches — the
  design monolithic forwarding replaces;
* **no pruning** — every candidate pays for every layer.

Memory behaviour: peak = resident weights + one mini-batch's hidden
states + one layer's transient intermediates, which reproduces the HF
curves of Figure 9/16.
"""

from __future__ import annotations

import numpy as np

from ..device.memory import (
    CATEGORY_EMBEDDING,
    CATEGORY_HIDDEN,
    CATEGORY_INTERMEDIATE,
    CATEGORY_WEIGHTS,
)
from ..device.platforms import Device
from ..model import costs
from ..model.transformer import CandidateBatch, CrossEncoderModel
from ..core.chunking import iter_chunks
from ..core.engine import EngineBase, RerankResult, TaskContext

#: Framework-default mini-batch size (footnote 1 of the paper; reranker
#: stacks split candidate pools into modest fixed batches to balance
#: computation and memory).
DEFAULT_BATCH_SIZE = 16


class HFEngine(EngineBase):
    """Vanilla in-memory inference in fixed mini-batches."""

    name = "hf"

    def __init__(
        self,
        model: CrossEncoderModel,
        device: Device,
        batch_size: int = DEFAULT_BATCH_SIZE,
        quantized: bool = False,
        numerics: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        super().__init__(model, device, quantized=quantized)
        self.batch_size = batch_size
        self.numerics = numerics

    # ------------------------------------------------------------------
    def _prepare_impl(self) -> None:
        memory = self.device.memory
        memory.alloc("classifier", self.store.classifier_nbytes(), CATEGORY_WEIGHTS)
        emb_bytes = self.store.embedding_nbytes()
        self.executor.read_blocking("load/embedding", emb_bytes)
        memory.alloc("embedding-table", emb_bytes, CATEGORY_EMBEDDING)
        for layer in range(self.model.config.num_layers):
            nbytes = self.store.layer_nbytes(layer)
            self.executor.read_blocking(f"load/{self.store.layer_tag(layer)}", nbytes)
            memory.alloc(self.store.layer_tag(layer), nbytes, CATEGORY_WEIGHTS)

    # ------------------------------------------------------------------
    def _task_impl(self, batch: CandidateBatch, k: int, ctx: TaskContext):
        """One step per (mini-batch, layer); yields at layer boundaries."""
        cfg = self.model.config
        memory = self.device.memory
        seq_len = self._effective_seq_len(batch)
        t0, stall0 = self.executor.now, self.executor.io_stall_seconds

        hidden_tag = ctx.tag("hidden")
        inter_tag = ctx.tag("intermediates")
        all_scores = np.empty(batch.size)
        layers_executed = 0
        candidate_layers = 0
        for mini in iter_chunks(batch.size, self.batch_size):
            sub = batch.select(mini)
            hidden_bytes = mini.size * costs.hidden_state_bytes_per_candidate(cfg, seq_len)
            memory.alloc(hidden_tag, hidden_bytes, CATEGORY_HIDDEN)
            self._charge_embedding(mini.size, seq_len)
            state = self.model.embed(sub, numerics=self.numerics)
            for layer in range(cfg.num_layers):
                inter_bytes = mini.size * costs.intermediate_bytes_per_candidate(cfg, seq_len)
                memory.alloc(inter_tag, inter_bytes, CATEGORY_INTERMEDIATE)
                self._charge_layer_chunk(mini.size, seq_len)
                memory.free(inter_tag)
                self._forward_layer(state, layer)
                layers_executed += 1
                candidate_layers += int(mini.size)
                yield layer  # preemption point: one layer advanced
            self._charge_classifier(int(mini.size))
            all_scores[mini] = self.model.score(state)
            memory.free(hidden_tag)

        order = np.argsort(-all_scores)[:k]
        return RerankResult(
            top_indices=order.astype(np.int64),
            top_scores=all_scores[order],
            latency_seconds=self.executor.now - t0,
            layers_executed=layers_executed,
            candidate_layers=candidate_layers,
            io_stall_seconds=self.executor.io_stall_seconds - stall0,
        )
