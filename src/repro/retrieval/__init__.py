"""RAG retrieval substrate: corpus, BM25, bi-encoder, vector indexes, hybrid."""

from .biencoder import EMBED_DIM, BiEncoder, EmbeddingModelSpec
from .bm25 import BM25Index, BM25Stats, RetrievalHit
from .corpus import CorpusQuery, Document, SyntheticCorpus
from .hybrid import HybridRetriever, RetrievedPool
from .vector_index import FlatIndex, IVFIndex, SearchOutcome, recall_at_n

__all__ = [
    "BM25Index",
    "BM25Stats",
    "BiEncoder",
    "CorpusQuery",
    "Document",
    "EMBED_DIM",
    "EmbeddingModelSpec",
    "FlatIndex",
    "HybridRetriever",
    "IVFIndex",
    "RetrievalHit",
    "RetrievedPool",
    "SearchOutcome",
    "SyntheticCorpus",
    "recall_at_n",
]
