"""Synthetic document corpus with topical structure.

The RAG evaluation (§6.3, Figure 11) retrieves from a personal-data
corpus with both keyword search and vector search before reranking.
Offline, we mint a corpus whose documents carry *topical structure*:

* every document belongs to one topic and draws a configurable share of
  its words from that topic's private vocabulary, the rest from a
  shared Zipfian background;
* queries target a topic, using topic words, so term overlap (BM25) and
  embedding similarity (bi-encoder) both carry genuine signal;
* each (query, document) pair has a **true semantic relevance** derived
  from the topic relation (same topic > adjacent topic > unrelated),
  which is what the cross-encoder's score process converges to and what
  Precision@K is measured against.

The structure deliberately mirrors the tiered pools of
:mod:`repro.data.relevance`, so the reranker sees the same cluster
geometry whether candidates come from dataset generators or from this
retrieval stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Relevance tiers by topic relation (same / adjacent / unrelated).
SAME_TOPIC_RELEVANCE = (0.82, 0.07)
ADJACENT_TOPIC_RELEVANCE = (0.58, 0.09)
UNRELATED_RELEVANCE = (0.18, 0.07)

#: Perceived relevance above which a reranker score reads as a
#: confident match (used by applications' accept decisions).
RELEVANT_THRESHOLD = 0.7


@dataclass(frozen=True)
class Document:
    """One corpus document."""

    doc_id: int
    topic_id: int
    words: tuple[str, ...]
    #: Fraction of words drawn from the topic vocabulary (readability of
    #: the topical signal; low-purity documents are hard for retrieval).
    purity: float

    @property
    def text(self) -> str:
        return " ".join(self.words)

    def __len__(self) -> int:
        return len(self.words)


@dataclass(frozen=True)
class CorpusQuery:
    """A query against the corpus, with per-document ground truth."""

    query_id: int
    topic_id: int
    words: tuple[str, ...]
    #: True semantic relevance per doc_id (what the reranker converges to).
    relevance: np.ndarray
    #: Boolean ground-truth labels per doc_id.
    labels: np.ndarray
    #: Documents the answer actually requires (drives RAG answer accuracy).
    needed: tuple[int, ...] = ()

    @property
    def text(self) -> str:
        return " ".join(self.words)

    def relevant_ids(self) -> np.ndarray:
        return np.flatnonzero(self.labels)


@dataclass
class SyntheticCorpus:
    """A topical document collection plus query generator.

    Parameters
    ----------
    num_docs:
        Corpus size.
    num_topics:
        Number of topics; documents are assigned round-robin with
        jittered purity.  Topics are arranged on a ring: topic *t* is
        "adjacent" to *t±1*, giving mid-tier semantic relevance.
        Keep docs-per-topic near the retriever's per-arm budget
        (≈10) so hybrid retrieval can cover a topic — the regime the
        paper's RAG pipeline operates in.
    words_per_doc:
        Mean document length in words.
    seed:
        Generator seed; everything downstream is deterministic in it.
    """

    num_docs: int = 400
    num_topics: int = 20
    words_per_doc: int = 460
    topic_vocab_size: int = 160
    common_vocab_size: int = 2400
    seed: int = 0xC0B9
    documents: list[Document] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.num_docs <= 0 or self.num_topics <= 0:
            raise ValueError("num_docs and num_topics must be positive")
        if self.num_topics > self.num_docs:
            raise ValueError("cannot have more topics than documents")
        self._rng = np.random.default_rng(np.random.SeedSequence([0x0C0, self.seed]))
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _topic_word(self, topic_id: int, index: int) -> str:
        return f"t{topic_id:03d}w{index:03d}"

    def _common_word(self, index: int) -> str:
        return f"c{index:04d}"

    def _draw_words(self, topic_id: int, count: int, purity: float) -> tuple[str, ...]:
        rng = self._rng
        words = []
        # Zipf-skewed background draw keeps the common band realistic.
        zipf_weights = 1.0 / np.arange(1, self.common_vocab_size + 1)
        zipf_weights /= zipf_weights.sum()
        for _ in range(count):
            if rng.random() < purity:
                words.append(self._topic_word(topic_id, int(rng.integers(self.topic_vocab_size))))
            else:
                words.append(self._common_word(int(rng.choice(self.common_vocab_size, p=zipf_weights))))
        return tuple(words)

    def _build(self) -> None:
        rng = self._rng
        for doc_id in range(self.num_docs):
            topic_id = doc_id % self.num_topics
            purity = float(np.clip(rng.normal(0.42, 0.10), 0.10, 0.80))
            length = int(np.clip(rng.normal(self.words_per_doc, 10), 16, 4 * self.words_per_doc))
            self.documents.append(
                Document(
                    doc_id=doc_id,
                    topic_id=topic_id,
                    words=self._draw_words(topic_id, length, purity),
                    purity=purity,
                )
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def topic_relation(self, query_topic: int, doc_topic: int) -> str:
        """Relation class between a query topic and a document topic."""
        if query_topic == doc_topic:
            return "same"
        ring_distance = min(
            abs(query_topic - doc_topic),
            self.num_topics - abs(query_topic - doc_topic),
        )
        return "adjacent" if ring_distance == 1 else "unrelated"

    def make_query(self, query_id: int, topic_id: int | None = None, length: int = 8) -> CorpusQuery:
        """Mint one query targeting a topic, with full ground truth."""
        rng = np.random.default_rng(np.random.SeedSequence([0x9E4, self.seed, query_id]))
        if topic_id is None:
            topic_id = int(rng.integers(self.num_topics))
        if not 0 <= topic_id < self.num_topics:
            raise ValueError(f"topic_id {topic_id} outside [0, {self.num_topics})")
        words = tuple(
            self._topic_word(topic_id, int(rng.integers(self.topic_vocab_size)))
            for _ in range(length)
        )
        relevance = np.empty(self.num_docs)
        labels = np.zeros(self.num_docs, dtype=bool)
        for doc in self.documents:
            relation = self.topic_relation(topic_id, doc.topic_id)
            if relation == "same":
                center, spread = SAME_TOPIC_RELEVANCE
                # Low-purity same-topic docs read as weaker matches —
                # they stay ground-truth relevant but the model may not
                # perceive them (the "invisible relevant" band that
                # keeps Precision@K below 1.0, cf. repro.data.relevance).
                # The modulation is bounded so same-topic docs remain a
                # coherent tier rather than a continuum.
                center = center * (0.90 + 0.18 * doc.purity)
                labels[doc.doc_id] = True
            elif relation == "adjacent":
                center, spread = ADJACENT_TOPIC_RELEVANCE
            else:
                center, spread = UNRELATED_RELEVANCE
            relevance[doc.doc_id] = np.clip(rng.normal(center, spread), 0.01, 0.99)

        # The answer hinges on a couple of specific documents; pick them
        # among the retrievable (high-purity) same-topic docs so coverage
        # measures selection quality rather than retrieval luck.
        same_topic = [d for d in self.documents if d.topic_id == topic_id]
        same_topic.sort(key=lambda d: -d.purity)
        needed = tuple(d.doc_id for d in same_topic[: min(2, len(same_topic))])
        return CorpusQuery(
            query_id=query_id,
            topic_id=topic_id,
            words=words,
            relevance=relevance,
            labels=labels,
            needed=needed,
        )

    def make_queries(self, num_queries: int, length: int = 8) -> list[CorpusQuery]:
        """A deterministic batch of queries cycling over topics."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        return [
            self.make_query(qid, topic_id=qid % self.num_topics, length=length)
            for qid in range(num_queries)
        ]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.documents)

    def document(self, doc_id: int) -> Document:
        if not 0 <= doc_id < self.num_docs:
            raise IndexError(f"doc_id {doc_id} outside corpus")
        return self.documents[doc_id]
