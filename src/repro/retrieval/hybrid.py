"""Hybrid retrieval: sparse + dense arms feeding the reranker.

The semantic-selection pipeline of Figure 1 retrieves ten candidates by
keyword search and ten by embedding search, then hands the merged pool
to the cross-encoder.  :class:`HybridRetriever` reproduces that stage:

* BM25 over the corpus (sparse arm);
* bi-encoder + vector index (dense arm, flat or IVF);
* dedup-merge of the two hit lists into one candidate pool;
* packing of the pool into the :class:`~repro.model.transformer.CandidateBatch`
  an engine consumes, carrying each document's *true* relevance for the
  semantic score process and Precision@K.

Retrieval latency is returned per arm so application pipelines can
charge it to the simulated clock and report the per-stage breakdown of
Figures 1 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.transformer import CandidateBatch
from ..text.tokenizer import Tokenizer
from .biencoder import BiEncoder
from .bm25 import BM25Index
from .corpus import CorpusQuery, SyntheticCorpus
from .vector_index import FlatIndex, IVFIndex, SearchOutcome


@dataclass
class RetrievedPool:
    """The merged candidate pool for one query."""

    query: CorpusQuery
    doc_ids: list[int]
    sparse_seconds: float
    dense_seconds: float
    #: ids that came from each arm (before dedup), for diagnostics
    sparse_ids: list[int]
    dense_ids: list[int]

    @property
    def size(self) -> int:
        return len(self.doc_ids)

    def relevance(self) -> np.ndarray:
        return self.query.relevance[self.doc_ids]

    def labels(self) -> np.ndarray:
        return self.query.labels[self.doc_ids]

    def recall(self) -> float:
        """Fraction of the query's relevant documents present in the pool."""
        relevant = set(self.query.relevant_ids().tolist())
        if not relevant:
            return 1.0
        return len(relevant & set(self.doc_ids)) / len(relevant)


class HybridRetriever:
    """Sparse+dense retrieval over a synthetic corpus.

    Parameters
    ----------
    corpus:
        The document collection.
    index_kind:
        ``"flat"`` for exact dense search, ``"ivf"`` for the
        approximate inverted-file index.
    per_arm:
        Candidates each arm contributes before dedup (paper: 10 + 10).
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        index_kind: str = "flat",
        per_arm: int = 10,
        embed_dim: int = 64,
        ivf_lists: int = 16,
        ivf_nprobe: int = 4,
    ) -> None:
        if per_arm <= 0:
            raise ValueError("per_arm must be positive")
        if index_kind not in ("flat", "ivf"):
            raise ValueError(f"unknown index kind {index_kind!r}")
        self.corpus = corpus
        self.per_arm = per_arm
        self.index_kind = index_kind

        self.bm25 = BM25Index()
        self.bm25.add_documents(corpus.documents)

        self.encoder = BiEncoder(dim=embed_dim)
        texts = [doc.words for doc in corpus.documents]
        self.encoder.fit(texts)
        vectors = self.encoder.embed_batch(texts)
        doc_ids = [doc.doc_id for doc in corpus.documents]
        if index_kind == "flat":
            self.vector_index: FlatIndex | IVFIndex = FlatIndex(embed_dim)
            self.vector_index.add_batch(doc_ids, vectors)
        else:
            self.vector_index = IVFIndex(embed_dim, num_lists=ivf_lists, nprobe=ivf_nprobe)
            self.vector_index.train(doc_ids, vectors)

    # ------------------------------------------------------------------
    def retrieve(self, query: CorpusQuery) -> RetrievedPool:
        """Run both arms and merge their hits (sparse first, stable order)."""
        sparse_hits, postings = self.bm25.search(query.words, top_n=self.per_arm)
        sparse_seconds = self.bm25.search_cost_seconds(postings)

        query_vec = self.encoder.embed(query.words)
        outcome: SearchOutcome = self.vector_index.search(query_vec, top_n=self.per_arm)
        dense_seconds = outcome.cost_seconds()

        sparse_ids = [hit.doc_id for hit in sparse_hits]
        dense_ids = outcome.ids()
        merged: list[int] = []
        seen: set[int] = set()
        for doc_id in sparse_ids + dense_ids:
            if doc_id not in seen:
                seen.add(doc_id)
                merged.append(doc_id)
        return RetrievedPool(
            query=query,
            doc_ids=merged,
            sparse_seconds=sparse_seconds,
            dense_seconds=dense_seconds,
            sparse_ids=sparse_ids,
            dense_ids=dense_ids,
        )

    # ------------------------------------------------------------------
    def build_batch(self, pool: RetrievedPool, tokenizer: Tokenizer, max_len: int) -> CandidateBatch:
        """Pack a retrieved pool for the reranker.

        ``uids`` are the corpus doc_ids (globally unique), so the
        semantic score process is consistent across queries that retrieve
        the same document.
        """
        query_ids = tokenizer.encode_text(pool.query.text)
        docs = [tokenizer.encode_text(self.corpus.document(d).text) for d in pool.doc_ids]
        tokens = tokenizer.batch_pairs(query_ids, docs, max_len)
        return CandidateBatch(
            tokens=tokens,
            lengths=tokenizer.attention_lengths(tokens),
            relevance=pool.relevance(),
            uids=np.array(pool.doc_ids, dtype=np.int64),
        )
