"""Vector indexes: exact flat search and IVF approximate search.

The paper's RAG pipeline uses DiskANN-based Milvus as its vector
database (§6.3).  Offline we provide the two canonical index designs
its role requires:

* :class:`FlatIndex` — exact cosine top-N via one matrix multiply; the
  precision reference.
* :class:`IVFIndex` — inverted-file approximate search: k-means coarse
  quantizer over the document vectors, queries probe the ``nprobe``
  nearest centroids and scan only those lists.  This reproduces the
  recall/latency dial real vector DBs expose.

Search cost is charged per distance computation, so the simulated
pipeline shows the same stage shape as Figure 1 (retrieval in
milliseconds, reranking dominating).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bm25 import RetrievalHit

#: Simulated time per (query · document) distance computation at the
#: small embedding dimension used by the bi-encoder.
SECONDS_PER_DISTANCE = 60e-9
#: Fixed per-query overhead (graph entry / centroid scan setup).
QUERY_OVERHEAD_SECONDS = 250e-6


@dataclass
class SearchOutcome:
    """Hits plus the work performed (for cost charging and tests)."""

    hits: list[RetrievalHit]
    distances_computed: int

    def cost_seconds(self) -> float:
        return QUERY_OVERHEAD_SECONDS + self.distances_computed * SECONDS_PER_DISTANCE

    def ids(self) -> list[int]:
        return [hit.doc_id for hit in self.hits]


class FlatIndex:
    """Exact cosine-similarity search over a dense matrix."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._ids: list[int] = []
        self._vectors: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    def add(self, doc_id: int, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector shape {vector.shape} != ({self.dim},)")
        self._ids.append(doc_id)
        self._vectors.append(vector)
        self._matrix = None  # invalidate

    def add_batch(self, doc_ids: list[int], vectors: np.ndarray) -> None:
        for doc_id, vector in zip(doc_ids, vectors):
            self.add(doc_id, vector)

    def __len__(self) -> int:
        return len(self._ids)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(self._vectors) if self._vectors else np.zeros((0, self.dim))
        return self._matrix

    def search(self, query: np.ndarray, top_n: int = 10) -> SearchOutcome:
        if top_n <= 0:
            raise ValueError("top_n must be positive")
        matrix = self._ensure_matrix()
        if matrix.shape[0] == 0:
            return SearchOutcome(hits=[], distances_computed=0)
        query = np.asarray(query, dtype=np.float64)
        sims = matrix @ query
        order = np.argsort(-sims)[:top_n]
        hits = [RetrievalHit(self._ids[i], float(sims[i])) for i in order]
        return SearchOutcome(hits=hits, distances_computed=matrix.shape[0])

    def memory_bytes(self, dtype_bytes: int = 4) -> int:
        return len(self._ids) * self.dim * dtype_bytes


def _kmeans_nd(vectors: np.ndarray, k: int, seed: int, max_iter: int = 25) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic multi-dimensional Lloyd's k-means → (centroids, labels)."""
    n = vectors.shape[0]
    k = min(k, n)
    rng = np.random.default_rng(np.random.SeedSequence([0x14F, seed]))
    centroids = vectors[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(max_iter):
        dists = np.linalg.norm(vectors[:, None, :] - centroids[None, :, :], axis=-1)
        new_labels = dists.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            members = vectors[labels == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
    return centroids, labels


class IVFIndex:
    """Inverted-file index: coarse k-means quantizer + probed lists.

    Parameters
    ----------
    num_lists:
        Number of coarse cells (the "nlist" of FAISS/Milvus).
    nprobe:
        Cells scanned per query; higher = better recall, more distance
        computations.
    """

    def __init__(self, dim: int, num_lists: int = 16, nprobe: int = 4, seed: int = 11) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if num_lists <= 0:
            raise ValueError("num_lists must be positive")
        if not 1 <= nprobe:
            raise ValueError("nprobe must be at least 1")
        self.dim = dim
        self.num_lists = num_lists
        self.nprobe = min(nprobe, num_lists)
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._lists: list[list[tuple[int, np.ndarray]]] = []
        self._trained = False

    @property
    def is_trained(self) -> bool:
        return self._trained

    def train(self, doc_ids: list[int], vectors: np.ndarray) -> None:
        """Cluster the corpus into cells and fill the inverted lists."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"vectors must be (N, {self.dim})")
        if vectors.shape[0] != len(doc_ids):
            raise ValueError("doc_ids and vectors must align")
        if vectors.shape[0] == 0:
            raise ValueError("cannot train on an empty corpus")
        centroids, labels = _kmeans_nd(vectors, self.num_lists, self.seed)
        self._centroids = centroids
        self._lists = [[] for _ in range(centroids.shape[0])]
        for doc_id, vector, label in zip(doc_ids, vectors, labels):
            self._lists[int(label)].append((doc_id, vector))
        self._trained = True

    def search(self, query: np.ndarray, top_n: int = 10) -> SearchOutcome:
        if not self._trained:
            raise RuntimeError("IVFIndex.search before train()")
        if top_n <= 0:
            raise ValueError("top_n must be positive")
        assert self._centroids is not None
        query = np.asarray(query, dtype=np.float64)
        # Probe the nearest centroids.
        centroid_sims = self._centroids @ query
        distances = int(self._centroids.shape[0])
        probe_order = np.argsort(-centroid_sims)[: self.nprobe]
        candidates: list[tuple[int, float]] = []
        for cell in probe_order:
            for doc_id, vector in self._lists[int(cell)]:
                candidates.append((doc_id, float(vector @ query)))
                distances += 1
        candidates.sort(key=lambda item: (-item[1], item[0]))
        hits = [RetrievalHit(doc_id, score) for doc_id, score in candidates[:top_n]]
        return SearchOutcome(hits=hits, distances_computed=distances)

    def list_sizes(self) -> list[int]:
        return [len(cell) for cell in self._lists]

    def memory_bytes(self, dtype_bytes: int = 4) -> int:
        if not self._trained:
            return 0
        assert self._centroids is not None
        vectors = sum(self.list_sizes())
        return (vectors + self._centroids.shape[0]) * self.dim * dtype_bytes


def recall_at_n(approx: SearchOutcome, exact: SearchOutcome, n: int) -> float:
    """Fraction of the exact top-N the approximate search recovered."""
    if n <= 0:
        raise ValueError("n must be positive")
    truth = set(exact.ids()[:n])
    if not truth:
        return 1.0
    found = set(approx.ids()[:n])
    return len(truth & found) / len(truth)
