"""Bi-encoder embedder (the RAG pipeline's dense arm).

The paper's RAG application embeds personal data with
Qwen3-Embedding-0.6B and retrieves by vector similarity (§6.3).  The
checkpoint is unavailable offline; this module substitutes a numpy
bi-encoder with the property that actually matters to the pipeline —
**cosine similarity tracks topical overlap** — while the *cost* of
embedding is charged at the paper-scale model's prefill FLOPs.

Embedding construction: every word hashes to a deterministic Gaussian
direction; a text's embedding is the idf-weighted sum of its word
vectors, L2-normalised.  Two documents sharing topic vocabulary point
the same way; unrelated documents are near-orthogonal in expectation
(random directions in high dimension).  This is exactly the geometry a
trained bi-encoder provides, minus the learned subtleties — which the
pipeline does not depend on, because the reranker (the system under
evaluation) re-scores every retrieved candidate anyway.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

#: Default embedding dimensionality (kept modest: cost accounting uses
#: the paper-scale model below, not this numerics dimension).
EMBED_DIM = 64


def _word_vector(word: str, dim: int) -> np.ndarray:
    """Deterministic unit-Gaussian direction for one word."""
    digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
    seed = int.from_bytes(digest, "little")
    rng = np.random.default_rng(seed)
    return rng.standard_normal(dim)


@dataclass(frozen=True)
class EmbeddingModelSpec:
    """Paper-scale description of the embedding model (cost accounting).

    Defaults describe Qwen3-Embedding-0.6B, the model the RAG
    experiment deploys (§6.3).
    """

    name: str = "qwen3-embedding-0.6b"
    num_layers: int = 28
    hidden_dim: int = 1024
    ffn_dim: int = 3072
    dtype_bytes: int = 2

    def params(self) -> int:
        per_layer = 4 * self.hidden_dim**2 + 3 * self.hidden_dim * self.ffn_dim
        return self.num_layers * per_layer

    def weight_bytes(self) -> int:
        return self.params() * self.dtype_bytes

    def prefill_flops(self, num_tokens: int) -> float:
        """Dense prefill FLOPs for one text of ``num_tokens``."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return 2.0 * self.params() * num_tokens


class BiEncoder:
    """Hash-based bi-encoder with idf term weighting.

    ``fit`` learns document frequencies from a corpus so that topical
    (rare) words dominate embeddings over common background words,
    mirroring how trained encoders suppress stopwords.
    """

    def __init__(self, dim: int = EMBED_DIM, spec: EmbeddingModelSpec | None = None) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.spec = spec or EmbeddingModelSpec()
        self._doc_freq: dict[str, int] = {}
        self._num_docs = 0
        self._vector_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def fit(self, documents: list[tuple[str, ...]]) -> None:
        """Record document frequencies for idf weighting."""
        for words in documents:
            self._num_docs += 1
            for word in set(words):
                self._doc_freq[word] = self._doc_freq.get(word, 0) + 1

    def idf(self, word: str) -> float:
        if self._num_docs == 0:
            return 1.0
        df = self._doc_freq.get(word, 0)
        return math.log(1.0 + (self._num_docs - df + 0.5) / (df + 0.5))

    # ------------------------------------------------------------------
    def embed(self, words: tuple[str, ...] | list[str]) -> np.ndarray:
        """Embed one text → unit vector of ``self.dim``."""
        if not words:
            return np.zeros(self.dim)
        acc = np.zeros(self.dim)
        for word in words:
            vec = self._vector_cache.get(word)
            if vec is None:
                vec = _word_vector(word, self.dim)
                self._vector_cache[word] = vec
            acc += self.idf(word) * vec
        norm = np.linalg.norm(acc)
        if norm == 0.0:
            return acc
        return acc / norm

    def embed_batch(self, texts: list[tuple[str, ...]]) -> np.ndarray:
        """Embed many texts → (N, dim) matrix of unit vectors."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(words) for words in texts])

    # ------------------------------------------------------------------
    @staticmethod
    def similarity(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two embeddings."""
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0.0 or nb == 0.0:
            return 0.0
        return float(a @ b / (na * nb))

    def embed_cost_flops(self, num_tokens: int) -> float:
        """Paper-scale prefill FLOPs to embed one text."""
        return self.spec.prefill_flops(num_tokens)
