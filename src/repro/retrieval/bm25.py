"""BM25 keyword retrieval (the RAG pipeline's sparse arm).

The paper's RAG application (§6.3) performs hybrid search: keyword
retrieval and embedding retrieval each select ten candidates before the
reranker consolidates them (Figure 1).  This module implements the
standard Okapi BM25 ranking function over an inverted index:

    score(q, d) = Σ_t idf(t) · tf(t, d)·(k1+1)
                  ────────────────────────────────────────
                  tf(t, d) + k1·(1 − b + b·|d|/avgdl)

with the usual robust idf ``log(1 + (N − df + 0.5)/(df + 0.5))``.

Retrieval cost on the simulated device is charged per posting visited,
which reproduces the paper's observation that the retrieval stages are
milliseconds while reranking dominates (Figure 1: 8 ms vs 5,754 ms).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from .corpus import Document

#: Simulated CPU time per posting-list entry visited during scoring.
SECONDS_PER_POSTING = 180e-9
#: Fixed per-query overhead (tokenisation, heap setup).
QUERY_OVERHEAD_SECONDS = 350e-6


@dataclass(frozen=True)
class RetrievalHit:
    """One scored document returned by a retriever."""

    doc_id: int
    score: float


@dataclass
class BM25Stats:
    """Index statistics (exposed for tests and capacity planning)."""

    num_documents: int
    num_terms: int
    num_postings: int
    avg_doc_length: float


class BM25Index:
    """Okapi BM25 over an in-memory inverted index.

    Parameters
    ----------
    k1, b:
        The standard BM25 free parameters (defaults follow Robertson's
        recommended ranges and Lucene's defaults).
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0 <= b <= 1:
            raise ValueError("b must lie in [0, 1]")
        self.k1 = k1
        self.b = b
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._total_length = 0

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def add(self, doc_id: int, words: tuple[str, ...] | list[str]) -> None:
        """Add one document; doc_ids must be unique."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"doc_id {doc_id} already indexed")
        counts = Counter(words)
        for term, tf in counts.items():
            self._postings.setdefault(term, []).append((doc_id, tf))
        self._doc_lengths[doc_id] = len(words)
        self._total_length += len(words)

    def add_documents(self, documents: list[Document]) -> None:
        for doc in documents:
            self.add(doc.doc_id, doc.words)

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def avg_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def stats(self) -> BM25Stats:
        return BM25Stats(
            num_documents=self.num_documents,
            num_terms=len(self._postings),
            num_postings=sum(len(p) for p in self._postings.values()),
            avg_doc_length=self.avg_doc_length,
        )

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """Robust BM25 idf (never negative)."""
        n, df = self.num_documents, self.document_frequency(term)
        if n == 0:
            return 0.0
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self, query_words: tuple[str, ...] | list[str], top_n: int = 10
    ) -> tuple[list[RetrievalHit], int]:
        """Score the query; returns (top hits best-first, postings visited)."""
        if top_n <= 0:
            raise ValueError("top_n must be positive")
        if self.num_documents == 0:
            return [], 0
        scores: dict[int, float] = {}
        postings_visited = 0
        avgdl = self.avg_doc_length
        for term in set(query_words):
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = self.idf(term)
            for doc_id, tf in postings:
                postings_visited += 1
                dl = self._doc_lengths[doc_id]
                denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl)
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * tf * (self.k1 + 1.0) / denom
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:top_n]
        return [RetrievalHit(doc_id, score) for doc_id, score in ranked], postings_visited

    def search_cost_seconds(self, postings_visited: int) -> float:
        """Simulated CPU time for one search given the postings touched."""
        if postings_visited < 0:
            raise ValueError("postings_visited must be non-negative")
        return QUERY_OVERHEAD_SECONDS + postings_visited * SECONDS_PER_POSTING

    def index_bytes(self) -> int:
        """Approximate resident size: postings (id + tf) at 8 bytes each
        plus term dictionary overhead."""
        postings = sum(len(p) for p in self._postings.values())
        terms = sum(len(t) + 24 for t in self._postings)
        return postings * 8 + terms


def bm25_scores_dense(index: BM25Index, query_words: tuple[str, ...], num_docs: int) -> np.ndarray:
    """Dense score vector over ``range(num_docs)`` (testing convenience)."""
    hits, _ = index.search(query_words, top_n=num_docs)
    out = np.zeros(num_docs)
    for hit in hits:
        out[hit.doc_id] = hit.score
    return out
