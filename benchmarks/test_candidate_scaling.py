"""Extension study — scaling with the candidate count.

§2.2: baseline latency scales linearly with N because every candidate
pays a full forward pass.  PRISM bends that curve (pruning removes most
candidates mid-pass) and §4.3's hidden-state offloading keeps the
memory envelope nearly flat as N grows into the hundreds.
"""

from conftest import run_once

from repro.data.datasets import get_dataset
from repro.harness.reporting import format_table, ms
from repro.harness.runner import run_system
from repro.model.zoo import QWEN3_0_6B

CANDIDATE_COUNTS = (10, 20, 40, 80, 160)


def test_candidate_scaling(benchmark, record_artifact):
    def sweep():
        rows = {}
        for n in CANDIDATE_COUNTS:
            queries = get_dataset("wikipedia").queries(2, n)
            hf = run_system("hf", QWEN3_0_6B, "nvidia_5070", queries, 10)
            prism = run_system("prism", QWEN3_0_6B, "nvidia_5070", queries, 10)
            rows[n] = (hf, prism)
        return rows

    rows = run_once(benchmark, sweep)
    record_artifact(
        "candidate_scaling",
        format_table(
            ("candidates", "HF latency", "PRISM latency", "HF peak MiB", "PRISM peak MiB"),
            [
                (
                    n,
                    ms(hf.mean_latency),
                    ms(prism.mean_latency),
                    f"{hf.peak_mib:.0f}",
                    f"{prism.peak_mib:.0f}",
                )
                for n, (hf, prism) in rows.items()
            ],
            title="Scaling with candidate count (top-10, len ~500)",
        ),
    )

    # HF latency is linear in N (§2.2): 8× candidates ≈ 8× latency.
    hf_ratio = rows[160][0].mean_latency / rows[20][0].mean_latency
    assert 6 < hf_ratio < 10

    # PRISM's curve is sublinear — pruning removes most of the added
    # candidates after a few layers.
    prism_ratio = rows[160][1].mean_latency / rows[20][1].mean_latency
    assert prism_ratio < hf_ratio

    # K ≥ N degenerates to immediate acceptance: the monolithic view
    # makes the trivial case nearly free.
    assert rows[10][1].mean_latency < 0.25 * rows[10][0].mean_latency

    # PRISM's memory envelope is nearly flat in N (hidden-state plans
    # and chunking absorb the growth).
    assert rows[160][1].peak_mib < 2.5 * rows[20][1].peak_mib

    # PRISM wins at every pool size.
    for n, (hf, prism) in rows.items():
        assert prism.mean_latency < hf.mean_latency, n
        assert prism.peak_mib < hf.peak_mib, n
