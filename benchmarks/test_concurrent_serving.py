"""Extension study — concurrent serving on one device (DESIGN.md §6).

A single device used to serve one request at a time; the step-based
execution core lets a DeviceScheduler multiplex several in-flight
requests at layer boundaries.  Under a mixed interactive/batch
workload, priority lanes should collapse the interactive tail while
total throughput stays put — the work is identical, merely reordered —
and, because candidate scores are independent of scheduling, every
request's selection stays byte-identical across policies.
"""

from conftest import BENCH_QUICK, run_once

from repro.harness.experiments import concurrent_serving

POLICIES = ("fifo", "round_robin", "priority")
NUM_INTERACTIVE = 4 if BENCH_QUICK else 8
NUM_BATCH = 2 if BENCH_QUICK else 4
MAX_CONCURRENCY = 3 if BENCH_QUICK else 6


def test_priority_lanes_cut_interactive_tail(benchmark, record_artifact, record_metrics):
    result = run_once(
        benchmark,
        concurrent_serving,
        policies=POLICIES,
        num_interactive=NUM_INTERACTIVE,
        num_batch=NUM_BATCH,
        max_concurrency=MAX_CONCURRENCY,
    )
    record_artifact("concurrent_serving", result.render())
    record_metrics(
        "concurrent_serving",
        {
            "num_interactive": NUM_INTERACTIVE,
            "num_batch": NUM_BATCH,
            "max_concurrency": MAX_CONCURRENCY,
        },
        {
            "policies": {
                point.policy: {
                    "throughput_rps": point.throughput_rps,
                    "interactive_p99_s": point.interactive_p99,
                    "batch_p99_s": point.batch_p99,
                    "makespan_s": point.makespan,
                    "fused_occupancy": point.fused_occupancy,
                    "ssd_saved_bytes": point.ssd_saved_bytes,
                }
                for point in result.points
            },
        },
    )

    fifo = result.find("fifo")
    priority = result.find("priority")

    # Acceptance bar: priority scheduling cuts interactive p99 well
    # below FIFO (the interactive lane no longer queues behind whole
    # batch passes — it preempts them at layer boundaries) ...
    assert priority.interactive_p99 < 0.5 * fifo.interactive_p99
    assert priority.interactive_p50 < 0.5 * fifo.interactive_p50

    # ... at equal total throughput: the same layer steps execute, the
    # schedule only reorders them, so the makespan barely moves.
    assert abs(priority.throughput_rps - fifo.throughput_rps) <= 0.02 * fifo.throughput_rps

    # The batch lane pays for the interactive lane's gain, but bounded:
    # it cannot lose more than the interactive work that cut in line.
    assert priority.batch_p99 <= 1.5 * fifo.batch_p99

    # Scheduling moves completion times only — per-request selections
    # are byte-identical across all compared policies (and, by §2
    # determinism, to solo execution; asserted in tests/test_scheduler.py).
    assert result.selections_identical

    # Interactive requests barely queue under priority scheduling.
    assert priority.mean_interactive_wait < 0.1 * fifo.mean_interactive_wait
