"""Extension study — shared weight plane + layer fusion (DESIGN.md §7).

PR 2's concurrency multiplies SSD weight traffic: N interleaved
requests each stream every layer privately, so the serialized I/O
stream reads the same bytes N times.  The shared weight plane fetches
each layer once per fused sweep and the ``fusion`` policy gang-steps
the group so the attach window never closes.  On an SSD-bound workload
(small pools, short documents — the regime where streaming is the
bottleneck) that must translate into a >=2x throughput win at ~1/N the
SSD weight bytes, with byte-identical selections.
"""

from conftest import run_once

from repro.harness.experiments import shared_weights_serving

# Already smoke-sized: a 4-request SSD-bound burst runs in well under a
# second, so the CI benchmark job (BENCH_QUICK) runs it at full size.
NUM_REQUESTS = 4
NUM_CANDIDATES = 6


def test_shared_plane_amortises_weight_streaming(benchmark, record_artifact, record_metrics):
    result = run_once(
        benchmark,
        shared_weights_serving,
        num_requests=NUM_REQUESTS,
        num_candidates=NUM_CANDIDATES,
    )
    record_artifact("shared_weights", result.render())

    private = result.find("round_robin")
    fused = result.find("fusion")
    record_metrics(
        "shared_weights",
        {"num_requests": NUM_REQUESTS, "num_candidates": NUM_CANDIDATES},
        {
            "solo_weight_bytes": result.solo_weight_bytes,
            "modes": {
                point.mode: {
                    "throughput_rps": point.throughput_rps,
                    "p99_latency_s": point.p99_latency,
                    "ssd_weight_bytes": point.weight_bytes,
                    "ssd_saved_bytes": point.saved_bytes,
                    "fused_occupancy": point.fused_occupancy,
                }
                for point in result.points
            },
        },
    )

    # Selections never depend on the serving mode — the plane and the
    # fusion schedule move bytes and completion times, nothing else.
    assert result.selections_identical

    # Acceptance bar (ISSUE 3): at N=4 concurrent same-model requests
    # the fused plane reads at most 1.1x one solo sweep's weight bytes,
    # where private streamers read ~Nx ...
    assert fused.weight_bytes <= 1.1 * result.solo_weight_bytes
    assert private.weight_bytes >= 3.0 * result.solo_weight_bytes

    # ... and turns the freed SSD bandwidth into >=2x throughput.
    assert fused.throughput_rps >= 2.0 * private.throughput_rps

    # The fused gang genuinely shares: most layer boundaries are
    # crossed by several requests back-to-back, and the redundant
    # bytes saved are first-class observables.
    assert fused.fused_occupancy >= 0.6 * NUM_REQUESTS
    assert fused.saved_bytes > 0

    # The plane alone (round_robin admission order) already captures
    # the sharing; fusion keeps parity while staying robust to skewed
    # arrivals (see scheduler tests).
    rr_plane = result.find("rr+plane")
    assert rr_plane.weight_bytes <= 1.1 * result.solo_weight_bytes
    assert rr_plane.throughput_rps >= 2.0 * private.throughput_rps
