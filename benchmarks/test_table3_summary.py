"""Table 3 — latency/precision summary over 5 models × 18 datasets ×
2 platforms × K ∈ {1, 5, 10}.

Paper shapes asserted here: PRISM reduces mean latency against every
baseline (up to 89.2 % vs HF-Offload in the best cells); HF cannot run
Qwen3-4B/8B on the edge platforms (OOM); precision losses stay tiny.
"""

import math

from conftest import run_once

from repro.data.datasets import ALL_DATASETS
from repro.harness.experiments import table3
from repro.model.zoo import PAPER_MODELS


def test_table3(benchmark, record_artifact):
    result = run_once(
        benchmark,
        table3,
        models=tuple(m.name for m in PAPER_MODELS),
        datasets=ALL_DATASETS,
        platforms=("nvidia_5070", "apple_m2"),
        ks=(1, 5, 10),
        num_queries=2,
    )
    record_artifact("table3_summary", result.render())

    for k in (1, 5, 10):
        # HF OOMs for the 4B/8B models on both edge platforms.
        for model in ("qwen3-reranker-4b", "qwen3-reranker-8b"):
            assert result.find(model, "hf", k).baseline_oom

        for model in ("qwen3-reranker-0.6b", "bge-reranker-v2-m3", "bge-reranker-v2-minicpm"):
            # Positive mean latency reductions vs every runnable baseline.
            for baseline in ("hf", "hf_offload", "hf_quant"):
                row = result.find(model, baseline, k)
                assert row.reduction_mean > 0.05, (model, baseline, k)
            # The offload baseline suffers the largest reductions.
            assert (
                result.find(model, "hf_offload", k).reduction_mean
                > result.find(model, "hf", k).reduction_mean
            )

        # Precision deltas stay small everywhere (paper: |max| ≤ 0.008).
        for row in result.rows:
            if row.k == k and not row.baseline_oom and not math.isnan(row.precision_loss_max):
                assert row.precision_loss_max > -0.15, (row.model, row.baseline)

    # The best cells approach the paper's headline reductions.
    best = max(
        row.reduction_max
        for row in result.rows
        if row.baseline == "hf_offload" and not row.baseline_oom
    )
    assert best > 0.5
