"""Figures 14 & 15 — LLM long-context selection.

Paper numbers: PRISM cuts end-to-end latency by 11.6 % vs the HF
reranker and 57.3 % vs no reranker, with marginally better accuracy
(the no-reranker baseline is distracted by irrelevant context); peak
memory is ≈1 GiB below the HF reranker (Figure 15).
"""

from conftest import run_once

from repro.harness.experiments import fig14_15_long_context


def test_fig14_15(benchmark, record_artifact):
    result = run_once(benchmark, fig14_15_long_context, num_tasks=24)
    record_artifact("fig14_15_long_context", result.render())

    baseline = result.runs["baseline"]
    hf = result.runs["hf"]
    prism = result.runs["prism"]

    # Figure 14 latency ordering: baseline ≫ hf > prism.
    assert prism.mean_latency < hf.mean_latency < baseline.mean_latency
    assert prism.mean_latency < 0.6 * baseline.mean_latency

    # The reranker stage exists only in the selection systems.
    assert baseline.mean_rerank_seconds == 0.0
    assert prism.mean_rerank_seconds < hf.mean_rerank_seconds

    # Selection keeps (or improves) accuracy: the full-context baseline
    # suffers distraction from irrelevant segments.
    assert prism.accuracy >= baseline.accuracy - 0.02
    assert hf.accuracy >= baseline.accuracy - 0.02

    # Needed-segment coverage stays high under both rerankers.
    assert prism.mean_coverage > 0.85
    assert hf.mean_coverage > 0.85

    # Figure 15: PRISM's peak sits well below the HF reranker's
    # (≈1 GiB in the paper; the reranker weights are the difference).
    assert hf.peak_mib - prism.peak_mib > 500
