"""Figure 16 — incremental ablation of the four techniques.

Paper numbers (Qwen3-0.6B, 60 candidates × len 500, NVIDIA platform):
baseline 3,909 ms / 1,258 MiB → +pruning 1,993 ms but peak *rises* to
1,821 MiB (monolithic batch) → +chunked 1,348 MiB → +dual-layer
sliding window (streaming) 568 MiB at +81 ms → +embedding-table cache
271 MiB at +4 ms.  Combined: −48.5 % latency, −78.4 % peak memory.
"""

from conftest import run_once

from repro.harness.experiments import fig16_ablation


def test_fig16(benchmark, record_artifact):
    result = run_once(benchmark, fig16_ablation)
    record_artifact("fig16_ablation", result.render())

    hf = result.find("hf")
    pruning = result.find("+pruning")
    chunked = result.find("+chunked")
    streaming = result.find("+streaming")
    full = result.find("+embedding-cache")

    # Step 1: pruning cuts latency sharply but inflates peak memory.
    assert pruning.latency < 0.7 * hf.latency
    assert pruning.peak_mib > 1.15 * hf.peak_mib

    # Step 2: chunked execution reclaims the monolithic-batch inflation
    # at negligible latency cost.
    assert chunked.peak_mib < 0.75 * pruning.peak_mib
    assert chunked.latency < 1.05 * pruning.latency

    # Step 3: layer streaming removes the resident weight block; the
    # shrunken compute windows leave a small I/O stall (paper: 81 ms).
    assert streaming.peak_mib < 0.6 * chunked.peak_mib
    assert 0 < (streaming.latency - chunked.latency) < 0.1 * chunked.latency
    assert streaming.io_stall_seconds > 0

    # Step 4: the embedding cache removes the last dominant block at
    # negligible latency cost (paper: +4 ms).
    assert full.peak_mib < 0.6 * streaming.peak_mib
    assert (full.latency - streaming.latency) < 0.05 * streaming.latency

    # Combined claim: −48.5 % latency and −78.4 % peak vs baseline.
    assert full.latency < 0.72 * hf.latency
    assert full.peak_mib < 0.3 * hf.peak_mib
