"""Extension study — multi-tenant fair admission at 10x overload (DESIGN.md §13).

Trace-driven open-loop traffic offers the fleet ten times its measured
capacity across 1000+ Zipf-popular tenants, each carrying an SLO class
(interactive / batch / best_effort).  Tenant-aware admission — WFQ
ordering plus per-tenant token buckets — must shed the overload
*fairly*: no tenant's shed rate may exceed its class's bound, and even
the lowest-weight tenant must still complete requests (the
starvation-freedom guarantee, which holds by construction because
buckets start full with ``burst >= 1`` and the drain loop serves
everything admitted).

``BENCH_multitenant.json`` records the per-class shed rollup and the
two contract witnesses; ``benchmarks/perf_gate.py
--multitenant-fresh`` gates CI on both staying clean.
"""

from conftest import BENCH_QUICK, run_once

from repro.harness.experiments import multitenant_serving

#: 10x overload over 1000 tenants is the acceptance bar's regime; the
#: CI smoke shrinks the population and span (the contracts are
#: scale-free — they must hold at any overload, at any size).
SIZE = (
    dict(num_tenants=150, duration_s=5.0, overload=10.0, probe_requests=8)
    if BENCH_QUICK
    else dict(num_tenants=1000, duration_s=15.0, overload=10.0)
)


def test_multitenant_no_starvation_at_overload(benchmark, record_artifact, record_metrics):
    result = run_once(benchmark, multitenant_serving, **SIZE)
    record_artifact("multitenant", result.render())

    record_metrics(
        "multitenant",
        dict(
            SIZE,
            num_replicas=result.num_replicas,
            process=result.process,
        ),
        {
            "capacity_rps": result.capacity_rps,
            "offered_rps": result.offered_rps,
            "num_requests": result.num_requests,
            "completed": result.completed,
            "shed": result.shed,
            "starved_tenants": result.starved_tenants,
            "bound_violations": result.bound_violations,
            "min_weight_completed": result.min_weight_completed,
            "per_class": {
                point.slo: {
                    "tenants": point.tenants,
                    "submitted": point.submitted,
                    "completed": point.completed,
                    "shed": point.shed,
                    "max_shed_rate": point.max_shed_rate,
                    "shed_bound": point.shed_bound,
                    "within_bound": point.within_bound,
                }
                for point in result.points
            },
        },
    )

    # The workload really is overload: far more offered than served.
    assert result.offered_rps >= 5.0 * result.capacity_rps
    assert result.shed > 0

    # Contract 1 — SLO shed bounds: no tenant of any class sheds more
    # than its class allows, even at 10x overload.
    assert result.bound_violations == 0
    for point in result.points:
        assert point.within_bound, (
            f"{point.slo}: max shed {point.max_shed_rate:.2%} "
            f"exceeds bound {point.shed_bound:.2%}"
        )

    # Contract 2 — starvation-freedom: every arriving tenant completed
    # at least one request, including the lowest-weight one.
    assert result.starved_tenants == 0
    assert result.min_weight_completed >= 1

    # Interactive traffic is protected outright: its admit headroom
    # means overload lands on the best-effort tier, not on it.
    interactive = result.find("interactive")
    assert interactive.shed == 0
    best_effort = result.find("best_effort")
    assert best_effort.shed > 0
