"""Extension study — fleet-wide semantic caching (DESIGN.md §12).

Retrieval traffic is Zipf-skewed: a few hot queries dominate.  The
data plane memoizes completed selections, coalesces identical
in-flight requests onto one leader, and serves partially-overlapping
candidate sets with a reduced residue pass plus exact shadow replay —
so the repeated head of the stream stops costing engine time at all.
Because every reuse path is exact by construction, the cache-on fleet
must return byte-identical selections to the cache-off fleet; the
speedup is free of quality drift.

``BENCH_data_plane.json`` records ``speedup_cached`` — the same-run
cache-on / cache-off throughput ratio, which is machine-independent
(virtual-clock seconds) — and ``benchmarks/perf_gate.py
--data-plane-fresh`` gates CI on the >=2x floor.
"""

from conftest import run_once

from repro.harness.experiments import data_plane_serving

#: Zipf-stream shape: 48 requests over 8 unique queries at s=1.1
#: repeats well over 30% of the stream (the regime the tentpole's
#: acceptance bar names).  A quarter of the draws mutate into
#: partial-overlap variants so layer 2 (residue passes) exercises too.
#:
#: Unlike the wall-clock benches this one does NOT shrink under
#: BENCH_QUICK: ``speedup_cached`` is a virtual-clock ratio — fully
#: deterministic and machine-independent — so the CI gate diffs the
#: fresh number against the committed baseline directly, which only
#: works when both runs serve the identical workload (and the whole
#: simulation takes ~2 s anyway).
SIZE = dict(unique_queries=8, num_requests=48, partial_overlap_rate=0.25)


def test_data_plane_caching_speedup(benchmark, record_artifact, record_metrics):
    result = run_once(benchmark, data_plane_serving, **SIZE)
    record_artifact("data_plane", result.render())

    off = result.find("cache_off")
    on = result.find("cache_on")
    total = on.memo_hits + on.coalesced + on.overlap_hits + on.misses
    reused = on.memo_hits + on.coalesced + on.overlap_hits
    record_metrics(
        "data_plane",
        dict(
            SIZE,
            num_replicas=result.num_replicas,
            k=result.k,
            zipf_s=1.1,
        ),
        {
            "speedup_cached": result.speedup_cached,
            "identical_selections": result.identical_selections,
            "request_overlap": reused / total,
            "throughput_rps": {
                "cache_off": off.throughput_rps,
                "cache_on": on.throughput_rps,
            },
            "p95_latency_s": {
                "cache_off": off.p95_latency,
                "cache_on": on.p95_latency,
            },
            "hits": {
                "memo": on.memo_hits,
                "coalesced": on.coalesced,
                "overlap": on.overlap_hits,
                "misses": on.misses,
            },
            "bytes_saved": on.bytes_saved,
            "seconds_saved": on.seconds_saved,
        },
    )

    # The acceptance bar: at >=30% request overlap the cached fleet
    # delivers >=2x the uncached fleet's simulated throughput ...
    assert reused / total >= 0.30
    assert result.speedup_cached >= 2.0

    # ... with byte-identical selections (exactness is the contract —
    # a cache that changes answers is a bug, not a speedup).
    assert result.identical_selections

    # The reuse taxonomy is live: every layer fired on this stream.
    assert on.memo_hits > 0
    assert on.overlap_hits > 0
    assert on.bytes_saved > 0
    assert on.seconds_saved > 0.0

    # The cache-off fleet never touches the plane.
    assert off.memo_hits == off.coalesced == off.overlap_hits == off.misses == 0
    assert off.hit_rate is None
