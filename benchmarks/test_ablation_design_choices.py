"""Design-choice ablations called out in DESIGN.md §5.

These go beyond the paper's Figure 16: each bench isolates one design
decision inside a technique and quantifies what the chosen design buys
over the obvious alternative.

1. CV trigger vs. always-cluster — the dispersion trigger avoids
   wasted clustering work (and mis-pruning) in the converging region.
2. Dynamic chunk-size policy vs. fixed small chunks — the compute
   window floor keeps streaming I/O hidden.
3. Three-way routing vs. drop-only (exact-rank mode) — early-accepting
   winners buys extra latency when exact scores are not needed.
4. LRU embedding cache vs. full table — the memory/latency trade of
   §4.4 stated as numbers.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.config import PrismConfig
from repro.data.datasets import get_dataset
from repro.harness.reporting import format_table, ms, pct
from repro.harness.runner import run_system
from repro.model.zoo import QWEN3_0_6B


def _run(config=None, threshold=None, num_queries=4, **kwargs):
    queries = get_dataset("wikipedia").queries(num_queries, 20)
    return run_system(
        "prism",
        QWEN3_0_6B,
        "nvidia_5070",
        queries,
        10,
        threshold=threshold,
        prism_config=config,
        **kwargs,
    )


def test_trigger_vs_always_cluster(benchmark, record_artifact):
    """The CV trigger skips clustering while rankings still converge;
    forcing clustering every layer (threshold 0) must not prune more
    work than the statistical-distinctness guard allows, and costs
    extra clustering latency per layer."""

    def experiment():
        triggered = _run(threshold=PrismConfig().dispersion_threshold, keep_results=True)
        always = _run(threshold=0.0, keep_results=True)
        return triggered, always

    triggered, always = run_once(benchmark, experiment)
    trig_checks = sum(len(r.prune_events) for r in triggered.results)
    always_checks = sum(len(r.prune_events) for r in always.results)
    record_artifact(
        "ablation_trigger",
        format_table(
            ("policy", "latency", "precision", "prune events"),
            [
                ("cv-trigger", ms(triggered.mean_latency), f"{triggered.mean_precision:.3f}", trig_checks),
                ("always-cluster", ms(always.mean_latency), f"{always.mean_precision:.3f}", always_checks),
            ],
            title="Ablation — CV trigger vs always-cluster",
        ),
    )
    # Always-clustering fires more often without a precision win.
    assert always_checks >= trig_checks
    assert abs(always.mean_precision - triggered.mean_precision) < 0.1


def test_dynamic_vs_fixed_chunks(benchmark, record_artifact):
    """The chunk-size policy's value: chunking caps intermediate-tensor
    memory at essentially zero latency cost.  At paper-scale sequence
    lengths even 1-candidate chunks keep the device saturated, so the
    monolithic (unchunked) batch buys nothing except a bigger peak —
    while tiny fixed chunks pay extra kernel launches."""

    def experiment():
        queries = get_dataset("wikipedia").queries(2, 60)
        def run(config):
            return run_system(
                "prism", QWEN3_0_6B, "nvidia_5070", queries, 10, prism_config=config
            )

        from repro.device.memory import MiB

        dynamic = run(PrismConfig())
        monolithic = run(replace(PrismConfig(), chunked_execution=False))
        tiny = run(
            replace(PrismConfig(), chunk_memory_budget=5 * MiB, min_chunk_compute_window=0.0)
        )
        return dynamic, monolithic, tiny

    dynamic, monolithic, tiny = run_once(benchmark, experiment)
    record_artifact(
        "ablation_chunk_policy",
        format_table(
            ("policy", "latency", "peak MiB", "io stall"),
            [
                ("dynamic window floor", ms(dynamic.mean_latency), f"{dynamic.peak_mib:.0f}", ms(dynamic.io_stall_seconds)),
                ("monolithic (no chunks)", ms(monolithic.mean_latency), f"{monolithic.peak_mib:.0f}", ms(monolithic.io_stall_seconds)),
                ("fixed 1-cand chunks", ms(tiny.mean_latency), f"{tiny.peak_mib:.0f}", ms(tiny.io_stall_seconds)),
            ],
            title="Ablation — chunk-size policy (60 candidates)",
        ),
    )
    # Chunking caps the peak far below the monolithic batch...
    assert dynamic.peak_mib < 0.8 * monolithic.peak_mib
    # ...at negligible latency cost.
    assert dynamic.mean_latency < 1.02 * monolithic.mean_latency
    # Tiny chunks pay extra kernel launches over the dynamic policy.
    assert tiny.mean_latency >= dynamic.mean_latency


def test_three_way_vs_drop_only(benchmark, record_artifact):
    """Exact-rank (drop-only) mode keeps winners computing to the final
    layer: exact scores, but a measurable latency premium over the
    three-way routing that early-accepts winners (§7)."""

    def experiment():
        three_way = _run()
        drop_only = _run(config=replace(PrismConfig(), exact_rank_mode=True))
        return three_way, drop_only

    three_way, drop_only = run_once(benchmark, experiment)
    record_artifact(
        "ablation_routing",
        format_table(
            ("mode", "latency", "precision", "pruned fraction"),
            [
                ("three-way", ms(three_way.mean_latency), f"{three_way.mean_precision:.3f}", f"{three_way.pruned_fraction:.2f}"),
                ("drop-only (exact)", ms(drop_only.mean_latency), f"{drop_only.mean_precision:.3f}", f"{drop_only.pruned_fraction:.2f}"),
            ],
            title="Ablation — three-way routing vs drop-only",
        ),
    )
    # Drop-only still beats no pruning but pays for exact scores.
    assert drop_only.mean_latency >= three_way.mean_latency
    assert drop_only.pruned_fraction <= three_way.pruned_fraction
    assert abs(drop_only.mean_precision - three_way.mean_precision) < 0.1


def test_lru_cache_vs_full_table(benchmark, record_artifact):
    """§4.4 as numbers: the 10 % LRU cache removes most of the
    embedding table's footprint for a few ms of miss I/O."""

    def experiment():
        cached = _run()
        full = _run(config=replace(PrismConfig(), embedding_cache=False))
        return cached, full

    cached, full = run_once(benchmark, experiment)
    record_artifact(
        "ablation_embedding_cache",
        format_table(
            ("embedding policy", "latency", "peak MiB", "hit rate"),
            [
                (
                    "10% LRU cache",
                    ms(cached.mean_latency),
                    f"{cached.peak_mib:.0f}",
                    pct(cached.embedding_hit_rate),
                ),
                (
                    "full table resident",
                    ms(full.mean_latency),
                    f"{full.peak_mib:.0f}",
                    pct(full.embedding_hit_rate),  # no cache: "-", not 100%
                ),
            ],
            title="Ablation — LRU embedding cache vs full table",
        ),
    )
    # The cached run consulted its cache; the full-table run has none —
    # a never-used cache reports None (rendered "-"), never a fake 100%.
    assert cached.embedding_hit_rate is not None
    assert full.embedding_hit_rate is None
    assert cached.peak_mib < full.peak_mib - 150  # ~296 MB table vs ~30 MB cache
    # Cache misses cost only milliseconds per request.
    assert cached.mean_latency - full.mean_latency < 0.05
