"""Extension study — the overlap window's hardware boundary (§3.2).

The paper's memory design rests on PCIe-4-class storage: one layer's
compute window must cover the next layer's load.  This bench sweeps
SSD bandwidth through that boundary and quantifies where weight
streaming stops being free — the sensitivity analysis behind the
paper's "fast storage" assumption (Artifact Appendix A.2.2).
"""

from conftest import run_once

from repro.harness.experiments import overlap_window_sweep


def test_overlap_window(benchmark, record_artifact):
    result = run_once(
        benchmark,
        overlap_window_sweep,
        bandwidths_gbps=(0.5, 1.0, 2.0, 3.5, 7.0),
        num_queries=3,
    )
    record_artifact("overlap_window_study", result.render())

    points = {p.ssd_bandwidth_gbps: p for p in result.points}

    # Latency is monotone non-increasing in bandwidth.
    latencies = [p.latency for p in result.points]
    assert all(b <= a * 1.001 for a, b in zip(latencies, latencies[1:]))

    # Above the paper's PCIe-4 operating point the window holds:
    # stalls are a small fraction of latency and the curve is flat.
    assert points[3.5].io_stall_seconds < 0.1 * points[3.5].latency
    assert points[7.0].latency > 0.9 * points[3.5].latency

    # Below ~1 GB/s the window breaks: stalls dominate.
    assert points[0.5].io_stall_seconds > 0.5 * points[0.5].latency
    assert points[0.5].latency > 2 * points[3.5].latency

    # Even at the boundary PRISM's footprint is unchanged — the memory
    # win does not depend on bandwidth, only the latency hiding does.
    peaks = {p.peak_mib for p in result.points}
    assert max(peaks) - min(peaks) < 1.0

    # At PCIe-4 bandwidth, streaming PRISM beats even in-memory HF.
    assert points[3.5].latency < result.hf_latency
