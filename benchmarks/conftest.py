"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, asserts
its qualitative shape, and writes the rendered text artifact to
``benchmarks/results/`` so EXPERIMENTS.md can reference the numbers.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Write one experiment's rendered table to benchmarks/results/."""

    def _record(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are deterministic simulations — repeated rounds
    would only re-measure identical work — so each bench runs a single
    round and reports its wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
