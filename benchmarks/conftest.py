"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, asserts
its qualitative shape, and writes the rendered text artifact to
``benchmarks/results/`` so EXPERIMENTS.md can reference the numbers.

Serving benchmarks additionally record machine-readable metrics as
``benchmarks/results/BENCH_<name>.json`` (throughput, tail latency,
SSD traffic), so the performance trajectory is diffable across PRs
instead of living only in prose tables.  Every BENCH file carries the
same three top-level keys — ``name`` (the bench), ``config`` (the
workload parameters that produced the numbers, including the
``quick`` smoke-size flag), ``metrics`` (the numbers) — enforced by
``tests/test_benchmark_schema.py``.

``BENCH_QUICK=1`` shrinks the serving-bench workloads to smoke size
(used by the CI benchmark job).  The assertion bars themselves are
unchanged — the qualitative shapes hold at both sizes — and the JSON
artifact records which size produced it via its ``quick`` field.
"""

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Smoke-size switch for the serving benches (CI benchmark job).
BENCH_QUICK = os.environ.get("BENCH_QUICK", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Write one experiment's rendered table to benchmarks/results/."""

    def _record(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record


@pytest.fixture
def record_metrics(results_dir):
    """Write one bench's key numbers to benchmarks/results/BENCH_<name>.json.

    Every artifact shares one top-level schema — ``{name, config,
    metrics}`` — so downstream tooling can consume the whole results
    directory without per-bench special cases
    (``tests/test_benchmark_schema.py`` enforces this).  ``config``
    holds the workload parameters that produced the numbers (plus the
    ``quick`` smoke-size flag); ``metrics`` holds the numbers.  Values
    must be JSON-serialisable scalars or nested dicts/lists of them.
    Keys are sorted so the artifact diffs cleanly across PRs.
    """

    def _record(name: str, config: dict, metrics: dict) -> Path:
        path = results_dir / f"BENCH_{name}.json"
        payload = {
            "name": name,
            "config": dict(config, quick=BENCH_QUICK),
            "metrics": metrics,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are deterministic simulations — repeated rounds
    would only re-measure identical work — so each bench runs a single
    round and reports its wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
