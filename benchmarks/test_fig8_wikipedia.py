"""Figure 8 — Wikipedia-dataset detail: seven systems × five models ×
two platforms × K ∈ {1, 5, 10}.

Shapes asserted: PRISM-Low is the fastest configuration everywhere the
baselines run; HF-Offload is the slowest; raising the threshold costs
latency; quantization shrinks memory but does not speed up prefill;
precision stays in the unpruned band for all configurations.
"""

from conftest import run_once

from repro.harness.experiments import fig8_wikipedia
from repro.model.zoo import PAPER_MODELS


def test_fig8(benchmark, record_artifact):
    models = tuple(m.name for m in PAPER_MODELS)
    result = run_once(
        benchmark,
        fig8_wikipedia,
        models=models,
        platforms=("nvidia_5070", "apple_m2"),
        ks=(1, 5, 10),
        num_queries=3,
    )
    record_artifact("fig8_wikipedia", result.render())

    for platform in ("nvidia_5070", "apple_m2"):
        for model in models:
            for k in (1, 5, 10):
                cell = lambda s: result.find(s, model, platform, k)  # noqa: E731
                prism_low = cell("prism_low")
                prism_high = cell("prism_high")
                offload = cell("hf_offload")
                hf = cell("hf")

                # PRISM never OOMs; offload never OOMs.
                assert not prism_low.oom and not offload.oom

                # Threshold trades latency for conservatism.
                assert prism_low.latency <= prism_high.latency * 1.001

                # PRISM beats the offload baseline everywhere.
                assert prism_low.latency < offload.latency

                if not hf.oom:
                    # PRISM beats in-memory HF; offload is slowest.
                    assert prism_low.latency < hf.latency < offload.latency
                    # Quant pays a dequantization penalty over HF.
                    assert cell("hf_quant").latency > hf.latency

                # Precision band: every configuration stays close to
                # the unpruned baseline.
                reference = offload.precision
                for system in (
                    "prism_low",
                    "prism_high",
                    "prism_quant_low",
                    "prism_quant_high",
                ):
                    assert abs(cell(system).precision - reference) < 0.15

    # The headline: up to ~88 % reduction vs HF Offload on this dataset.
    best = max(
        1.0 - result.find("prism_low", m, p, 1).latency / result.find("hf_offload", m, p, 1).latency
        for m in models
        for p in ("nvidia_5070", "apple_m2")
    )
    assert best > 0.5
