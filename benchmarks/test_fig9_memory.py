"""Figure 9 — memory footprint of the compared systems over five models.

Paper shapes: PRISM's peak is 5.34–11.45× below HF, 1.34–3.83× below
HF-Offload and 2.77–4.83× below HF-Quant; vanilla HF OOMs for the
4B/8B models on the edge device and is measured on an A800 instead.
"""

from conftest import run_once

from repro.harness.experiments import fig9_memory
from repro.harness.reporting import format_series
from repro.model.zoo import PAPER_MODELS


def test_fig9(benchmark, record_artifact):
    models = tuple(m.name for m in PAPER_MODELS)
    result = run_once(benchmark, fig9_memory, models=models)

    lines = [result.render(), ""]
    for model in models:
        row = result.find(model, "prism")
        xs = [round(p.time, 4) for p in row.timeline[:40]]
        ys = [round(p.in_use / (1024 * 1024), 1) for p in row.timeline[:40]]
        lines.append(format_series(f"{model}/prism timeline (MiB)", xs, ys))
    record_artifact("fig9_memory", "\n".join(lines))

    for model in models:
        prism = result.find(model, "prism")
        hf = result.find(model, "hf")
        offload = result.find(model, "hf_offload")
        quant = result.find(model, "hf_quant")

        # PRISM smallest everywhere; reduction-factor bands bracket the
        # paper's reported ranges.
        assert 3.0 < hf.peak_mib / prism.peak_mib < 16.0, model
        assert 1.1 < offload.peak_mib / prism.peak_mib < 6.0, model
        assert 1.5 < quant.peak_mib / prism.peak_mib < 8.0, model

        # Average follows the same ordering.
        assert prism.avg_mib < offload.avg_mib < hf.avg_mib

    # HF 4B/8B measured on the A800 fallback (edge OOM).
    for model in ("qwen3-reranker-4b", "qwen3-reranker-8b"):
        assert result.find(model, "hf").oom_on_edge
        assert not result.find(model, "prism").oom_on_edge
