"""CI perf-regression gate over the hot-path microbench (DESIGN.md §11).

Compares a fresh ``BENCH_hotpath.json`` against the committed baseline
and exits non-zero when the hot path got slower.  Wall-clock is
machine-dependent, so absolute numbers are never compared across runs:
every gang scenario is first normalised by the *same run's* ``solo``
anchor (wall[scenario] / wall[solo]), which cancels the machine factor —
a uniformly slower CI worker produces identical ratios.  The gate then
fails when either

* the median normalised ratio across the gang scenarios regressed by
  more than ``--threshold`` (default 20%) against the baseline, or
* the fresh run's batched N=8 speedup (sequential_gang_n8 /
  batched_gang_n8) fell below ``--min-speedup-n8`` — the direct guard
  on the batched-kernel win itself, which a median over scenarios
  could mask.

``--inject-slowdown FACTOR`` multiplies the fresh run's non-anchor
wall-times before comparing — the CI job uses it to prove the gate
actually fails on a >20% regression (see ``docs/performance.md``).

The gate also covers the data plane (DESIGN.md §12) when
``--data-plane-baseline``/``--data-plane-fresh`` point at
``BENCH_data_plane.json`` artifacts.  ``speedup_cached`` is the
same-run cache-on / cache-off throughput ratio on the *virtual* clock,
so it is machine-independent and compared directly: the gate fails
when the fresh speedup falls below ``--min-cache-speedup`` (default
2.0x — the tentpole's acceptance floor), regresses more than
``--threshold`` against the committed baseline, or the artifact
reports non-identical selections (an inexact cache is a bug, not a
speedup).  ``--inject-slowdown`` divides the fresh cached speedup,
so the same self-test proves this check can fire too.

The multi-tenant contracts (DESIGN.md §13) are gated when
``--multitenant-baseline``/``--multitenant-fresh`` point at
``BENCH_multitenant.json`` artifacts.  Both are *correctness*
contracts on the virtual clock, so they are asserted absolutely, never
ratio-compared: the gate fails when the fresh run reports any
shed-bound violation (a tenant shed more than its SLO class allows),
any starved tenant, or a lowest-weight tenant that completed nothing;
the baseline artifact is validated to keep the committed file honest.
``--inject-slowdown`` flips the fresh violation count for the
self-test.

Stdlib-only on purpose: the gate must run before (and regardless of)
the package install step.

Usage::

    python benchmarks/perf_gate.py \
        --baseline benchmarks/results/BENCH_hotpath.json \
        --fresh fresh/BENCH_hotpath.json [--threshold 0.2] \
        [--min-speedup-n8 1.4] [--inject-slowdown 1.0] \
        [--data-plane-baseline benchmarks/results/BENCH_data_plane.json \
         --data-plane-fresh fresh/BENCH_data_plane.json \
         --min-cache-speedup 2.0] \
        [--multitenant-baseline benchmarks/results/BENCH_multitenant.json \
         --multitenant-fresh fresh/BENCH_multitenant.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: The normalisation anchor: every other scenario is expressed as a
#: multiple of this one's wall-time from the same run.
ANCHOR = "solo"

#: Gang scenarios the gate compares (everything the microbench records
#: except the anchor itself).
GANG_SCENARIOS = (
    "sequential_gang_n4",
    "batched_gang_n4",
    "sequential_gang_n8",
    "batched_gang_n8",
)


class GateError(Exception):
    """A malformed artifact — distinct from a legitimate gate failure."""


def load_walls(path: Path) -> dict[str, float]:
    """Read ``metrics.wall_time_s_per_step`` out of a BENCH artifact."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"{path}: unreadable artifact: {exc}") from exc
    walls = payload.get("metrics", {}).get("wall_time_s_per_step")
    if not isinstance(walls, dict):
        raise GateError(f"{path}: missing metrics.wall_time_s_per_step")
    missing = [k for k in (ANCHOR, *GANG_SCENARIOS) if k not in walls]
    if missing:
        raise GateError(f"{path}: wall_time_s_per_step missing {missing}")
    bad = [k for k, v in walls.items() if not isinstance(v, (int, float)) or v <= 0]
    if bad:
        raise GateError(f"{path}: non-positive wall-times for {bad}")
    return {k: float(v) for k, v in walls.items()}


def normalised(walls: dict[str, float]) -> dict[str, float]:
    """Each gang scenario's wall-time as a multiple of the solo anchor."""
    return {name: walls[name] / walls[ANCHOR] for name in GANG_SCENARIOS}


def check(
    baseline: dict[str, float],
    fresh: dict[str, float],
    threshold: float,
    min_speedup_n8: float,
) -> list[str]:
    """Return the list of gate failures (empty = pass), printing a report."""
    base_ratio = normalised(baseline)
    fresh_ratio = normalised(fresh)
    regressions = {
        name: fresh_ratio[name] / base_ratio[name] - 1.0 for name in GANG_SCENARIOS
    }
    print(f"{'scenario':<22} {'base x solo':>12} {'fresh x solo':>13} {'regression':>11}")
    for name in GANG_SCENARIOS:
        print(
            f"{name:<22} {base_ratio[name]:>12.3f} {fresh_ratio[name]:>13.3f}"
            f" {regressions[name]:>+10.1%}"
        )

    failures: list[str] = []
    median = statistics.median(regressions.values())
    print(f"median regression: {median:+.1%} (threshold {threshold:+.1%})")
    if median > threshold:
        failures.append(
            f"median normalised regression {median:+.1%} exceeds {threshold:.0%}"
        )
    speedup = fresh["sequential_gang_n8"] / fresh["batched_gang_n8"]
    print(f"fresh batched N=8 speedup: {speedup:.2f}x (floor {min_speedup_n8:.2f}x)")
    if speedup < min_speedup_n8:
        failures.append(
            f"batched N=8 speedup {speedup:.2f}x below the {min_speedup_n8:.2f}x floor"
        )
    return failures


def load_data_plane(path: Path) -> dict[str, object]:
    """Read the data-plane metrics out of a ``BENCH_data_plane.json``."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"{path}: unreadable artifact: {exc}") from exc
    metrics = payload.get("metrics", {})
    speedup = metrics.get("speedup_cached")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise GateError(f"{path}: missing/non-positive metrics.speedup_cached")
    identical = metrics.get("identical_selections")
    if not isinstance(identical, bool):
        raise GateError(f"{path}: missing metrics.identical_selections")
    return {"speedup_cached": float(speedup), "identical_selections": identical}


def check_data_plane(
    baseline: dict[str, object],
    fresh: dict[str, object],
    threshold: float,
    min_cache_speedup: float,
) -> list[str]:
    """Gate the §12 cached-fleet speedup; returns failures (empty = pass)."""
    base_speedup = float(baseline["speedup_cached"])
    fresh_speedup = float(fresh["speedup_cached"])
    regression = fresh_speedup / base_speedup - 1.0
    print(
        f"data-plane cached speedup: base {base_speedup:.2f}x, "
        f"fresh {fresh_speedup:.2f}x ({regression:+.1%}; "
        f"floor {min_cache_speedup:.2f}x, threshold {-threshold:+.1%})"
    )
    failures: list[str] = []
    if fresh_speedup < min_cache_speedup:
        failures.append(
            f"cached speedup {fresh_speedup:.2f}x below the "
            f"{min_cache_speedup:.2f}x floor"
        )
    if regression < -threshold:
        failures.append(
            f"cached speedup regressed {regression:+.1%} "
            f"(more than {threshold:.0%}) vs baseline"
        )
    if not fresh["identical_selections"]:
        failures.append("fresh data-plane run reports non-identical selections")
    return failures


def load_multitenant(path: Path) -> dict[str, object]:
    """Read the §13 contract metrics out of a ``BENCH_multitenant.json``."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"{path}: unreadable artifact: {exc}") from exc
    metrics = payload.get("metrics", {})
    out: dict[str, object] = {}
    for key in ("bound_violations", "starved_tenants", "min_weight_completed"):
        value = metrics.get(key)
        if not isinstance(value, int) or value < 0:
            raise GateError(f"{path}: missing/invalid metrics.{key}")
        out[key] = value
    per_class = metrics.get("per_class")
    if not isinstance(per_class, dict) or not per_class:
        raise GateError(f"{path}: missing metrics.per_class")
    out["per_class"] = per_class
    return out


def check_multitenant(
    baseline: dict[str, object], fresh: dict[str, object]
) -> list[str]:
    """Gate the §13 contracts; returns failures (empty = pass).

    Absolute, not ratio-based: both contracts must hold outright in
    the fresh run (the baseline was already validated at load).
    """
    print(
        f"multitenant contracts: bound_violations={fresh['bound_violations']} "
        f"starved_tenants={fresh['starved_tenants']} "
        f"min_weight_completed={fresh['min_weight_completed']}"
    )
    failures: list[str] = []
    for slo, entry in sorted(fresh["per_class"].items()):  # type: ignore[union-attr]
        rate = entry.get("max_shed_rate")
        bound = entry.get("shed_bound")
        if not isinstance(rate, (int, float)) or not isinstance(bound, (int, float)):
            failures.append(f"per_class[{slo}] missing max_shed_rate/shed_bound")
            continue
        print(f"  {slo:<12} max shed {rate:.1%} vs bound {bound:.1%}")
        if rate > bound:
            failures.append(
                f"{slo} tenants shed up to {rate:.1%}, over the {bound:.1%} SLO bound"
            )
    if fresh["bound_violations"]:
        failures.append(
            f"{fresh['bound_violations']} tenant(s) exceeded their SLO shed bound"
        )
    if fresh["starved_tenants"]:
        failures.append(f"{fresh['starved_tenants']} tenant(s) starved under overload")
    if not fresh["min_weight_completed"]:
        failures.append("the lowest-weight tenant completed no requests")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_hotpath.json to compare against")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="BENCH_hotpath.json from this run")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated median normalised regression")
    parser.add_argument("--min-speedup-n8", type=float, default=1.4,
                        help="floor on the fresh batched N=8 speedup")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        help="multiply fresh non-anchor wall-times (gate self-test)")
    parser.add_argument("--data-plane-baseline", type=Path, default=None,
                        help="committed BENCH_data_plane.json to compare against")
    parser.add_argument("--data-plane-fresh", type=Path, default=None,
                        help="BENCH_data_plane.json from this run")
    parser.add_argument("--min-cache-speedup", type=float, default=2.0,
                        help="floor on the fresh data-plane cached speedup")
    parser.add_argument("--multitenant-baseline", type=Path, default=None,
                        help="committed BENCH_multitenant.json to validate")
    parser.add_argument("--multitenant-fresh", type=Path, default=None,
                        help="BENCH_multitenant.json from this run")
    args = parser.parse_args(argv)
    if (args.data_plane_baseline is None) != (args.data_plane_fresh is None):
        parser.error("--data-plane-baseline and --data-plane-fresh go together")
    if (args.multitenant_baseline is None) != (args.multitenant_fresh is None):
        parser.error("--multitenant-baseline and --multitenant-fresh go together")

    try:
        baseline = load_walls(args.baseline)
        fresh = load_walls(args.fresh)
        plane_baseline = plane_fresh = None
        if args.data_plane_baseline is not None:
            plane_baseline = load_data_plane(args.data_plane_baseline)
            plane_fresh = load_data_plane(args.data_plane_fresh)
        tenant_baseline = tenant_fresh = None
        if args.multitenant_baseline is not None:
            tenant_baseline = load_multitenant(args.multitenant_baseline)
            tenant_fresh = load_multitenant(args.multitenant_fresh)
    except GateError as exc:
        print(f"perf-gate: ERROR: {exc}", file=sys.stderr)
        return 2

    if args.inject_slowdown != 1.0:
        print(f"injecting a {args.inject_slowdown:.2f}x slowdown into the fresh run")
        fresh = {
            name: wall * (args.inject_slowdown if name != ANCHOR else 1.0)
            for name, wall in fresh.items()
        }
        if plane_fresh is not None:
            plane_fresh = dict(
                plane_fresh,
                speedup_cached=float(plane_fresh["speedup_cached"])
                / args.inject_slowdown,
            )
        if tenant_fresh is not None:
            # The self-test analogue for an absolute contract: pretend
            # one tenant blew its bound and make sure the gate fires.
            tenant_fresh = dict(tenant_fresh, bound_violations=1)

    failures = check(baseline, fresh, args.threshold, args.min_speedup_n8)
    if plane_baseline is not None and plane_fresh is not None:
        failures += check_data_plane(
            plane_baseline, plane_fresh, args.threshold, args.min_cache_speedup
        )
    if tenant_baseline is not None and tenant_fresh is not None:
        failures += check_multitenant(tenant_baseline, tenant_fresh)
    if failures:
        for failure in failures:
            print(f"perf-gate: FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
