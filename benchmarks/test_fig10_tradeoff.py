"""Figure 10 — tuning the latency/precision trade-off per model.

Shapes: latency rises with the dispersion threshold for every model;
precision is non-degrading in the threshold for well-behaved models;
Qwen3-8B shows the paper's inverse trend (over-fitting: the lowest
threshold achieves peak precision because pruning bypasses noisy late
layers).
"""

import numpy as np
from conftest import run_once

from repro.harness.experiments import fig10_tradeoff
from repro.model.zoo import PAPER_MODELS


def test_fig10_all_models(benchmark, record_artifact):
    def sweep_all():
        return {
            model.name: fig10_tradeoff(
                model_name=model.name, num_thresholds=5, num_queries=6
            )
            for model in PAPER_MODELS
        }

    results = run_once(benchmark, sweep_all)
    record_artifact(
        "fig10_tradeoff", "\n\n".join(r.render() for r in results.values())
    )

    for name, result in results.items():
        latencies = result.latencies()
        # Latency grows from the aggressive to the conservative end.
        assert latencies[-1] > latencies[0], name
        # Sweep runs over the model's own threshold range.
        thresholds = [p.threshold for p in result.points]
        assert thresholds == sorted(thresholds)

    # Qwen3-8B's modelled over-fitting: the lowest threshold does not
    # lose precision relative to the highest (it can even gain).
    qwen8 = results["qwen3-reranker-8b"]
    assert qwen8.precisions(1)[0] >= qwen8.precisions(1)[-1] - 0.02

    # Well-behaved models keep precision within a tight band across
    # the whole sweep.
    for name in ("qwen3-reranker-0.6b", "bge-reranker-v2-m3"):
        for k in (1, 5, 10):
            ps = results[name].precisions(k)
            assert max(ps) - min(ps) < 0.15, (name, k)
