"""Figure 2 — sequence-level sparsity.

(a) candidate scores fan out into distinct clusters with depth;
(b) Goodman–Kruskal γ rises toward 1.0 while cluster-γ stays ≈1.0
    across layers, on both decoder- and encoder-style models.
"""

import numpy as np
from conftest import run_once

from repro.harness.experiments import fig2_sparsity
from repro.harness.reporting import format_series


def test_fig2a_score_evolution(benchmark, record_artifact):
    result = run_once(
        benchmark, fig2_sparsity, model_name="bge-reranker-v2-minicpm", num_queries=6
    )
    spreads = result.trajectories.std(axis=0)
    record_artifact(
        "fig2a_score_evolution",
        result.render()
        + "\n"
        + format_series("score_spread", result.layers, spreads.tolist()),
    )
    # Scores fan out: late-layer spread dwarfs early-layer spread.
    assert spreads[-1] > 3 * spreads[1]


def test_fig2b_gamma_generality(benchmark, record_artifact):
    lines = []
    for model in ("bge-reranker-v2-minicpm", "bge-reranker-v2-m3"):
        result = fig2_sparsity(model_name=model, num_queries=6)
        lines.append(result.render())
        # γ converges to 1.0 at the final layer and rises with depth.
        assert result.gamma[-1] == 1.0
        assert np.mean(result.gamma[-4:]) > np.mean(result.gamma[:4]) + 0.3
        # Inter-cluster rankings are stable from the point clusters
        # emerge (the pruning-safety premise).
        assert np.mean(result.cluster_gamma_values[3:]) > 0.9
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_artifact("fig2b_gamma", "\n\n".join(lines))


def test_fig2b_holds_on_all_18_datasets(benchmark, record_artifact):
    """§3.1 validates sequence-level sparsity on 18 datasets and both
    mainstream architectures; sweep every dataset with one decoder and
    one encoder model."""
    from repro.data.datasets import ALL_DATASETS

    def sweep():
        rows = []
        for dataset in ALL_DATASETS:
            for model in ("bge-reranker-v2-minicpm", "bge-reranker-v2-m3"):
                result = fig2_sparsity(model_name=model, dataset=dataset, num_queries=2)
                rows.append(
                    (
                        dataset,
                        model,
                        round(float(np.mean(result.gamma[-4:])), 3),
                        round(float(np.mean(result.cluster_gamma_values[4:])), 3),
                    )
                )
        return rows

    rows = run_once(benchmark, sweep)
    from repro.harness.reporting import format_table

    record_artifact(
        "fig2b_all_datasets",
        format_table(("dataset", "model", "late gamma", "cluster gamma"), rows),
    )
    for dataset, model, late_gamma, cgamma in rows:
        assert late_gamma > 0.75, (dataset, model)
        assert cgamma > 0.8, (dataset, model)
