"""Extension study — deadline-aware serving under overload (DESIGN.md §8).

The unified request API carries a deadline *inside* the request, so
the scheduler can act on it: requests that can no longer start in time
are shed at admission (never touching the engine), and EDF admission
(``SchedulerConfig(edf=True)``) starts the tightest deadline first.
On a burst whose slack decreases with submission order, FIFO admission
strands the tight-deadline tail behind loose-deadline work while EDF
meets every deadline — the measurable value of request-carried intent.
"""

from conftest import BENCH_QUICK, run_once

from repro.harness.experiments import deadline_serving

NUM_REQUESTS = 6 if BENCH_QUICK else 12
NUM_CANDIDATES = 8 if BENCH_QUICK else 12


def test_edf_beats_fifo_on_deadline_hit_rate(benchmark, record_artifact, record_metrics):
    result = run_once(
        benchmark,
        deadline_serving,
        num_requests=NUM_REQUESTS,
        num_candidates=NUM_CANDIDATES,
    )
    record_artifact("deadline_serving", result.render())
    record_metrics(
        "deadline_serving",
        {"num_requests": NUM_REQUESTS, "num_candidates": NUM_CANDIDATES},
        {
            "probe_latency_s": result.probe_latency,
            "modes": {
                point.mode: {
                    "completed": point.completed,
                    "shed": point.shed,
                    "deadlines_met": point.deadlines_met,
                    "hit_rate": point.hit_rate,
                    "p99_s": point.p99_latency,
                    "makespan_s": point.makespan,
                }
                for point in result.points
            },
        },
    )

    fifo = result.find("fifo")
    edf = result.find("edf")

    # Overload is real under FIFO: part of the burst is shed at
    # admission (those requests never reach the engine).
    assert fifo.shed > 0

    # Acceptance bar: EDF admission lifts the deadline hit-rate well
    # above FIFO on the decreasing-slack burst ...
    assert edf.hit_rate >= fifo.hit_rate + 0.2

    # ... and in this geometry (slack ∝ position from the tail) EDF
    # meets every deadline it admits.
    assert edf.shed == 0
    assert edf.deadlines_met == NUM_REQUESTS

    # Accounting closes: every submitted request is either completed
    # or shed, never lost.
    for point in (fifo, edf):
        assert point.completed + point.shed == NUM_REQUESTS
