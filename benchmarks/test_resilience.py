"""Extension study — resilience under injected faults (DESIGN.md §9).

The fleet is a fair-weather system no longer: a deterministic
``FaultPlan`` crashes replica 0 mid-burst, failover requeues its
in-flight requests onto the survivors (bounded retries, provenance
recorded as ``attempts``/``failed_over_from``), and the queue-depth
autoscaler spawns a replacement replica — paying its warm-up on the
clock — once the halved fleet lets the queue back up.  The acceptance
bar: zero lost requests in every mode, and the autoscaler recovering
at least 80% of the fault-free throughput on the burst+crash scenario.
"""

from conftest import BENCH_QUICK, run_once

from repro.harness.experiments import resilience_serving

NUM_REQUESTS = 12 if BENCH_QUICK else 24
NUM_CANDIDATES = 8 if BENCH_QUICK else 12


def test_autoscaler_recovers_crash_throughput(benchmark, record_artifact, record_metrics):
    result = run_once(
        benchmark,
        resilience_serving,
        num_requests=NUM_REQUESTS,
        num_candidates=NUM_CANDIDATES,
    )
    record_artifact("resilience", result.render())
    record_metrics(
        "resilience",
        {
            "num_requests": NUM_REQUESTS,
            "num_candidates": NUM_CANDIDATES,
            "num_replicas": result.num_replicas,
            "crash_at_s": result.crash_at,
        },
        {
            "modes": {
                point.mode: {
                    "completed": point.completed,
                    "lost": point.lost,
                    "failed": point.failed,
                    "failed_over": point.failed_over,
                    "max_attempts": point.max_attempts,
                    "scale_ups": point.scale_ups,
                    "peak_capacity": point.peak_capacity,
                    "throughput_rps": point.throughput_rps,
                    "recovery": point.recovery,
                    "p99_s": point.p99_latency,
                }
                for point in result.points
            },
        },
    )

    reference = result.find("fault_free")
    failover = result.find("crash_failover")
    autoscale = result.find("crash_autoscale")

    # Zero lost requests, in every mode: each submitted request either
    # completes (possibly after failover) or is accounted as failed —
    # and with retries available, none is.
    for point in result.points:
        assert point.lost == 0
        assert point.failed == 0
        assert point.completed == NUM_REQUESTS

    # The crash is real: requests that were in flight (or queued) on
    # the dead replica complete via failover with attempts > 1.
    for point in (failover, autoscale):
        assert point.failed_over > 0
        assert point.max_attempts > 1

    # Failover alone limps: half the fleet serves the rest of the
    # burst, so throughput drops well below the reference ...
    assert failover.recovery < 0.8
    assert failover.scale_ups == 0

    # ... while the autoscaler spawns a replacement and recovers at
    # least 80% of the fault-free throughput (the acceptance bar).
    assert autoscale.scale_ups >= 1
    assert autoscale.peak_capacity > result.num_replicas
    assert autoscale.recovery >= 0.8
