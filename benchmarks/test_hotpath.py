"""Hot-path microbench: wall-clock per simulated layer step (DESIGN.md §11).

Unlike every other bench in this directory, the metric here is the
*harness's own* wall-clock, not simulated seconds: the batched gang
kernels change nothing observable inside the simulation (selections,
traces and events are byte-identical — ``tests/test_gang_kernels.py``),
they only collapse N per-member numpy forwards per fused layer crossing
into one stacked forward.  This bench measures that collapse directly —
solo vs sequential-gang vs batched-gang at N ∈ {1, 4, 8} — and records
it to ``benchmarks/results/BENCH_hotpath.json``, the committed baseline
the CI perf-regression gate (``benchmarks/perf_gate.py``) diffs fresh
runs against (see ``docs/performance.md``).

Wall-clock is machine-dependent, so the artifact's absolute numbers are
only comparable within one run; the gate therefore normalises every
scenario by the same run's ``solo`` anchor before comparing runs.
"""

import time

from conftest import BENCH_QUICK, run_once

from repro.harness.reporting import format_table

from repro.core.config import PrismConfig
from repro.core.engine import PrismEngine
from repro.core.scheduler import DeviceScheduler, SchedulerConfig
from repro.data.datasets import get_dataset
from repro.data.workloads import build_batch
from repro.device.platforms import get_profile
from repro.harness.runner import shared_model, shared_tokenizer
from repro.model.zoo import QWEN3_0_6B

#: Candidates per gang member.
NUM_CANDIDATES = 8
#: Timed repeats per scenario; the best (minimum) repeat is recorded —
#: the standard microbench estimator, robust to co-tenant load spikes.
REPEATS = 3 if BENCH_QUICK else 7
#: (scenario name, gang size, batched kernels?)
SCENARIOS = (
    ("solo", 1, True),
    ("sequential_gang_n4", 4, False),
    ("batched_gang_n4", 4, True),
    ("sequential_gang_n8", 8, False),
    ("batched_gang_n8", 8, True),
)


def _batches(n):
    queries = get_dataset("wikipedia").queries(n, NUM_CANDIDATES)
    tokenizer = shared_tokenizer(QWEN3_0_6B)
    return [build_batch(query, tokenizer, QWEN3_0_6B.max_seq_len) for query in queries]


def _wall_time_per_step(gang_size: int, gang_kernels: bool) -> float:
    """One timed fused-gang drain → harness seconds per executed step.

    Pruning is disabled so every member crosses every layer: the bench
    measures the steady-state layer loop, not the (workload-dependent)
    early-termination depth.  Setup (engine prepare, batch building)
    happens outside the timed window.
    """
    device = get_profile("nvidia_5070").create()
    engine = PrismEngine(
        shared_model(QWEN3_0_6B), device, PrismConfig(pruning_enabled=False)
    )
    engine.prepare()
    engine.gang_kernels = gang_kernels
    scheduler = DeviceScheduler(
        engine, SchedulerConfig(policy="fusion", max_concurrency=gang_size)
    )
    now = device.clock.now
    for batch in _batches(gang_size):
        scheduler.submit_request(batch, k=3, arrival=now)
    t0 = time.perf_counter()
    scheduler.drain()
    wall = time.perf_counter() - t0
    return wall / len(scheduler.trace)


def _measure_all() -> dict[str, float]:
    """Best-of-REPEATS per scenario, measured round-robin.

    Interleaving the scenarios across repeats (A B C, A B C, ...)
    decorrelates slow machine-load drift from the scenario axis; taking
    each scenario's minimum discards load spikes entirely.
    """
    samples: dict[str, list[float]] = {name: [] for name, _, _ in SCENARIOS}
    for _ in range(REPEATS):
        for name, size, batched in SCENARIOS:
            samples[name].append(_wall_time_per_step(size, batched))
    return {name: min(times) for name, times in samples.items()}


def test_batched_gang_kernels_cut_wall_clock(benchmark, record_artifact, record_metrics):
    wall = run_once(benchmark, _measure_all)
    speedup_n4 = wall["sequential_gang_n4"] / wall["batched_gang_n4"]
    speedup_n8 = wall["sequential_gang_n8"] / wall["batched_gang_n8"]
    speedup = {
        "solo": 1.0,
        "sequential_gang_n4": 1.0,
        "batched_gang_n4": speedup_n4,
        "sequential_gang_n8": 1.0,
        "batched_gang_n8": speedup_n8,
    }
    record_artifact(
        "hotpath",
        format_table(
            ("scenario", "gang", "kernels", "wall/step", "vs sequential"),
            [
                (
                    name,
                    size,
                    "batched" if batched else "sequential",
                    f"{wall[name] * 1e6:.1f}us",
                    f"{speedup[name]:.2f}x",
                )
                for name, size, batched in SCENARIOS
            ],
            title=(
                "Hot-path microbench: harness wall-clock per simulated layer step "
                f"(qwen3-0.6b, nvidia_5070, {NUM_CANDIDATES} candidates/member, "
                f"best of {REPEATS})"
            ),
        ),
    )
    record_metrics(
        "hotpath",
        {
            "num_candidates": NUM_CANDIDATES,
            "repeats": REPEATS,
            "model": "qwen3-0.6b",
            "engine": "prism",
        },
        {
            "wall_time_s_per_step": wall,
            "speedup": {
                "batched_vs_sequential_n4": speedup_n4,
                "batched_vs_sequential_n8": speedup_n8,
            },
        },
    )

    # Acceptance bar (ISSUE): one fused forward per layer crossing cuts
    # wall-clock per simulated step by >= 2x for an N=8 gang.  The
    # committed full-mode artifact shows the 2x; the in-suite bar is
    # slightly conservative because this also runs on loaded CI workers.
    assert speedup_n8 >= (1.5 if BENCH_QUICK else 2.0), (
        f"batched N=8 gang speedup {speedup_n8:.2f}x below bar "
        f"(per-step wall: {wall})"
    )
    # Batching should help at N=4 too, and never hurt.
    assert speedup_n4 >= 1.2, f"batched N=4 gang speedup {speedup_n4:.2f}x"
    # Sanity: a sequential gang's per-step cost tracks the solo cost —
    # the win comes from batching, not from the gang itself.
    assert wall["sequential_gang_n8"] >= wall["batched_gang_n8"]
