"""Figures 12 & 13 — the agent-memory application.

Paper numbers: agent memory + PRISM cuts task latency by 25.2 % (video)
and 43.4 % (community) versus HF-based memory . . . versus *disable*
the reductions are larger still; task success stays ≈1.0; PRISM's
footprint during one action is 63 % below HF's.
"""

from conftest import run_once

from repro.harness.experiments import fig12_13_agent_memory


def test_fig12_13(benchmark, record_artifact):
    result = run_once(
        benchmark, fig12_13_agent_memory, workloads=("video", "community")
    )
    record_artifact("fig12_13_agent_memory", result.render())

    for workload in ("video", "community"):
        runs = result.runs[workload]
        disable, hf, prism = runs["disable"], runs["hf"], runs["prism"]

        # Figure 12 ordering: disable > hf > prism.
        assert prism.mean_latency < hf.mean_latency < disable.mean_latency

        # The memory path replaces VLM calls: inference time collapses.
        assert hf.stage_means()["inference"] < 0.5 * disable.stage_means()["inference"]

        # PRISM's rerank stage is the cheaper one.
        assert prism.stage_means()["rerank"] < hf.stage_means()["rerank"]

        # Success rates stay high everywhere (paper: ≥0.994).
        assert disable.success_rate == 1.0
        assert hf.success_rate >= 0.9
        assert prism.success_rate >= 0.9

        # Figure 13: peak footprint during actions.
        assert prism.peak_mib < 0.5 * hf.peak_mib

    # Community tasks are longer, so absolute latencies are higher.
    assert (
        result.runs["community"]["disable"].mean_latency
        > result.runs["video"]["disable"].mean_latency
    )
