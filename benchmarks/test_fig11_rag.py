"""Figure 11 — the RAG personal assistant on both platforms.

Paper numbers: PRISM cuts end-to-end latency by 51 % (NVIDIA, with
Bge-MiniCPM) and 31 % (Apple, with Qwen3-0.6B), peak memory by up to
77.8 % and average memory by up to 92.3 %, at unchanged accuracy.
"""

from conftest import run_once

from repro.harness.experiments import fig11_rag
from repro.harness.reporting import format_series


def test_fig11(benchmark, record_artifact):
    result = run_once(benchmark, fig11_rag, num_docs=200, num_queries=12)

    lines = [result.render(), ""]
    for platform, by_system in result.runs.items():
        for system, run in by_system.items():
            if run.timeline:
                xs = [round(p.time, 3) for p in run.timeline[:40]]
                ys = [round(p.in_use / (1024 * 1024), 1) for p in run.timeline[:40]]
                lines.append(format_series(f"{platform}/{system} (MiB)", xs, ys))
    record_artifact("fig11_rag", "\n".join(lines))

    for platform in ("apple_m2", "nvidia_5070"):
        hf = result.runs[platform]["hf"]
        prism = result.runs[platform]["prism"]

        # Latency: PRISM wins, in the paper's 0.49–0.69× band ± slack.
        ratio = prism.mean_latency / hf.mean_latency
        assert 0.3 < ratio < 0.95, platform

        # Memory: large peak and average reductions.
        assert prism.peak_mib < 0.6 * hf.peak_mib
        assert prism.avg_mib < 0.4 * hf.avg_mib

        # Accuracy unchanged (both systems select the same documents
        # in almost every query).
        assert abs(prism.accuracy - hf.accuracy) <= 0.15

        # Reranking dominates the vanilla pipeline (Figure 1's share).
        assert hf.rerank_share > 0.5
