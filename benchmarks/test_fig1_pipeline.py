"""Figure 1 — per-stage cost of the semantic file-search pipeline.

Paper numbers (Mac Mini, top-5 of 20, Qwen3-Reranker-0.6B): retrieval
8 ms / 50 MiB; rerank 5,754 ms / 1,184 MiB — a 96.3 % latency share
and 67.6 % memory share for the reranker.
"""

from conftest import run_once

from repro.harness.experiments import fig1_pipeline


def test_fig1_pipeline(benchmark, record_artifact):
    result = run_once(
        benchmark, fig1_pipeline, platform="apple_m2", num_docs=200, num_queries=4, k=5
    )
    record_artifact("fig1_pipeline", result.render())

    # The reranker dominates both budgets, as in Figure 1.
    assert result.rerank_latency_share > 0.9
    assert result.rerank_memory_share > 0.6
    # Retrieval is milliseconds; reranking is seconds.
    assert result.retrieval_seconds < 0.05
    assert result.rerank_seconds > 1.0
    # The vanilla rerank stage runs at the paper's memory scale
    # (≈1.2 GiB for the 0.6 B model fully resident).
    assert 800 < result.rerank_peak_mib < 2000
