"""Extension study — fleet serving layer (DESIGN.md §5).

The single-device service handles one request at a time; the fleet
layer shards a burst of traffic across N replicas behind a batched
admission queue.  Because the simulator is deterministic, every fleet
size serves byte-identical results — throughput scaling comes with
provably zero precision drift.
"""

from conftest import run_once

from repro.harness.experiments import fleet_serving
from repro.harness.reporting import format_table, ms, pct

REPLICA_COUNTS = (1, 2, 4)
BATCH_SIZES = (1, 4, 8)


def test_fleet_replica_scaling(benchmark, record_artifact, record_metrics):
    result = run_once(
        benchmark,
        fleet_serving,
        replica_counts=REPLICA_COUNTS,
        num_requests=24,
        max_batch=4,
    )
    record_artifact("fleet_scaling", result.render())
    record_metrics(
        "fleet_scaling",
        {"num_requests": 24, "replica_counts": list(REPLICA_COUNTS), "max_batch": 4},
        {
            "replicas": {
                str(point.num_replicas): {
                    "throughput_rps": point.throughput_rps,
                    "speedup": point.speedup,
                    "p99_latency_s": point.p99_latency,
                    "mean_utilisation": point.mean_utilisation,
                }
                for point in result.points
            },
        },
    )

    baseline = result.find(1)
    quad = result.find(4)

    # Acceptance bar: 4 replicas with batching deliver >= 2x the
    # single-replica simulated throughput ...
    assert quad.throughput_rps >= 2.0 * baseline.throughput_rps

    # ... at equal precision (determinism makes this exact, not lucky).
    for point in result.points:
        assert point.mean_precision == baseline.mean_precision

    # Throughput grows monotonically with fleet size, and tail latency
    # shrinks (shorter queues at every percentile).
    throughputs = [result.find(n).throughput_rps for n in REPLICA_COUNTS]
    assert throughputs == sorted(throughputs)
    assert quad.p99_latency < baseline.p99_latency
    assert quad.p50_latency < baseline.p50_latency

    # The lone replica of the baseline is saturated by the burst.
    assert baseline.mean_utilisation > 0.95


def test_fleet_batching_amortisation(benchmark, record_artifact):
    """Batch size trades dispatch amortisation against balance granularity.

    On **one** replica batching is pure amortisation: with a
    deliberately expensive dispatch (50 ms — scheduler wakeup plus
    host<->device submission), per-request dispatch pays it 24 times,
    batches of 8 pay it 3 times, so throughput rises monotonically with
    the batch size.  Across a 4-replica fleet the opposite force
    appears: coarse batches quantise the work assignment (3 batches of
    8 leave the fourth replica idle), so fine-grained dispatch balances
    better even while paying more overhead.
    """

    def sweep():
        single = {
            max_batch: fleet_serving(
                replica_counts=(1,),
                num_requests=24,
                max_batch=max_batch,
                dispatch_overhead_ms=50.0,
            ).find(1)
            for max_batch in BATCH_SIZES
        }
        quad = {
            max_batch: fleet_serving(
                replica_counts=(4,),
                num_requests=24,
                max_batch=max_batch,
                dispatch_overhead_ms=50.0,
            ).find(4)
            for max_batch in BATCH_SIZES
        }
        return single, quad

    single, quad = run_once(benchmark, sweep)
    record_artifact(
        "fleet_batching",
        format_table(
            ("replicas", "max_batch", "throughput", "p50", "p99", "P@10", "mean util"),
            [
                (
                    p.num_replicas,
                    max_batch,
                    f"{p.throughput_rps:.2f}/s",
                    ms(p.p50_latency),
                    ms(p.p99_latency),
                    f"{p.mean_precision:.3f}",
                    pct(p.mean_utilisation),
                )
                for points in (single, quad)
                for max_batch, p in points.items()
            ],
            title="Fleet batching sweep (50 ms dispatch overhead, 24-request burst)",
        ),
    )

    # One replica: amortisation is the only force — throughput rises
    # strictly with batch size.
    throughputs = [single[b].throughput_rps for b in BATCH_SIZES]
    assert throughputs == sorted(throughputs)
    assert single[8].throughput_rps > single[1].throughput_rps

    # Four replicas: coarse batches quantise assignment; fine-grained
    # dispatch keeps every replica busier.
    assert quad[1].mean_utilisation > quad[8].mean_utilisation

    # Batching changes scheduling only — results stay identical.
    precisions = {p.mean_precision for p in (*single.values(), *quad.values())}
    assert len(precisions) == 1
